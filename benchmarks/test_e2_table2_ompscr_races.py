"""E2 — regenerate Table II: OmpSCR races per tool."""

import repro.harness.experiments as E
from repro.harness.experiments.ompscr_races import SWORD_ONLY_BENCHMARKS
from repro.workloads import REGISTRY


def test_e2_table2(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: E.ompscr_races.run(nthreads=8, seed=0), rounds=1, iterations=1
    )
    save_result("E2_table2_ompscr_races", table.render())

    rows = {row[0]: row for row in table.rows}
    # Shape 1: no false alarms on race-free benchmarks.
    for w in REGISTRY.suite("ompscr"):
        if not w.racy:
            assert rows[w.name][2] == rows[w.name][3] == rows[w.name][4] == 0
    # Shape 2: SWORD >= ARCHER everywhere; equal where no mechanism applies.
    for row in table.rows:
        archer, archer_low, sword = row[2], row[3], row[4]
        assert sword >= archer
        assert archer_low == archer  # flush-shadow does not change detection
    # Shape 3: the paper's six benchmarks with new SWORD-only races.
    for name in SWORD_ONLY_BENCHMARKS:
        assert rows[name][5] > 0, f"{name} should have sword-only races"
    # Shape 4: documented races are matched by both tools elsewhere.
    assert rows["c_loopA.badSolution"][2] == rows["c_loopA.badSolution"][4] == 1
