"""E6 — regenerate Figure 7 / Table V: HPC slowdown & memory vs threads."""

import pytest

import repro.harness.experiments as E

from conftest import hpc_params

THREADS = (8, 16, 24)


@pytest.fixture(scope="module")
def figures():
    return E.hpc_overhead.run(
        benchmarks=("hpccg", "minife", "lulesh", "amg2013_10"),
        thread_counts=THREADS,
        params_for=hpc_params,
    )


def test_e6_figure7(benchmark, save_result, figures):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = []
    for name, (slow_fig, mem_fig) in figures.items():
        text.append(slow_fig.render())
        text.append(mem_fig.render())
    save_result("E6_fig7_hpc_overhead", "\n\n".join(text))


def test_e6_sword_memory_is_flat_per_thread(benchmark, figures):
    """SWORD memory = N x 3.3 MB for every benchmark and thread count."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, (_slow, mem_fig) in figures.items():
        sword = dict(mem_fig.get("sword").points)
        per_thread = {n: sword[n] / n for n in THREADS}
        values = list(per_thread.values())
        assert max(values) - min(values) < 0.05 * values[0], name
        assert values[0] == pytest.approx(3.3 * 2**20, rel=0.05)


def test_e6_archer_memory_tracks_baseline_not_threads(benchmark, figures):
    """ARCHER's footprint is application-proportional (5-7x region)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name, (_slow, mem_fig) in figures.items():
        archer = dict(mem_fig.get("archer").points)
        # Same problem size at 8 vs 24 threads: footprint within 40%.
        assert archer[24] < archer[8] * 1.4 + 64 * 2**20, name


def test_e6_lulesh_offline_cost_tracks_region_count(benchmark, figures):
    """The driver behind the paper's LULESH observation: SWORD's offline
    cost is proportional to the number of parallel regions, and LULESH's
    region count makes its offline phase as expensive as its collection
    (Table V's story).

    NOTE (EXPERIMENTS.md): the *direction* of the paper's Figure 7c — the
    dynamic phase itself being slower than ARCHER's — does not reproduce
    on this substrate, where buffered trace I/O is cheap relative to the
    per-access cost of the happens-before baseline.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    slow_fig, _mem = figures["lulesh"]
    sword = dict(slow_fig.get("sword").points)
    total = dict(slow_fig.get("sword-total").points)
    # The offline pass at least doubles SWORD's cost on LULESH.
    assert total[24] > sword[24] * 1.7
    # And the many-small-regions structure is what drives it: measure the
    # interval/pair load directly against a low-region benchmark.
    from repro.harness.tools import driver as _driver
    from repro.workloads import REGISTRY as _REG

    lulesh = _driver("sword").run(
        _REG.get("lulesh"), nthreads=8, seed=0, steps=40
    )
    hpccg = _driver("sword").run(_REG.get("hpccg"), nthreads=8, seed=0)
    assert (
        lulesh.stats["offline"]["intervals"]
        > 5 * hpccg.stats["offline"]["intervals"]
    )


def test_e6_sword_dynamic_beats_archer_elsewhere(benchmark, figures):
    """On the non-LULESH benchmarks SWORD's collection is the faster
    dynamic phase at scale (paper: "typically faster than ARCHER")."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    wins = 0
    for name in ("hpccg", "minife", "amg2013_10"):
        slow_fig, _mem = figures[name]
        sword = dict(slow_fig.get("sword").points)
        archer = dict(slow_fig.get("archer").points)
        if sword[24] <= archer[24]:
            wins += 1
    assert wins >= 2, "sword should win the dynamic phase on most benchmarks"


def test_e6_static_prescreen_columns(benchmark, save_result):
    """E6 extension: per-benchmark pre-screening on/off slowdown columns."""
    figs = benchmark.pedantic(
        lambda: E.hpc_overhead.run_static(
            thread_counts=(8, 16), params_for=hpc_params
        ),
        rounds=1,
        iterations=1,
    )
    text = []
    for name, (slow_fig, elision_fig) in figs.items():
        text.append(slow_fig.render())
        text.append(elision_fig.render())
    save_result("E6_fig7_static_prescreen", "\n\n".join(text))

    for name, (slow_fig, elision_fig) in figs.items():
        # Every HPC benchmark's spec elides a stable share of the stream
        # (AMG's partial spec is the floor at ~21%).
        fracs = elision_fig.get("elided-fraction").ys()
        assert all(f > 0.15 for f in fracs), name
        # And collection with fewer events is never materially slower.
        on = slow_fig.get("sword").ys()
        off = slow_fig.get("sword-nostatic").ys()
        assert all(s < o * 1.5 + 0.5 for s, o in zip(on, off)), name
