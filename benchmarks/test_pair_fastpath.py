"""Fast-path benchmark: pruning + memoization on a pair-heavy workload.

The workload is built to look like a production OpenMP stencil sweep: 8
threads, 32 barrier intervals, each thread repeatedly sweeping its own
residue class of one shared array (disjoint mod ``8 * NTHREADS`` — the
pattern every static-scheduled strided loop produces).  That yields
thousands of concurrent interval pairs whose trees can never overlap,
which the naive analysis proves one ``iter_overlaps`` walk at a time and
the digest prune dismisses in O(1) per pair.  A genuine race on a hot
scalar (threads 0 and 1, before the first barrier) keeps the workload
honest: the fast path must still find exactly the same races,
byte-for-byte.

Acceptance: fast path >= 2x faster than naive on this workload, race
reports byte-identical, and a warm persistent-cache pass faster than the
cold fast pass while serving pair verdicts from disk.
"""

import json
import shutil
import tempfile
import time

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.offline import (
    AnalysisOptions,
    FastPathOptions,
    SerialOfflineAnalyzer,
)
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool, TraceDir

NTHREADS = 8
BARRIERS = 32
SWEEPS_PER_INTERVAL = 3
CELLS_PER_THREAD = 48
SPEEDUP_TARGET = 2.0
REPEATS = 3

NAIVE = AnalysisOptions(fastpath=FastPathOptions(enabled=False))
FAST = AnalysisOptions(fastpath=FastPathOptions(enabled=True))
CACHED = AnalysisOptions(
    fastpath=FastPathOptions(enabled=True, result_cache=True)
)


def _program(m):
    n = CELLS_PER_THREAD * NTHREADS
    grid = m.alloc_array("grid", n)
    flux = m.alloc_array("flux", n)
    hot = m.alloc_scalar("hot")

    def body(ctx):
        # The seeded race: unsynchronised writes to one scalar by
        # threads 0 and 1, confined to the first barrier interval.
        if ctx.tid < 2:
            ctx.write(hot, 0, float(ctx.tid))
        for _ in range(BARRIERS):
            for _ in range(SWEEPS_PER_INTERVAL):
                # Disjoint residue classes: thread t touches only
                # indices == t (mod NTHREADS), so no cross-thread pair
                # of sweep nodes ever shares a byte.
                ctx.read_slice(grid, ctx.tid, n, step=NTHREADS)
                ctx.write_slice(
                    flux,
                    ctx.tid,
                    n,
                    [1.0] * CELLS_PER_THREAD,
                    step=NTHREADS,
                )
                ctx.write_slice(
                    grid,
                    ctx.tid,
                    n,
                    [2.0] * CELLS_PER_THREAD,
                    step=NTHREADS,
                )
            ctx.barrier()

    m.parallel(body, nthreads=NTHREADS)


def _collect(trace_path: str) -> None:
    tool = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=1024))
    rt = OpenMPRuntime(
        RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=0)),
        tool=tool,
    )
    rt.run(_program)


def _analyze(trace_path: str, options: AnalysisOptions):
    t0 = time.perf_counter()
    result = SerialOfflineAnalyzer(
        TraceDir(trace_path), options=options
    ).analyze()
    return time.perf_counter() - t0, result


def blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


def test_pair_fastpath_speedup(benchmark, save_result):
    trace_path = tempfile.mkdtemp(prefix="bench-fastpath-")
    try:
        _collect(trace_path)

        def run_suite():
            # Warm-up both legs once, then interleaved min-of-N.
            _analyze(trace_path, NAIVE)
            _analyze(trace_path, FAST)
            naive_s = fast_s = float("inf")
            naive_res = fast_res = None
            for _ in range(REPEATS):
                t, r = _analyze(trace_path, NAIVE)
                if t < naive_s:
                    naive_s, naive_res = t, r
                t, r = _analyze(trace_path, FAST)
                if t < fast_s:
                    fast_s, fast_res = t, r
            # Persistent cache: one cold pass to fill, one warm pass.
            cold_s, _ = _analyze(trace_path, CACHED)
            warm_s, warm_res = _analyze(trace_path, CACHED)
            return naive_s, fast_s, cold_s, warm_s, naive_res, fast_res, warm_res

        naive_s, fast_s, cold_s, warm_s, naive_res, fast_res, warm_res = (
            benchmark.pedantic(run_suite, rounds=1, iterations=1)
        )

        speedup = naive_s / fast_s
        warm_speedup = naive_s / warm_s
        stats = fast_res.stats
        lines = [
            "Fast-path pair analysis "
            f"({NTHREADS} threads x {BARRIERS} barrier intervals, "
            f"{stats.concurrent_pairs} concurrent pairs):",
            f"  naive (fastpath off): {naive_s:.4f}s",
            f"  fast  (prune + memo): {fast_s:.4f}s   "
            f"speedup {speedup:.2f}x",
            f"  cache cold:           {cold_s:.4f}s",
            f"  cache warm:           {warm_s:.4f}s   "
            f"speedup {warm_speedup:.2f}x",
            f"  pairs pruned: {stats.pairs_pruned}/{stats.concurrent_pairs}"
            f"  memo hits: {stats.solver_memo_hits}"
            f"  pair-cache hits: {warm_res.stats.pair_cache_hits}",
            f"  races: {len(fast_res.races)} (byte-identical across legs)",
        ]
        save_result("pair_fastpath", "\n".join(lines))

        # Correctness before speed: all legs byte-identical, race present.
        gold = blob(naive_res.races)
        assert blob(fast_res.races) == gold
        assert blob(warm_res.races) == gold
        assert len(naive_res.races) >= 1

        # The machinery actually engaged.
        assert stats.pairs_pruned > 0
        assert warm_res.stats.pair_cache_hits > 0

        # The headline acceptance bound.
        assert speedup >= SPEEDUP_TARGET, (
            f"fast path only {speedup:.2f}x faster than naive "
            f"(target {SPEEDUP_TARGET}x)"
        )
    finally:
        shutil.rmtree(trace_path, ignore_errors=True)
