"""Columnar fast-path benchmark: batched online collection + bulk tree build.

Online leg: ``c_arraysweep`` is a dense static-scheduled sweep whose scalar
and columnar variants emit structurally identical traces (reads then writes
per chunk, per sweep).  With a C-speed codec the per-event Python overhead
dominates the scalar run, which is exactly what ``append_access_batch``
eliminates: one slice assignment per access site per loop nest.

Offline leg: the coalescer hands ``IntervalTree.build_from_sorted`` an
already-sorted interval list, replacing n rebalancing inserts with one
O(n) median-split construction.

Acceptance: batched online collection >= 3x faster than scalar on the same
workload (race reports byte-identical — enforced here and in
``tests/workloads/test_batched_parity.py``), and bulk construction >= 2x
faster than incremental insertion at >= 10k intervals while answering
overlap queries identically.
"""

import json
import time

from repro.common.config import SwordConfig
from repro.harness.tools import SwordDriver
from repro.itree.interval import StridedInterval
from repro.itree.tree import IntervalTree
from repro.workloads import REGISTRY

import repro.workloads.ompscr.suite  # noqa: F401  (registers c_arraysweep)

NTHREADS = 4
N = 8192
SWEEPS = 4
ONLINE_TARGET = 3.0
REPEATS = 3

TREE_N = 20_000
TREE_TARGET = 2.0

# A C-speed codec and a buffer wide enough to hold the run: the timing
# then isolates the event-emission path the batching optimises, not the
# (shared) compression cost.
CONFIG = dict(codec="zlib", buffer_events=65536)


def _run(batched: int, *, offline: bool = False):
    return SwordDriver().run(
        REGISTRY.get("c_arraysweep"),
        nthreads=NTHREADS,
        seed=0,
        sword_config=SwordConfig(**CONFIG),
        run_offline=offline,
        n=N,
        sweeps=SWEEPS,
        batched=batched,
    )


def _blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


def _intervals(n):
    return [
        StridedInterval(low=i * 8, stride=1, size=8, count=1,
                        is_write=bool(i % 2), is_atomic=False, pc=i % 13, msid=0)
        for i in range(n)
    ]


def test_online_batched_speedup(benchmark, save_result):
    def run_suite():
        # Correctness first: full runs, byte-identical race reports.
        scalar_full = _run(0, offline=True)
        batched_full = _run(1, offline=True)
        # Timing: online collection only, interleaved min-of-N.
        scalar_s = batched_s = float("inf")
        events = 0
        for _ in range(REPEATS):
            r = _run(0)
            scalar_s = min(scalar_s, r.dynamic_seconds)
            events = r.stats["events"]
            r = _run(1)
            batched_s = min(batched_s, r.dynamic_seconds)
        return scalar_full, batched_full, scalar_s, batched_s, events

    scalar_full, batched_full, scalar_s, batched_s, events = benchmark.pedantic(
        run_suite, rounds=1, iterations=1
    )

    speedup = scalar_s / batched_s
    lines = [
        f"Online columnar fast path (c_arraysweep, {NTHREADS} threads, "
        f"n={N}, {SWEEPS} sweeps, {events} events):",
        f"  scalar  per-access appends: {scalar_s:.4f}s  "
        f"({events / scalar_s:,.0f} events/s)",
        f"  batched column appends:     {batched_s:.4f}s  "
        f"({events / batched_s:,.0f} events/s)",
        f"  speedup {speedup:.2f}x (target >= {ONLINE_TARGET}x)",
        f"  batched events: {batched_full.stats['batched_events']}"
        f"  races: {len(batched_full.races)} (byte-identical to scalar)",
    ]
    save_result("online_fastpath", "\n".join(lines))

    assert _blob(batched_full.races) == _blob(scalar_full.races)
    assert batched_full.stats["batched_events"] > 0
    assert scalar_full.stats["batched_events"] == 0
    assert speedup >= ONLINE_TARGET, (
        f"batched online collection only {speedup:.2f}x faster than scalar "
        f"(target {ONLINE_TARGET}x)"
    )


def test_bulk_tree_build_speedup(benchmark, save_result):
    ivs = _intervals(TREE_N)

    def run_suite():
        incr_s = bulk_s = float("inf")
        incr = bulk = None
        for _ in range(REPEATS):
            t0 = time.perf_counter()
            tree = IntervalTree()
            for iv in ivs:
                tree.insert(iv)
            incr_s = min(incr_s, time.perf_counter() - t0)
            incr = tree
            t0 = time.perf_counter()
            tree = IntervalTree.build_from_sorted(ivs)
            bulk_s = min(bulk_s, time.perf_counter() - t0)
            bulk = tree
        return incr_s, bulk_s, incr, bulk

    incr_s, bulk_s, incr, bulk = benchmark.pedantic(
        run_suite, rounds=1, iterations=1
    )

    speedup = incr_s / bulk_s
    lines = [
        f"Bulk interval-tree construction ({TREE_N:,} intervals):",
        f"  incremental inserts: {incr_s:.4f}s",
        f"  build_from_sorted:   {bulk_s:.4f}s   speedup {speedup:.2f}x "
        f"(target >= {TREE_TARGET}x)",
        f"  heights: incremental {incr.height()}, bulk {bulk.height()}",
    ]
    save_result("bulk_tree_build", "\n".join(lines))

    # Correctness: same contents, valid RB shape, identical query answers.
    bulk.validate()
    assert len(bulk) == len(incr) == TREE_N
    for qlo in range(0, TREE_N * 8, TREE_N):
        qhi = qlo + 1000
        got = {id(n.interval) for n in bulk.iter_overlaps(qlo, qhi)}
        want = {id(n.interval) for n in incr.iter_overlaps(qlo, qhi)}
        assert got == want

    assert speedup >= TREE_TARGET, (
        f"bulk build only {speedup:.2f}x faster than incremental "
        f"(target {TREE_TARGET}x)"
    )
