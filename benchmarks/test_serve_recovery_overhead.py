"""Durability overhead benchmark: WAL + shard checkpoints vs baseline.

The durable-recovery layer (DESIGN.md §3.10) buys restart-at-any-WAL-
boundary resume with two extra I/O streams on the job hot path: one
CRC-guarded WAL append per lifecycle transition, and one content-hash
checkpoint write per completed shard.  This benchmark prices that
insurance: the same burst through the same thread-worker service, once
ephemeral (no state dir) and once durable, must stay within a generous
throughput factor — and the durable run's second pass must actually
*cash in* the checkpoints (every shard a hit, zero recompute).
"""

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.faults.harness import collect_trace
from repro.serve import ServeConfig, Service, TenantQuota
from repro.serve.wal import WAL_NAME, replay_wal

WORKLOAD = "plusplus-orig-yes"
NTHREADS = 4
SUBMISSIONS = 8
SHARD_PAIRS = 8
#: Durable throughput must stay within this factor of ephemeral.
MAX_SLOWDOWN = 3.0


def _run_burst(trace, state_dir=None):
    config = ServeConfig(
        workers=2,
        use_processes=False,
        shard_pairs=SHARD_PAIRS,
        quota=TenantQuota(max_pending=SUBMISSIONS),
        result_cache=False,  # isolate WAL/checkpoint cost from the cache
        state_dir=str(state_dir) if state_dir else None,
    )
    t0 = time.perf_counter()
    with Service(config) as service:
        ids = [service.submit(trace) for _ in range(SUBMISSIONS)]
        results = [service.result(i, timeout=120) for i in ids]
        hits = sum(service.status(i)["checkpoint_hits"] for i in ids)
    elapsed = time.perf_counter() - t0
    races = {
        json.dumps(r.races.to_json(), sort_keys=True) for r in results
    }
    return elapsed, races, hits


def test_serve_recovery_overhead(benchmark, save_result):
    root = Path(tempfile.mkdtemp(prefix="bench-serve-recovery-"))
    try:
        trace = root / "trace"
        collect_trace(WORKLOAD, trace, nthreads=NTHREADS, seed=0)

        base_elapsed, base_races, _ = _run_burst(trace)

        state = root / "state"

        def durable_burst():
            if state.exists():
                shutil.rmtree(state)
            return _run_burst(trace, state_dir=state)

        durable_elapsed, durable_races, first_hits = benchmark.pedantic(
            durable_burst, rounds=1, iterations=1
        )
        assert durable_races == base_races  # durability never changes answers

        # Second pass over the surviving state dir: every shard of every
        # job must be served from checkpoints (identical submissions
        # share content-hashed tokens), proving the insurance pays out.
        warm_elapsed, warm_races, warm_hits = _run_burst(
            trace, state_dir=state
        )
        assert warm_races == base_races
        replay = replay_wal(state / WAL_NAME)
        shards_per_job = max(
            len(j.shards_done) for j in replay.jobs.values()
        )
        assert warm_hits >= SUBMISSIONS * shards_per_job

        slowdown = durable_elapsed / max(base_elapsed, 1e-9)
        wal_records = replay.records
        lines = [
            f"Serve durability overhead ({SUBMISSIONS} submissions, "
            f"shard_pairs={SHARD_PAIRS}, thread workers, cache off):",
            f"  ephemeral: {base_elapsed:.2f}s "
            f"({SUBMISSIONS / base_elapsed:.1f} jobs/s)",
            f"  durable:   {durable_elapsed:.2f}s "
            f"({SUBMISSIONS / durable_elapsed:.1f} jobs/s) = "
            f"{slowdown:.2f}x, {wal_records} WAL record(s)",
            f"  warm:      {warm_elapsed:.2f}s with {warm_hits} "
            f"checkpoint hit(s) ({shards_per_job} shard(s)/job)",
        ]
        save_result("serve_recovery_overhead", "\n".join(lines))

        assert slowdown <= MAX_SLOWDOWN, (
            f"durability cost {slowdown:.2f}x exceeds the "
            f"{MAX_SLOWDOWN}x budget"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
