"""E7 — regenerate Figure 8: AMG2013 problem-size scaling and OOM."""

import pytest

import repro.harness.experiments as E


@pytest.fixture(scope="module")
def amg_results():
    return E.amg_scaling.run(sizes=(10, 20, 30, 40), nthreads=8, sweeps=6)


def test_e7_figure8(benchmark, save_result, amg_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mem_fig, rt_fig, oom_table = amg_results
    save_result(
        "E7_fig8_amg_scaling",
        "\n\n".join([mem_fig.render(), rt_fig.render(), oom_table.render()]),
    )


def test_e7_archer_ooms_only_at_largest(benchmark, amg_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _mem, _rt, oom_table = amg_results
    status = {row[0]: row[1:] for row in oom_table.rows}
    for size in (10, 20, 30):
        assert status[size] == ("ok", "ok", "ok", "ok")
    assert status[40] == ("ok", "OOM", "OOM", "ok")


def test_e7_memory_shapes(benchmark, amg_results):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    mem_fig, _rt, _oom = amg_results
    base = dict(mem_fig.get("baseline").points)
    archer = dict(mem_fig.get("archer").points)
    sword = dict(mem_fig.get("sword").points)
    # Baseline grows ~cubically with the grid edge.
    assert base[40] > 30 * base[10]
    # ARCHER tracks the baseline at 5-7x where it survives.
    for size in (10, 20, 30):
        ratio = archer[size] / base[size]
        assert 4.5 <= ratio <= 8.0, (size, ratio)
    # SWORD adds only its flat per-thread bound on top of the baseline.
    for size in (10, 20, 30, 40):
        assert sword[size] - base[size] < 40 * 2**20
    # Paper's "1,000x more memory-efficient" headline at the large end:
    # tool-only footprints differ by orders of magnitude.
    archer_tool_30 = archer[30] - base[30]
    sword_tool_30 = sword[30] - base[30]
    assert archer_tool_30 / sword_tool_30 > 100


def test_e7_runtime_grows_with_problem_size(benchmark, amg_results):
    """Checker runtime grows with the problem size where the per-size work
    actually grows: ARCHER's shadow processing is proportional to the
    touched words.  (Baseline/SWORD runtimes are nearly size-independent on
    this substrate — the model's accesses are bulk range events over
    vectorised kernels — so only the proportional-work tool is asserted.)
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _mem, rt_fig, _oom = amg_results
    archer = dict(rt_fig.get("archer").points)
    assert archer[30] > 1.5 * archer[10]
    # SWORD completes every size (40^3 has no archer point at all).
    sword = dict(rt_fig.get("sword").points)
    assert set(sword) == {10, 20, 30, 40}
