"""Service observability overhead: traced vs. dark shard execution.

The tracing tentpole promises the service tier can run with full
telemetry — per-shard worker bundles recording spans and metric deltas,
the flight recorder, per-tenant histograms — at production cost:
<= 5% throughput loss against the same work run dark (ambient
``NULL_OBS``, where shards carry no ObsConfig and every signal is a
no-op).

The gate measures where service time actually goes: :func:`run_shard`
over every shard of the full mixed corpus (clean, delta-filtered,
salvage), executed serially so the comparison is deterministic.
End-to-end burst wall times on a shared CI box bounce +-20% run to run
from scheduler and GIL noise — far above the 5% signal — so the burst
is reported for context (jobs/s, table row) but bounded only loosely
against catastrophic regression.  Both measurements interleave their
repeats (dark, traced, dark, ...) and keep the minimum, the least
noisy location statistic for a single-process workload.

Two assertions guard the shard row.  The relative one states the
headline promise (<= 5%, with an absolute cushion because the corpus
shards are ~1.5 ms micro-jobs where per-span costs cannot amortize the
way they do against production-sized shards).  The absolute one is the
noise-robust gate: telemetry's per-shard cost — spans, metric deltas,
the end-of-shard snapshot — must stay within a fixed budget, which a
hot-path regression trips regardless of what the box's scheduler is
doing to the baseline that day.
"""

import tempfile
import time
from pathlib import Path

from repro.harness.tables import Table
from repro.obs import live
from repro.offline.options import AnalysisOptions
from repro.serve import ObsConfig, ServeConfig, Service
from repro.serve.loadgen import build_corpus, run_load
from repro.serve.shards import plan_shards
from repro.serve.workers import run_shard

REPEATS = 7
SUBMISSIONS = 12
TARGET_OVERHEAD = 0.05  # the headline promise: <= 5% with telemetry on
ABS_SLACK_SECONDS = 0.01  # per-suite cushion against timer noise
PER_SHARD_BUDGET_SECONDS = 0.001  # absolute telemetry cost per shard
BURST_SANITY_FACTOR = 1.5  # end-to-end smoke bound (noise >> 5% here)


def _corpus_shards(corpus, obs_config):
    shards = []
    for entry in corpus:
        plan = plan_shards(
            entry.path,
            job_id=f"bench-{entry.flavor}",
            options=AnalysisOptions(integrity=entry.integrity),
            shard_pairs=8,
            min_shards=2,
            cache_dir=None,
            tenant="bench",
            trace_id="ab" * 16,
            obs_config=obs_config,
        )
        shards.extend(plan.shards)
    return shards


def _time_shards(shards) -> float:
    t0 = time.perf_counter()
    for spec in shards:
        run_shard(spec)
    return time.perf_counter() - t0


def _one_burst(corpus, obs) -> float:
    config = ServeConfig(
        workers=2, use_processes=False, shard_pairs=8, result_cache=False
    )
    t0 = time.perf_counter()
    with Service(config, obs=obs) as service:
        report = run_load(
            service,
            corpus,
            submissions=SUBMISSIONS,
            tenants=3,
            check_parity=False,
        )
    assert report.jobs_finished == SUBMISSIONS
    return time.perf_counter() - t0


def test_serve_obs_overhead(benchmark, save_result):
    def run_suite():
        with tempfile.TemporaryDirectory(prefix="repro-obs-bench-") as root:
            corpus = build_corpus(Path(root), nthreads=4, seeds=(0,))
            dark_shards = _corpus_shards(corpus, None)
            traced_shards = _corpus_shards(
                corpus, ObsConfig.from_obs(live())
            )
            for spec in dark_shards + traced_shards:  # warm-up
                run_shard(spec)
            dark = traced = float("inf")
            for _ in range(REPEATS):
                dark = min(dark, _time_shards(dark_shards))
                traced = min(traced, _time_shards(traced_shards))
            _one_burst(corpus, None)  # warm the service stack
            burst_dark = burst_traced = float("inf")
            for _ in range(3):
                burst_dark = min(burst_dark, _one_burst(corpus, None))
                burst_traced = min(burst_traced, _one_burst(corpus, live()))
        return len(dark_shards), dark, traced, burst_dark, burst_traced

    nshards, dark, traced, burst_dark, burst_traced = benchmark.pedantic(
        run_suite, rounds=1, iterations=1
    )
    overhead = traced / dark - 1.0
    per_shard = (traced - dark) / nshards
    table = Table(
        "Service observability overhead (traced vs. dark)",
        ["measurement", "dark (s)", "traced (s)", "overhead"],
    )
    table.add(
        f"shard execution ({nshards} shards)",
        f"{dark:.4f}", f"{traced:.4f}", f"{overhead:+.1%}",
    )
    table.add(
        f"service burst ({SUBMISSIONS} jobs)",
        f"{burst_dark:.4f}", f"{burst_traced:.4f}",
        f"{burst_traced / burst_dark - 1.0:+.1%}",
    )
    table.note(
        f"interleaved min of {REPEATS} repeats; telemetry adds "
        f"{per_shard * 1e3:.3f} ms per shard (budget "
        f"{PER_SHARD_BUDGET_SECONDS * 1e3:.1f} ms).  The corpus shards "
        f"are sub-2ms micro-jobs, so the relative column overstates "
        f"production overhead; the per-shard absolute is the stable "
        f"gate.  Burst row is informational — scheduler noise swamps "
        f"{TARGET_OVERHEAD:.0%} at that scale."
    )
    save_result("serve_obs_overhead", table.render())

    # The headline gate: <= 5% plus an absolute cushion, because the
    # corpus shards finish in ~1.5 ms each and a 5% relative bound at
    # that scale is below this box's run-to-run timer noise.
    assert traced <= dark * (1.0 + TARGET_OVERHEAD) + ABS_SLACK_SECONDS, (
        f"per-shard telemetry overhead {overhead:+.1%} exceeds "
        f"{TARGET_OVERHEAD:.0%}"
    )
    # The stable signal at micro-shard scale: the absolute telemetry
    # cost per shard (spans + metric deltas + snapshot) stays bounded.
    # A hot-path regression (say, spans growing 10x dearer) trips this
    # long before it shows over the machine noise in the ratio above.
    assert per_shard <= PER_SHARD_BUDGET_SECONDS, (
        f"telemetry costs {per_shard * 1e3:.3f} ms per shard, over the "
        f"{PER_SHARD_BUDGET_SECONDS * 1e3:.1f} ms budget"
    )
    # The smoke bound: a traced burst must never cost multiples of dark.
    assert burst_traced <= burst_dark * BURST_SANITY_FACTOR + 0.1, (
        f"traced burst {burst_traced:.3f}s vs dark {burst_dark:.3f}s — "
        f"beyond scheduler noise; telemetry likely regressed"
    )
