"""Extension benchmark: streaming analysis vs. run-then-analyze.

The streaming analyzer rides the online tool's flush-event bus and
confirms races while the application is still running.  The headline
metric is *time to first race*: for a production run the gap between
"the run finished and the post-mortem analysis finally reported" and
"the watcher printed the race mid-run" is the whole point of the mode.

For each racy workload measured here the benchmark records:

* ``ttfr``   — seconds from run begin to the first confirmed race;
* ``total``  — the conventional pipeline's wall time (dynamic run +
  serial post-mortem analysis);
* ``watch``  — the watched run's wall time (application + inline
  analysis, one number since they overlap);

and asserts both result parity and that the first race lands strictly
before the conventional pipeline would have produced anything.
"""

import json

from repro.harness.tables import Table
from repro.harness.tools import driver
from repro.stream import watch
from repro.workloads import REGISTRY

WORKLOADS = ["plusplus-orig-yes", "c_md", "figure2-nested", "hpccg", "amg2013_10"]


def test_extension_streaming_time_to_first_race(benchmark, save_result):
    def run_suite():
        table = Table(
            "Extension: streaming analysis (time-to-first-race vs post-mortem)",
            ["workload", "races", "ttfr (s)", "watch (s)", "run+analyze (s)"],
        )
        measurements = []
        for name in WORKLOADS:
            w = REGISTRY.get(name)
            watched = watch(w, nthreads=4, seed=0)
            post = driver("sword").run(w, nthreads=4, seed=0)
            identical = json.dumps(
                watched.races.to_json(), sort_keys=True
            ) == json.dumps(post.races.to_json(), sort_keys=True)
            measurements.append(
                (name, watched, post.total_seconds, identical)
            )
            table.add(
                name,
                watched.race_count,
                f"{watched.time_to_first_race:.4f}",
                f"{watched.elapsed_seconds:.4f}",
                f"{post.total_seconds:.4f}",
            )
        table.note("ttfr measured from run begin; post-mortem cannot report")
        table.note("anything before run+analyze completes")
        return table, measurements

    table, measurements = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    save_result("extension_streaming", table.render())

    # Parity: the watched run's final race set is byte-identical to the
    # post-mortem analyzer's on every measured workload.
    for name, watched, _total, identical in measurements:
        assert identical, f"{name}: streaming disagrees with post-mortem"
        assert watched.time_to_first_race is not None, name

    # The streaming mode wins the race to the first report: strictly
    # earlier than the conventional run-then-analyze total on at least
    # one workload (in practice: all of them).
    wins = [
        name
        for name, watched, total, _ in measurements
        if watched.time_to_first_race < total
    ]
    assert wins, "streaming never beat the post-mortem pipeline"
