"""Micro-benchmarks of SWORD's hot kernels.

These time the algorithmic building blocks the paper credits for bringing
the offline analysis "from days to seconds": interval-tree insertion and
search, streaming summarisation, the Diophantine overlap solver, the
offset-span judgment, and ARCHER's vectorised shadow processing (for the
comparison baseline).
"""

import numpy as np
import pytest

from repro.archer.shadow import AllocationShadow
from repro.common.events import Access, accesses_to_records
from repro.ilp.model import IntervalConstraint, OverlapSystem
from repro.itree.builder import TreeBuilder
from repro.itree.interval import StridedInterval
from repro.itree.tree import IntervalTree
from repro.memory.address_space import AddressSpace
from repro.osl.concurrency import concurrent_intervals, make_interval_label
from repro.sword.buffer import EventBuffer


def _intervals(n, rng):
    lows = rng.integers(0, 1_000_000, size=n)
    return [
        StridedInterval(low=int(lo), stride=8, size=8, count=int(c),
                        is_write=bool(w), is_atomic=False, pc=int(pc), msid=0)
        for lo, c, w, pc in zip(
            lows,
            rng.integers(1, 64, size=n),
            rng.integers(0, 2, size=n),
            rng.integers(1, 100, size=n),
        )
    ]


def test_bench_tree_insert_10k(benchmark):
    rng = np.random.default_rng(0)
    ivs = _intervals(10_000, rng)

    def build():
        t = IntervalTree()
        for iv in ivs:
            t.insert(iv)
        return t

    tree = benchmark(build)
    assert len(tree) == 10_000


def test_bench_tree_overlap_queries(benchmark):
    rng = np.random.default_rng(1)
    tree = IntervalTree()
    for iv in _intervals(10_000, rng):
        tree.insert(iv)
    queries = rng.integers(0, 1_000_000, size=1_000)

    def probe():
        hits = 0
        for q in queries:
            for _ in tree.iter_overlaps(int(q), int(q) + 512):
                hits += 1
        return hits

    hits = benchmark(probe)
    assert hits > 0


def test_bench_builder_summarises_sweep(benchmark):
    records = accesses_to_records(
        Access(addr=i * 8, size=8, count=1, stride=0, is_write=True,
               is_atomic=False, pc=7)
        for i in range(50_000)
    )

    def build():
        b = TreeBuilder()
        b.add_records(records)
        return b.finish()

    tree = benchmark(build)
    assert len(tree) == 1  # 50k accesses -> one summarised node


def test_bench_diophantine_solver(benchmark):
    systems = [
        OverlapSystem(
            IntervalConstraint(base=10 + i, stride=8, count=1000, size=4),
            IntervalConstraint(base=14 + i * 3, stride=12, count=1000, size=4),
        )
        for i in range(100)
    ]

    def solve_all():
        return sum(1 for s in systems if s.feasible())

    feasible = benchmark(solve_all)
    assert 0 <= feasible <= 100


def test_bench_osl_judgment(benchmark):
    labels = [
        make_interval_label((1, s % 8, b % 4, 8), (10 + s % 3, 0, 0, 2))
        for s, b in ((i, i * 7) for i in range(64))
    ]

    def judge_all():
        count = 0
        for a in labels:
            for b in labels:
                if concurrent_intervals(a, b):
                    count += 1
        return count

    count = benchmark(judge_all)
    assert count > 0


def test_bench_buffer_append(benchmark):
    access = Access(addr=0x1000, size=8, count=1, stride=0, is_write=True,
                    is_atomic=False, pc=5)
    buf = EventBuffer(capacity=25_000)

    def fill():
        for _ in range(25_000):
            buf.append_access(access)
        buf.flush()

    benchmark(fill)
    assert buf.events_total >= 25_000


def test_bench_archer_shadow_bulk(benchmark):
    space = AddressSpace()
    arr = space.alloc_array("a", 100_000, np.float64)
    shadow = AllocationShadow(arr.allocation, cells=4, word_bytes=8)
    vc = np.zeros(8, dtype=np.int64)

    def process():
        hits = []
        shadow.check_and_store(
            addr=arr.addr(0), size=8, count=100_000, stride=8,
            tid=1, clk=1, is_write=True, is_atomic=False, pc=3,
            vc_array=vc, on_race=hits.append,
        )
        return hits

    hits = benchmark(process)
    assert hits == [] or hits  # either is valid; kernel must complete
