"""The static pre-screening elision gate.

CI's ``benchmarks-smoke`` job runs this: across the OmpSCR + HPC corpora
the pre-screener must elide **at least 30%** of the events a
full-instrumentation run would log, with byte-identical race sets.  The
per-workload table is saved under ``benchmarks/results/`` so regressions
are diagnosable from the artifact alone.
"""

import json

from repro.common.config import SwordConfig
from repro.harness.tables import Table
from repro.harness.tools import SwordDriver
from repro.workloads import REGISTRY

from conftest import hpc_params

#: The gate floor: fraction of the full event stream elided, aggregated
#: across the whole corpus (currently ~60%; 30% leaves headroom without
#: letting the subsystem quietly rot).
GATE_FRACTION = 0.30

NTHREADS = 8


def _blob(races) -> bytes:
    return json.dumps(races.to_json(), sort_keys=True).encode()


def _corpus():
    for w in REGISTRY.suite("ompscr"):
        yield w, {}
    for name in ("hpccg", "minife", "lulesh", "amg2013_10"):
        w = REGISTRY.get(name)
        yield w, hpc_params(w)


def test_static_prescreen_elision_gate(benchmark, save_result):
    table = Table(
        f"Static pre-screening elision at {NTHREADS} threads "
        f"(gate: >= {GATE_FRACTION:.0%} aggregate)",
        ("workload", "events_full", "events_elided", "fraction", "parity"),
    )

    def sweep():
        rows = []
        total_elided = 0
        total_full = 0
        for w, params in _corpus():
            on = SwordDriver().run(w, nthreads=NTHREADS, seed=0, **params)
            off = SwordDriver().run(
                w,
                nthreads=NTHREADS,
                seed=0,
                sword_config=SwordConfig(static_prescreen=False),
                **params,
            )
            parity = _blob(on.races) == _blob(off.races)
            elided = on.stats["events_elided"]
            full = off.stats["events"]
            rows.append((w.name, full, elided, parity))
            total_elided += elided
            total_full += full
        return rows, total_elided, total_full

    rows, total_elided, total_full = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    for name, full, elided, parity in rows:
        table.add(
            name,
            full,
            elided,
            f"{elided / max(full, 1):.1%}",
            "ok" if parity else "DIVERGED",
        )
    fraction = total_elided / max(total_full, 1)
    table.note(
        f"aggregate: {total_elided}/{total_full} events elided "
        f"({fraction:.1%})"
    )
    save_result("static_prescreen", table.render())

    assert all(parity for _, _, _, parity in rows), "race sets diverged"
    assert fraction >= GATE_FRACTION, (
        f"elision gate: {fraction:.1%} < {GATE_FRACTION:.0%}"
    )
    # At least one DEFINITE_RACE corpus workload and a majority of the
    # spec'd ones must actually elide.
    eliding = [name for name, _, elided, _ in rows if elided > 0]
    assert len(eliding) >= 8, eliding
