"""Ablations of the design choices DESIGN.md §5 calls out.

* **Shadow-cell count** — the eviction misses are a direct consequence of
  TSan's 4-cell bound: raising the cell count recovers the hidden AMG races
  at a proportional shadow-memory cost (quantifies §II's trade-off).
* **Buffer capacity** — the paper fixes 25,000 events (~2 MB, L3-resident):
  smaller buffers multiply flush count (I/O overhead), larger ones only
  spend memory; flushed byte volume is invariant.
* **Interval summarisation** — the paper credits interval trees for the
  days-to-seconds offline speedup: compare summarised tree sizes against a
  one-node-per-access baseline and measure the compare-time effect.
"""

import numpy as np
import pytest

from repro.archer.tool import ArcherTool
from repro.common.config import (
    ArcherConfig,
    RunConfig,
    SchedulerConfig,
    SwordConfig,
)
from repro.harness.tables import Table
from repro.memory.accounting import NodeMemory
from repro.omp.runtime import OpenMPRuntime
from repro.sword.logger import SwordTool
from repro.workloads import REGISTRY


def test_ablation_shadow_cells(benchmark, save_result):
    """Detection and memory as a function of the shadow-cell bound."""
    w = REGISTRY.get("amg2013_10")

    def sweep():
        table = Table(
            "Ablation: ARCHER shadow cells on amg2013_10 (8 threads)",
            ["cells", "races found", "evictions", "shadow bytes"],
        )
        for cells in (2, 4, 8, 16):
            accountant = NodeMemory(limit=2**45)
            tool = ArcherTool(ArcherConfig(shadow_cells=cells), accountant)
            rt = OpenMPRuntime(
                RunConfig(nthreads=8, scheduler=SchedulerConfig(seed=0)),
                tool=tool,
                accountant=accountant,
            )
            rt.run(lambda m: w.run_program(m, sweeps=6))
            table.add(
                cells,
                tool.race_count,
                tool.evictions,
                accountant.peak("shadow"),
            )
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("ablation_shadow_cells", table.render())

    races = dict(zip(table.column("cells"), table.column("races found")))
    shadow = dict(zip(table.column("cells"), table.column("shadow bytes")))
    # 4 cells: the paper's configuration misses the 10 eviction races.
    assert races[4] == 4
    # Enough cells to survive the re-read bursts recovers them all...
    assert races[16] == 14
    # ...at proportional shadow cost.
    assert shadow[16] == 4 * shadow[4]
    # Fewer cells never find more.
    assert races[2] <= races[4] <= races[8] <= races[16]


def test_ablation_buffer_capacity(benchmark, save_result):
    """Flush count scales inversely with the buffer bound; bytes invariant."""
    w = REGISTRY.get("c_md")

    def sweep():
        table = Table(
            "Ablation: SWORD buffer capacity on c_md (8 threads)",
            ["buffer events", "flushes", "uncompressed bytes", "io seconds"],
        )
        import tempfile, shutil

        for capacity in (100, 1_000, 25_000):
            tmp = tempfile.mkdtemp(prefix="ablation-buf-")
            try:
                tool = SwordTool(
                    SwordConfig(log_dir=tmp, buffer_events=capacity)
                )
                rt = OpenMPRuntime(
                    RunConfig(nthreads=8, scheduler=SchedulerConfig(seed=0)),
                    tool=tool,
                )
                rt.run(lambda m: w.run_program(m))
                table.add(
                    capacity,
                    tool.stats["flushes"],
                    tool.stats["bytes_uncompressed"],
                    round(tool.stats["io_seconds"], 4),
                )
            finally:
                shutil.rmtree(tmp, ignore_errors=True)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result("ablation_buffer_capacity", table.render())

    flushes = dict(zip(table.column("buffer events"), table.column("flushes")))
    volumes = set(table.column("uncompressed bytes"))
    assert flushes[100] > flushes[1_000] >= flushes[25_000]
    assert len(volumes) == 1  # the data written is capacity-invariant


def test_ablation_summarisation(benchmark, save_result):
    """Tree size and compare cost with vs without interval coalescing."""
    from repro.common.events import Access
    from repro.itree.builder import TreeBuilder
    from repro.itree.tree import IntervalTree
    from repro.itree.interval import interval_from_access
    import time

    n = 20_000
    accesses = [
        Access(addr=0x1000 + i * 8, size=8, count=1, stride=0,
               is_write=True, is_atomic=False, pc=17)
        for i in range(n)
    ]

    def build_both():
        t0 = time.perf_counter()
        builder = TreeBuilder()
        for a in accesses:
            builder.add_access(a)
        summarised = builder.finish()
        t_sum = time.perf_counter() - t0

        t1 = time.perf_counter()
        naive = IntervalTree()
        for a in accesses:
            naive.insert(interval_from_access(a))
        t_naive = time.perf_counter() - t1

        # Probe cost: overlap query across the whole extent.
        t2 = time.perf_counter()
        sum_hits = sum(1 for _ in summarised.iter_overlaps(0, 0x1000 + n * 8))
        t_q_sum = time.perf_counter() - t2
        t3 = time.perf_counter()
        naive_hits = sum(1 for _ in naive.iter_overlaps(0, 0x1000 + n * 8))
        t_q_naive = time.perf_counter() - t3

        table = Table(
            f"Ablation: interval summarisation ({n} unit-stride accesses)",
            ["variant", "tree nodes", "build s", "full-scan hits", "scan s"],
        )
        table.add("summarised", len(summarised), round(t_sum, 4), sum_hits,
                  round(t_q_sum, 6))
        table.add("naive", len(naive), round(t_naive, 4), naive_hits,
                  round(t_q_naive, 6))
        return table

    table = benchmark.pedantic(build_both, rounds=1, iterations=1)
    save_result("ablation_summarisation", table.render())

    nodes = dict(zip(table.column("variant"), table.column("tree nodes")))
    assert nodes["summarised"] == 1
    assert nodes["naive"] == n
