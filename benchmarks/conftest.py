"""Benchmark-harness plumbing.

Every experiment benchmark regenerates one paper table/figure, saves the
rendered text under ``benchmarks/results/``, and echoes it into the pytest
output (run with ``-s`` to see it live).  Timings come from
pytest-benchmark; the regenerations use single-round pedantic mode since
each one is itself a multi-run experiment.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Persist one experiment's rendered output."""

    def _save(experiment_id: str, text: str) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def hpc_params(w):
    """Benchmark-tier parameters for the HPC suite (paper-shaped scale)."""
    if w.name.startswith("amg"):
        return {"sweeps": 6}
    if w.name == "lulesh":
        return {"steps": 40}
    return {}
