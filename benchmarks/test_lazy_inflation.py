"""Lazy-inflation benchmark: analysis cost in decompressed bytes.

The compressed-trace redesign's claim is that decompression work scales
with the races found, not with the trace size: frame-resident digests
decide most interval pairs straight off the meta rows, so pruned frames
are never inflated.  Two workloads probe the two ends of the claim:

* a **race-free regular** stencil (disjoint residue classes — the shape
  every static-scheduled strided loop produces): the digests prune every
  pair, and the acceptance bound requires ``bytes_inflated`` at most 25%
  of the trace's total uncompressed bytes (it is 0 here);
* the **seeded-race** variant (same stencil plus one hot scalar raced in
  the first interval): the lazy path must produce a byte-identical race
  set to the eager always-inflate path while still inflating less.

Both legs are timed; the rendered comparison lands in
``benchmarks/results/lazy_inflation.txt``.
"""

import json
import shutil
import tempfile
import time

from repro.common.config import RunConfig, SchedulerConfig, SwordConfig
from repro.offline import AnalysisOptions, SerialOfflineAnalyzer
from repro.offline.options import PruningOptions
from repro.omp import OpenMPRuntime
from repro.sword import SwordTool, TraceDir

NTHREADS = 8
BARRIERS = 32
SWEEPS_PER_INTERVAL = 3
CELLS_PER_THREAD = 48
#: Acceptance: on the race-free regular workload, the lazy path may
#: decompress at most this fraction of the trace's uncompressed bytes.
INFLATION_BOUND = 0.25

LAZY = AnalysisOptions()  # digests + lazy inflation are the defaults
EAGER = AnalysisOptions(
    pruning=PruningOptions(use_digests=False, lazy_inflate=False)
)


def _program(seeded_race: bool):
    def program(m):
        n = CELLS_PER_THREAD * NTHREADS
        grid = m.alloc_array("grid", n)
        flux = m.alloc_array("flux", n)
        hot = m.alloc_scalar("hot")

        def body(ctx):
            if seeded_race and ctx.tid < 2:
                ctx.write(hot, 0, float(ctx.tid))
            for _ in range(BARRIERS):
                for _ in range(SWEEPS_PER_INTERVAL):
                    ctx.read_slice(grid, ctx.tid, n, step=NTHREADS)
                    ctx.write_slice(
                        flux, ctx.tid, n,
                        [1.0] * CELLS_PER_THREAD, step=NTHREADS,
                    )
                    ctx.write_slice(
                        grid, ctx.tid, n,
                        [2.0] * CELLS_PER_THREAD, step=NTHREADS,
                    )
                ctx.barrier()

        m.parallel(body, nthreads=NTHREADS)

    return program


def _collect(trace_path: str, *, seeded_race: bool) -> None:
    # Small blocks so inflation cost is attributable per barrier
    # interval — one giant block would decompress wholesale on first
    # touch and mask what the pruning saves.
    tool = SwordTool(SwordConfig(log_dir=trace_path, buffer_events=128))
    rt = OpenMPRuntime(
        RunConfig(nthreads=NTHREADS, scheduler=SchedulerConfig(seed=0)),
        tool=tool,
    )
    rt.run(_program(seeded_race))


def _trace_bytes(trace_path: str) -> int:
    trace = TraceDir(trace_path)
    total = 0
    for gid in trace.thread_gids:
        with trace.reader(gid) as reader:
            total += reader.uncompressed_bytes
    return total


def _analyze(trace_path: str, options: AnalysisOptions):
    t0 = time.perf_counter()
    result = SerialOfflineAnalyzer(
        TraceDir(trace_path), options=options
    ).analyze()
    return time.perf_counter() - t0, result


def _blob(races):
    return json.dumps(races.to_json(), sort_keys=True).encode()


def test_lazy_inflation_bytes_and_parity(benchmark, save_result):
    clean_path = tempfile.mkdtemp(prefix="bench-lazy-clean-")
    racy_path = tempfile.mkdtemp(prefix="bench-lazy-racy-")
    try:
        _collect(clean_path, seeded_race=False)
        _collect(racy_path, seeded_race=True)
        clean_total = _trace_bytes(clean_path)
        racy_total = _trace_bytes(racy_path)

        def run_suite():
            lazy_clean_s, lazy_clean = _analyze(clean_path, LAZY)
            eager_clean_s, eager_clean = _analyze(clean_path, EAGER)
            lazy_racy_s, lazy_racy = _analyze(racy_path, LAZY)
            eager_racy_s, eager_racy = _analyze(racy_path, EAGER)
            return (
                lazy_clean_s, lazy_clean, eager_clean_s, eager_clean,
                lazy_racy_s, lazy_racy, eager_racy_s, eager_racy,
            )

        (
            lazy_clean_s, lazy_clean, eager_clean_s, eager_clean,
            lazy_racy_s, lazy_racy, eager_racy_s, eager_racy,
        ) = benchmark.pedantic(run_suite, rounds=1, iterations=1)

        frac = lazy_clean.stats.bytes_inflated / clean_total
        lines = [
            "Lazy inflation on compressed traces "
            f"({NTHREADS} threads x {BARRIERS} barrier intervals):",
            f"  race-free regular workload ({clean_total} trace bytes):",
            f"    lazy : {lazy_clean_s:.4f}s  "
            f"inflated {lazy_clean.stats.bytes_inflated} B "
            f"({100 * frac:.1f}% of trace, bound {100 * INFLATION_BOUND:.0f}%)"
            f"  frames pruned {lazy_clean.stats.frames_pruned}",
            f"    eager: {eager_clean_s:.4f}s  "
            f"inflated {eager_clean.stats.bytes_inflated} B "
            f"({100 * eager_clean.stats.bytes_inflated / clean_total:.1f}%)",
            f"  seeded-race workload ({racy_total} trace bytes):",
            f"    lazy : {lazy_racy_s:.4f}s  "
            f"inflated {lazy_racy.stats.bytes_inflated} B "
            f"({100 * lazy_racy.stats.bytes_inflated / racy_total:.1f}%)"
            f"  races {len(lazy_racy.races)}",
            f"    eager: {eager_racy_s:.4f}s  "
            f"inflated {eager_racy.stats.bytes_inflated} B "
            f"({100 * eager_racy.stats.bytes_inflated / racy_total:.1f}%)",
            "  race sets byte-identical across lazy/eager on both workloads",
        ]
        save_result("lazy_inflation", "\n".join(lines))

        # Correctness before cost: both workloads byte-identical.
        assert _blob(lazy_clean.races) == _blob(eager_clean.races)
        assert _blob(lazy_racy.races) == _blob(eager_racy.races)
        assert len(lazy_racy.races) >= 1
        assert len(lazy_clean.races) == 0

        # The machinery engaged: everything pruned without inflation.
        assert lazy_clean.stats.frames_pruned > 0
        assert lazy_clean.stats.frames_inflated == 0
        # (>=: tree-cache eviction can re-inflate frames on the eager leg)
        assert eager_clean.stats.bytes_inflated >= clean_total

        # The headline acceptance bound.
        assert frac <= INFLATION_BOUND, (
            f"lazy analysis inflated {100 * frac:.1f}% of the race-free "
            f"trace (bound {100 * INFLATION_BOUND:.0f}%)"
        )
    finally:
        shutil.rmtree(clean_path, ignore_errors=True)
        shutil.rmtree(racy_path, ignore_errors=True)
