"""Extension benchmark: instrumentation overhead (on vs. off).

The observability layer promises to be cheap enough to leave enabled in
production runs: with the null backend every hot path pays one no-op
method call, and with the live backend the heavy signals are mirrored at
batch grain (per flush, per pair, per run) rather than per event.

This benchmark times the full SwordDriver pipeline (dynamic run +
offline analysis) on a set of small workloads twice:

* ``off`` — the ambient ``NULL_OBS`` bundle (the default for every run
  that passes no ``--metrics``/``--trace-events``/``--json`` flag);
* ``on``  — a fresh ``live()`` bundle per run: metrics registry, phase
  tracer, and the memory-bound gauge all recording.

The two configurations are timed in interleaved repeats (off, on, off,
on, ...) so both sample the same machine conditions, and the minimum
wall time per configuration is kept — for a deterministic
single-process workload the minimum is the least noisy location
statistic.  The acceptance target is <= 5% overhead with
instrumentation on; the assertion adds a small absolute cushion so a
scheduler hiccup on a sub-100ms workload cannot flake CI, and the
aggregate (summed) overhead is held to the 5% target directly.
"""

import time

from repro.harness.tables import Table
from repro.harness.tools import driver
from repro.obs import NULL_OBS, live
from repro.workloads import REGISTRY

WORKLOADS = ["plusplus-orig-yes", "c_pi", "c_md"]
REPEATS = 7
TARGET_OVERHEAD = 0.05  # the headline promise: <= 5% with metrics on
PER_WORKLOAD_SLACK = 0.10  # per-workload cushion against timer noise
ABS_SLACK_SECONDS = 0.02


def _one_run(workload, obs):
    t0 = time.perf_counter()
    result = driver("sword").run(workload, nthreads=2, seed=0, obs=obs)
    elapsed = time.perf_counter() - t0
    assert result.races is not None
    return elapsed


def _time_pair(workload):
    """Interleaved min-of-N for (off, on) on one workload."""
    off = on = float("inf")
    for _ in range(REPEATS):
        off = min(off, _one_run(workload, NULL_OBS))
        on = min(on, _one_run(workload, live()))
    return off, on


def test_extension_obs_overhead(benchmark, save_result):
    def run_suite():
        table = Table(
            "Extension: instrumentation overhead (SwordDriver, on vs. off)",
            ["workload", "off (s)", "on (s)", "overhead"],
        )
        rows = []
        for name in WORKLOADS:
            w = REGISTRY.get(name)
            # Warm-up: first touch pays imports and registry setup.
            driver("sword").run(w, nthreads=2, seed=0)
            off, on = _time_pair(w)
            overhead = on / off - 1.0
            rows.append((name, off, on, overhead))
            table.add(name, f"{off:.4f}", f"{on:.4f}", f"{overhead:+.1%}")
        total_off = sum(r[1] for r in rows)
        total_on = sum(r[2] for r in rows)
        table.add(
            "TOTAL",
            f"{total_off:.4f}",
            f"{total_on:.4f}",
            f"{total_on / total_off - 1.0:+.1%}",
        )
        table.note(f"interleaved min of {REPEATS} repeats per cell; target "
                   f"<= {TARGET_OVERHEAD:.0%} overhead with metrics on")
        table.note("off = ambient NULL_OBS bundle (the no-flags default)")
        return table, rows, total_off, total_on

    table, rows, total_off, total_on = benchmark.pedantic(
        run_suite, rounds=1, iterations=1
    )
    save_result("extension_obs", table.render())

    # Per-workload: live instrumentation stays within the cushioned bound.
    for name, off, on, _overhead in rows:
        assert on <= off * (1.0 + PER_WORKLOAD_SLACK) + ABS_SLACK_SECONDS, (
            f"{name}: instrumentation overhead {on / off - 1.0:+.1%} "
            f"exceeds the cushioned bound"
        )

    # Aggregate: the headline <= 5% promise holds across the suite.
    assert total_on <= total_off * (1.0 + TARGET_OVERHEAD) + ABS_SLACK_SECONDS, (
        f"aggregate overhead {total_on / total_off - 1.0:+.1%} "
        f"exceeds {TARGET_OVERHEAD:.0%}"
    )


def test_extension_obs_null_backend_is_free(benchmark, save_result):
    """The null backend adds no measurable cost over itself run-to-run.

    There is no pre-instrumentation binary to diff against, so the
    closest honest measurement is dispersion: time the NULL_OBS pipeline
    twice and confirm the two samples are as close to each other as two
    identical runs ever are.  A null backend that secretly did work per
    event would show up here as a systematic gap.
    """
    w = REGISTRY.get("plusplus-orig-yes")
    driver("sword").run(w, nthreads=2, seed=0)  # warm-up

    def run_pair():
        a = b = float("inf")
        for _ in range(REPEATS):
            a = min(a, _one_run(w, NULL_OBS))
            b = min(b, _one_run(w, NULL_OBS))
        return a, b

    a, b = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    gap = abs(a - b) / min(a, b)
    save_result(
        "extension_obs_null",
        "Null-backend dispersion (plusplus-orig-yes, SwordDriver):\n"
        f"  sample A: {a:.4f}s  sample B: {b:.4f}s  gap: {gap:.1%}",
    )
    assert gap <= 0.10 + ABS_SLACK_SECONDS / min(a, b)
