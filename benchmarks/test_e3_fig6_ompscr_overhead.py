"""E3 — regenerate Figure 6: OmpSCR geomean runtime/memory overheads."""

import repro.harness.experiments as E


def test_e3_figure6(benchmark, save_result):
    runtime_fig, memory_fig = benchmark.pedantic(
        lambda: E.ompscr_overhead.run(thread_counts=(8, 16, 24)),
        rounds=1,
        iterations=1,
    )
    save_result(
        "E3_fig6_ompscr_overhead",
        runtime_fig.render() + "\n\n" + memory_fig.render(),
    )

    # Shape 1: every tool's memory includes the baseline's.
    base_mem = memory_fig.get("baseline").ys()
    for label in ("archer", "archer-low", "sword"):
        ys = memory_fig.get(label).ys()
        assert all(y >= b for y, b in zip(ys, base_mem))

    # Shape 2: SWORD's *tool* overhead stays tens of MB (bounded), and its
    # total memory beats ARCHER's at every thread count (small baselines
    # mean shadow cells dominate ARCHER).
    sword_mem = memory_fig.get("sword").ys()
    archer_mem = memory_fig.get("archer").ys()
    for s, a in zip(sword_mem, archer_mem):
        assert s <= a

    # Shape 3: paper's "< 100 MB for all tools" at this scale.
    for label in ("archer", "archer-low", "sword"):
        assert max(memory_fig.get(label).ys()) < 100 * 2**20

    # Shape 4: the dynamic phase of SWORD stays within a modest factor of
    # the checkers (runtime overhead "small for all tools").
    base_rt = runtime_fig.get("baseline").ys()
    sword_rt = runtime_fig.get("sword").ys()
    assert all(s < 60 * b + 1.0 for s, b in zip(sword_rt, base_rt))


def test_e3_static_prescreen_columns(benchmark, save_result):
    """E3 extension: the pre-screening on/off overhead + elision column."""
    runtime_fig, elision_fig = benchmark.pedantic(
        lambda: E.ompscr_overhead.run_static(thread_counts=(8, 16)),
        rounds=1,
        iterations=1,
    )
    save_result(
        "E3_fig6_static_prescreen",
        runtime_fig.render() + "\n\n" + elision_fig.render(),
    )

    # Shape 1: the analyzer removes a large share of the suite's event
    # stream at every thread count (run_static already asserted race-set
    # parity workload by workload).
    fracs = elision_fig.get("elided-fraction").ys()
    assert all(f > 0.4 for f in fracs)

    # Shape 2: eliding events never makes collection materially slower.
    on = runtime_fig.get("sword").ys()
    off = runtime_fig.get("sword-nostatic").ys()
    assert all(s < o * 1.5 + 0.05 for s, o in zip(on, off))
