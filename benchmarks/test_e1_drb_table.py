"""E1 — regenerate the §IV-A DataRaceBench results (paper reports in prose)."""

import repro.harness.experiments as E
from repro.workloads import REGISTRY


def test_e1_dataracebench(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: E.drb.run(nthreads=8, seed=0), rounds=1, iterations=1
    )
    save_result("E1_dataracebench", table.render())

    rows = {row[0]: row for row in table.rows}
    # No false alarms on any race-free benchmark.
    for w in REGISTRY.suite("dataracebench"):
        if not w.racy:
            assert rows[w.name][3] == 0 and rows[w.name][4] == 0
    # Paper's highlighted outcomes.
    for name in ("indirectaccess1-orig-yes", "indirectaccess2-orig-yes",
                 "indirectaccess3-orig-yes", "indirectaccess4-orig-yes"):
        assert rows[name][3] == 0 and rows[name][4] == 0
    assert rows["nowait-orig-yes"][3] == 0 and rows["nowait-orig-yes"][4] == 1
    assert rows["privatemissing-orig-yes"][3] == 0
    assert rows["privatemissing-orig-yes"][4] == 2
    assert rows["plusplus-orig-yes"][3] == rows["plusplus-orig-yes"][4] == 2
    # SWORD detects at least what ARCHER does, everywhere.
    for row in table.rows:
        assert row[4] >= row[3]
