"""E4 — regenerate Table III: OmpSCR DA/OA/MT analysis overheads."""

import repro.harness.experiments as E


def test_e4_table3(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: E.ompscr_offline.run(nthreads=8, seed=0, mt_workers=4),
        rounds=1,
        iterations=1,
    )
    save_result("E4_table3_offline_overheads", table.render())

    # Every benchmark has all five measurements.
    assert len(table.rows) >= 12
    for row in table.rows:
        assert all(cell for cell in row[1:])

    # Shape: the offline analysis completes within the "less than a minute"
    # envelope the paper reports for OmpSCR on one node.
    def secs(cell: str) -> float:
        value, unit = cell.split()
        v = float(value)
        return {"us": v / 1e6, "ms": v / 1e3, "s": v, "min": v * 60}[unit]

    for row in table.rows:
        assert secs(row[4]) < 60, f"{row[0]}: OA exceeded a minute"
