"""E5 — regenerate Table IV: HPC race counts with the AMG OOM crossover."""

import repro.harness.experiments as E

from conftest import hpc_params


def test_e5_table4(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: E.hpc_races.run(nthreads=8, seed=0, params_for=hpc_params),
        rounds=1,
        iterations=1,
    )
    save_result("E5_table4_hpc_races", table.render())

    rows = {row[0]: row[1:] for row in table.rows}
    # The paper's Table IV, cell for cell.
    assert rows["minife"] == (0, 0, 0)
    assert rows["hpccg"] == (1, 1, 1)
    assert rows["lulesh"] == (0, 0, 0)
    for size in (10, 20, 30):
        assert rows[f"amg2013_{size}"] == (4, 4, 14)
    assert rows["amg2013_40"] == ("OOM", "OOM", 14)
