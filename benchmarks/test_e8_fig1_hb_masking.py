"""E8 — regenerate Figure 1: schedule-dependent happens-before masking."""

import repro.harness.experiments as E


def test_e8_figure1(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: E.hb_masking.run(seeds=range(20)), rounds=1, iterations=1
    )
    save_result("E8_fig1_hb_masking", table.render())

    archer = [row[1] for row in table.rows]
    sword = [row[2] for row in table.rows]
    # Figure 1(a): some schedule exposes the race to happens-before.
    assert any(c == 1 for c in archer)
    # Figure 1(b): some schedule masks it.
    assert any(c == 0 for c in archer)
    # SWORD: schedule-independent detection, every time.
    assert all(c == 1 for c in sword)
