"""E9 — regenerate the §III-A codec comparison on real trace corpora."""

import repro.harness.experiments as E
from repro.sword.compression import by_name


def test_e9_codecs(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: E.codec_compare.run(workload_name="c_md", nthreads=8, repeats=3),
        rounds=1,
        iterations=1,
    )
    save_result("E9_codec_comparison", table.render())

    ratios = {
        row[0]: float(row[2].rstrip("x")) for row in table.rows
    }
    # Every codec actually compresses the (highly regular) trace records.
    for name in ("lz4", "snappy", "zlib"):
        assert ratios[name] > 2.0, name
    # The paper's observation: the LZ77-family candidates land close to one
    # another on trace data.
    assert 0.3 < ratios["lz4"] / ratios["snappy"] < 3.0


def test_e9_compress_throughput_kernels(benchmark):
    """Micro: default-codec compression of one flush buffer."""
    corpus = E.codec_compare.trace_corpus("c_jacobi01", nthreads=8)
    codec = by_name("lzrle")
    result = benchmark(lambda: codec.compress(corpus))
    assert result is not None
