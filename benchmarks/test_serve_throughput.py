"""Service throughput benchmark: sustained mixed load through `repro serve`.

Boots the fleet-tier analysis service (DESIGN.md §3.7) and drives a
multi-tenant burst from the standard mixed corpus — clean traces,
delta-filtered traces, and one torn trace submitted in salvage mode —
measuring what the service is judged on in production:

* **jobs/sec** — terminal jobs over the wall time of the burst;
* **p50/p99 time-to-first-race** — submission (queue wait included) to
  the first race merged at the coordinator;
* **parity** — every job's race set byte-identical to single-shot
  ``repro.api.analyze`` of the same trace;
* **cross-job cache hits** — shards served from the shared
  content-hashed result cache instead of recomputed (> 0 is the
  acceptance bar: repeat submissions of the same trace must dedup).

The pool runs thread workers (``use_processes=False``) so the number
isolates scheduler + shard machinery rather than process-boot cost; the
CI ``serve-smoke`` job exercises the process-pool path separately.
"""

import shutil
import tempfile

from repro.serve import ServeConfig, TenantQuota
from repro.serve.loadgen import build_corpus, run_load
from repro.serve.service import Service

WORKERS = 4
SUBMISSIONS = 24
TENANTS = 3
NTHREADS = 4
MIN_JOBS_PER_SECOND = 0.5  # generous floor; the record is the report


def _fmt_ms(value):
    return f"{value * 1000:.1f}ms" if value is not None else "-"


def test_serve_throughput(benchmark, save_result):
    corpus_root = tempfile.mkdtemp(prefix="bench-serve-corpus-")
    try:
        corpus = build_corpus(corpus_root, nthreads=NTHREADS)

        def run_burst():
            config = ServeConfig(
                workers=WORKERS,
                use_processes=False,
                quota=TenantQuota(max_pending=SUBMISSIONS),
                shard_pairs=16,
            )
            with Service(config) as service:
                return run_load(
                    service,
                    corpus,
                    submissions=SUBMISSIONS,
                    tenants=TENANTS,
                    check_parity=True,
                )

        report = benchmark.pedantic(run_burst, rounds=1, iterations=1)

        lines = [
            "Serve throughput "
            f"({WORKERS} thread workers, {SUBMISSIONS} submissions, "
            f"{TENANTS} tenants, corpus of {len(corpus)}):",
            f"  jobs:      {report.jobs_finished}/{report.jobs_submitted} "
            f"finished in {report.elapsed_seconds:.2f}s = "
            f"{report.jobs_per_second:.1f} jobs/s",
            f"  ttfr:      p50={_fmt_ms(report.ttfr_p50)} "
            f"p99={_fmt_ms(report.ttfr_p99)} "
            f"over {len(report.ttfr_seconds)} racy job(s)",
            f"  cache:     {report.cache_hits} cross-job hit(s)",
            f"  steals:    {report.shard_steals}",
            f"  parity:    "
            f"{'byte-identical' if report.parity_ok else 'MISMATCH'} "
            f"({report.parity_checked} job(s) checked)",
        ]
        for flavor, counts in sorted(report.flavors.items()):
            lines.append(
                f"  {flavor + ':':10} {counts['finished']} job(s), "
                f"{counts['races']} race report(s)"
            )
        save_result("serve_throughput", "\n".join(lines))

        # Correctness before speed.
        assert report.parity_ok, "merged race sets diverged from single-shot"
        assert report.jobs_finished == SUBMISSIONS
        assert report.jobs_failed == 0
        # The corpus repeats within the burst, so the shared cache must
        # serve repeat shards — the cross-job dedup acceptance bar.
        assert report.cache_hits > 0
        # Salvage jobs went through the service, not around it.
        assert report.flavors.get("salvage", {}).get("finished", 0) > 0
        assert report.ttfr_p99 is not None

        assert report.jobs_per_second >= MIN_JOBS_PER_SECOND, (
            f"service managed only {report.jobs_per_second:.2f} jobs/s "
            f"(floor {MIN_JOBS_PER_SECOND})"
        )
    finally:
        shutil.rmtree(corpus_root, ignore_errors=True)
