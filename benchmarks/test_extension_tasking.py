"""Extension benchmark: OpenMP tasking (the paper's §VI future work).

Regenerates a detection table for the tasking workload suite — the
construct class the paper's SWORD explicitly cannot analyse (§III-C) —
under the extended task-ordering judgment, plus a micro-benchmark of the
judgment itself.
"""

from repro.harness.tables import Table
from repro.harness.tools import driver
from repro.workloads import REGISTRY


def test_extension_tasking_detection(benchmark, save_result):
    def run_suite():
        table = Table(
            "Extension: tasking suite detection (beyond-paper, §VI)",
            ["workload", "racy", "seeded", "archer", "sword"],
        )
        for w in REGISTRY.suite("tasking"):
            archer = driver("archer").run(w, nthreads=4, seed=0)
            sword = driver("sword").run(w, nthreads=4, seed=0)
            table.add(
                w.name,
                "yes" if w.racy else "no",
                w.seeded_races,
                archer.race_count,
                sword.race_count,
            )
        table.note("tasks modelled as lightweight threads for the HB baseline")
        table.note("sword uses the TaskGraph judgment (creation/taskwait edges)")
        return table

    table = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    save_result("extension_tasking", table.render())

    rows = {row[0]: row for row in table.rows}
    for w in REGISTRY.suite("tasking"):
        assert rows[w.name][4] == w.seeded_races, w.name
        if not w.racy:
            assert rows[w.name][3] == 0  # no false alarms from either tool


def test_bench_task_graph_judgment(benchmark):
    """Micro: ordering queries over a deep creation/wait chain."""
    from repro.tasking.graph import IMPLICIT, TaskGraph, TaskInfo

    graph = TaskGraph()
    # A chain of 200 tasks, each created by the previous, half waited.
    for i in range(1, 201):
        graph.add(
            TaskInfo(
                task_id=i,
                creator=(i - 1) if i > 1 else IMPLICIT,
                creator_gid=0,
                pid=1,
                bid=0,
                create_seq=i % 3,
                wait_seq=(i % 3 + 1) if i % 2 == 0 else None,
            )
        )

    def probe():
        hits = 0
        for i in range(1, 201, 5):
            for j in range(1, 201, 5):
                if graph.concurrent(i, 0, 0, j, 0, 0):
                    hits += 1
        return hits

    hits = benchmark(probe)
    assert hits >= 0
