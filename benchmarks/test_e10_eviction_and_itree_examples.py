"""E10 — regenerate the §II eviction example and the Figure-5 tree example."""

import repro.harness.experiments as E


def test_e10_eviction_example(benchmark, save_result):
    table = benchmark.pedantic(
        lambda: E.examples_demo.run_eviction(nthreads=8, seeds=range(6)),
        rounds=1,
        iterations=1,
    )
    save_result("E10a_eviction_example", table.render())

    # SWORD detects the a[0] write/read race under every schedule; the
    # 4-cell shadow memory evicts and (at least sometimes) misses it.
    for _seed, archer, evictions, sword in table.rows:
        assert sword >= 1
        assert evictions > 0
        assert archer <= sword
    assert any(row[1] < row[3] for row in table.rows), (
        "eviction should cost ARCHER at least one detection in the sweep"
    )


def test_e10_fig5_interval_trees(benchmark, save_result):
    table, system_text = benchmark.pedantic(
        lambda: E.examples_demo.run_fig5(n=1000), rounds=1, iterations=1
    )
    save_result(
        "E10b_fig5_interval_trees",
        table.render() + "\n\nOverlap constraint system (§III-B form):\n"
        + system_text,
    )
    # Two threads, ~999 accesses each, summarised into a handful of nodes.
    assert len(table.rows) == 2
    for _tid, nodes, events, height in table.rows:
        assert events > 900
        assert nodes <= 6
        assert height <= 4
    assert "satisfiable: True" in system_text
