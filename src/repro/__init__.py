"""SWORD reproduction: a bounded-memory OpenMP data-race detector.

Reimplementation of *SWORD: A Bounded Memory-Overhead Detector of OpenMP
Data Races in Production Runs* (Atzeni et al., IPDPS 2018) on a simulated
OpenMP substrate.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the paper-vs-measured record.

Public entry points:

* :mod:`repro.omp` — the simulated OpenMP runtime model programs run on;
* :mod:`repro.sword` — the bounded-memory online collector (buffers,
  compression, Table-I metadata);
* :mod:`repro.offline` — the offline race analysis (offset-span labels,
  interval trees, Diophantine overlap solving);
* :mod:`repro.archer` — the ARCHER happens-before baseline (vector clocks,
  4-cell shadow memory);
* :mod:`repro.harness` — tool wrappers, metrics, schedule exploration, and
  one experiment module per paper table/figure;
* :mod:`repro.workloads` — DataRaceBench / OmpSCR / HPC / paper-example /
  tasking model programs;
* :mod:`repro.tasking` — the tasking extension (paper §VI future work):
  task-ordering judgment beyond offset-span labels.

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
