"""The ARCHER baseline: happens-before detection on 4-cell shadow memory."""

from .shadow import (
    CELL_ATOMIC,
    CELL_BYTES,
    CELL_WRITE,
    AllocationShadow,
    ShadowHit,
    ShadowMemory,
)
from .tool import ArcherTool
from .vectorclock import VectorClock

__all__ = [
    "AllocationShadow",
    "ArcherTool",
    "CELL_ATOMIC",
    "CELL_BYTES",
    "CELL_WRITE",
    "ShadowHit",
    "ShadowMemory",
    "VectorClock",
]
