"""The ARCHER baseline: an online happens-before race detector.

Reimplements the behaviourally relevant core of ARCHER/TSan against the
simulator's OMPT seam:

* vector clocks transferred at forks, joins, barriers, and lock
  release->acquire edges *in the observed order* — which is precisely what
  produces the paper's Figure-1 schedule-dependent race masking;
* 4-cell shadow memory with round-robin eviction
  (:mod:`repro.archer.shadow`) — the source of the eviction misses;
* memory charged proportionally to application allocations (shadow) plus
  per-thread overhead — the source of the 5-7x footprint and the AMG OOM;
* the ``flush_shadow`` option ("archer-low") releases shadow tables between
  independent top-level regions, trading runtime for ~30% less memory;
* explicit tasks are modelled as lightweight threads (TSan's approach):
  every task gets its own sync-tid and vector clock seeded from the
  creation point, ``taskwait`` joins children back, and barriers absorb
  finished task clocks.  Detection of creator-vs-task races remains
  schedule-dependent in the usual happens-before way.

Races are deduplicated by pc pair, like SWORD's reports, so tool race
counts are directly comparable (Tables II/IV).
"""

from __future__ import annotations

from typing import Optional

from ..common.config import ArcherConfig
from ..memory.accounting import NodeMemory
from ..obs import Instrumentation, get_obs
from ..offline.report import RaceSet, make_report
from ..omp.ompt import OmptTool
from .shadow import ShadowHit, ShadowMemory
from .vectorclock import VectorClock


class ArcherTool(OmptTool):
    """Happens-before dynamic race detection (the ARCHER baseline)."""

    def __init__(
        self,
        config: ArcherConfig | None = None,
        accountant: Optional[NodeMemory] = None,
        obs: Instrumentation | None = None,
    ) -> None:
        self.config = config or ArcherConfig()
        self.config.validate()
        self.accountant = accountant
        self.obs = obs or get_obs()
        self.shadow = ShadowMemory(self.config, accountant)
        self.races = RaceSet()
        self._vcs: dict[int, VectorClock] = {}        # sync-tid -> clock
        self._fork_vcs: dict[int, VectorClock] = {}   # pid -> snapshot
        self._join_accs: dict[int, VectorClock] = {}  # pid -> accumulator
        self._barrier_accs: dict[tuple[int, int], VectorClock] = {}
        self._lock_vcs: dict[int, VectorClock] = {}
        self._charged: set[int] = set()
        # Sync-tid interning: implicit threads and explicit tasks each get a
        # dense id (TSan models OpenMP tasks as lightweight threads).
        self._tids: dict[tuple, int] = {}
        self._finished_task_tids: set[int] = set()
        self._runtime = None
        self.stats = {"accesses": 0, "sync_ops": 0}

    # -- helpers -----------------------------------------------------------------

    def _intern(self, key: tuple) -> int:
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids)
            self._tids[key] = tid
        return tid

    def _vc(self, gid: int) -> VectorClock:
        """Vector clock of a thread's *implicit* task."""
        tid = self._intern(("g", gid))
        vc = self._vcs.get(tid)
        if vc is None:
            vc = VectorClock()
            vc.tick(tid)  # every entity starts at its own epoch 1
            self._vcs[tid] = vc
        if gid not in self._charged:
            self._charged.add(gid)
            if self.accountant is not None:
                self.accountant.charge(
                    NodeMemory.TOOL, self.config.per_thread_bytes
                )
        return vc

    def _current_tid(self, thread) -> int:
        """Sync-tid of the entity the thread is executing right now."""
        if thread.task_stack:
            return self._intern(("t", thread.task_stack[-1].task_id))
        return self._intern(("g", thread.gid))

    def _current_vc(self, thread) -> VectorClock:
        if thread.task_stack:
            self._vc(thread.gid)  # ensure the thread itself is charged
            return self._vcs[self._intern(("t", thread.task_stack[-1].task_id))]
        return self._vc(thread.gid)

    # -- OMPT: structure -----------------------------------------------------------

    def on_run_begin(self, runtime) -> None:  # noqa: D102
        self._runtime = runtime

    def on_parallel_begin(self, region) -> None:  # noqa: D102
        parent = self._vc(region.parent_gid)
        self._fork_vcs[region.pid] = parent.copy()
        self._join_accs[region.pid] = VectorClock()
        parent.tick(self._intern(("g", region.parent_gid)))
        self.stats["sync_ops"] += 1

    def on_implicit_task_begin(self, thread, region, slot) -> None:  # noqa: D102
        vc = self._vc(thread.gid)
        vc.join(self._fork_vcs[region.pid])
        vc.tick(self._intern(("g", thread.gid)))

    def on_implicit_task_end(self, thread, region, slot) -> None:  # noqa: D102
        acc = self._join_accs.get(region.pid)
        if acc is not None:
            acc.join(self._vc(thread.gid))

    def on_parallel_end(self, region) -> None:  # noqa: D102
        parent = self._vc(region.parent_gid)
        acc = self._join_accs.pop(region.pid, None)
        if acc is not None:
            parent.join(acc)
        parent.tick(self._intern(("g", region.parent_gid)))
        self._fork_vcs.pop(region.pid, None)
        self.stats["sync_ops"] += 1
        if self.config.flush_shadow and region.level == 1:
            # "archer-low": release shadow between independent regions.
            self.shadow.flush()

    # -- OMPT: synchronisation ----------------------------------------------------------

    def on_barrier_arrive(self, thread, region, bid) -> None:  # noqa: D102
        acc = self._barrier_accs.setdefault((region.pid, bid), VectorClock())
        acc.join(self._vc(thread.gid))
        # OpenMP: all outstanding tasks complete at a barrier, so their
        # clocks flow into the all-to-all join as well.
        for task_tid in self._finished_task_tids:
            acc.join(self._vcs[task_tid])
        self.stats["sync_ops"] += 1

    def on_barrier_depart(self, thread, region, new_bid) -> None:  # noqa: D102
        acc = self._barrier_accs.get((region.pid, new_bid - 1))
        vc = self._vc(thread.gid)
        if acc is not None:
            vc.join(acc)
        vc.tick(self._intern(("g", thread.gid)))

    def on_mutex_acquired(self, thread, mutex_id) -> None:  # noqa: D102
        lock_vc = self._lock_vcs.get(mutex_id)
        if lock_vc is not None:
            self._current_vc(thread).join(lock_vc)
        self.stats["sync_ops"] += 1

    def on_mutex_released(self, thread, mutex_id) -> None:  # noqa: D102
        vc = self._current_vc(thread)
        lock_vc = self._lock_vcs.setdefault(mutex_id, VectorClock())
        lock_vc.join(vc)
        vc.tick(self._current_tid(thread))
        self.stats["sync_ops"] += 1

    # -- OMPT: explicit tasks (modelled as lightweight threads, like TSan) ----------

    def on_task_create(self, thread, task) -> None:  # noqa: D102
        creator_vc = self._current_vc(thread)
        task_tid = self._intern(("t", task.task_id))
        task_vc = creator_vc.copy()
        task_vc.tick(task_tid)
        self._vcs[task_tid] = task_vc
        creator_vc.tick(self._current_tid(thread))
        self.stats["sync_ops"] += 1

    def on_task_end(self, thread, task) -> None:  # noqa: D102
        self._finished_task_tids.add(self._intern(("t", task.task_id)))

    def on_taskwait(self, thread, waited, new_seq) -> None:  # noqa: D102
        vc = self._current_vc(thread)
        for task in waited:
            done_vc = self._vcs.get(self._intern(("t", task.task_id)))
            if done_vc is not None:
                vc.join(done_vc)
        vc.tick(self._current_tid(thread))
        self.stats["sync_ops"] += 1

    # -- OMPT: accesses ---------------------------------------------------------------------

    def on_access(self, thread, access) -> None:  # noqa: D102
        self.stats["accesses"] += 1
        tid = self._current_tid(thread)
        vc = self._current_vc(thread)
        space = self._runtime.space
        alloc = space.find(access.addr)
        if alloc is None:
            return  # not heap-tracked (should not happen for model programs)

        def _report(hit: ShadowHit) -> None:
            self.races.add(
                make_report(
                    pc_a=hit.cell_pc,
                    pc_b=access.pc,
                    address=hit.address,
                    write_a=hit.cell_write,
                    write_b=access.is_write,
                    gid_a=hit.cell_tid,
                    gid_b=tid,
                )
            )

        table = self.shadow.table_for(alloc)
        table.check_and_store(
            addr=access.addr,
            size=access.size,
            count=access.count,
            stride=access.stride if access.count > 1 else 0,
            tid=tid,
            clk=vc.get(tid),
            is_write=access.is_write,
            is_atomic=access.is_atomic,
            pc=access.pc,
            vc_array=vc.as_array(len(self._tids) + 1),
            on_race=_report,
        )

    def on_run_end(self, runtime) -> None:  # noqa: D102
        self.publish_metrics()

    # -- results ---------------------------------------------------------------------------------

    def publish_metrics(self) -> None:
        """Mirror the run's totals onto the metrics registry.

        The access/sync hot paths keep their plain dict counters; the
        registry gets the totals once at run end (batch grain, so the
        happens-before baseline pays nothing per event either).
        """
        registry = self.obs.registry
        registry.counter("archer.accesses", "accesses checked").inc(
            self.stats["accesses"]
        )
        registry.counter("archer.sync_ops", "synchronisation edges").inc(
            self.stats["sync_ops"]
        )
        registry.counter("archer.evictions", "shadow cells evicted").inc(
            self.evictions
        )
        registry.gauge("archer.races", "distinct racy pc pairs").set(
            len(self.races)
        )

    @property
    def race_count(self) -> int:
        return len(self.races)

    @property
    def evictions(self) -> int:
        return self.shadow.total_evictions
