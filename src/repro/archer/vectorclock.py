"""Vector clocks and epochs for the happens-before baseline.

ARCHER rides on TSan's happens-before engine: every thread carries a vector
clock, synchronisation transfers clocks (fork/join, barriers, lock
release->acquire in *observed* order), and each shadow cell stores the
writing thread's epoch ``(tid, clk)``.  An access epoch happens-before the
current thread iff ``clk <= VC_current[tid]`` — the O(1) FastTrack-style
check the shadow processor vectorises over whole address ranges.

Clocks are NumPy int64 arrays indexed by global thread id, grown on demand;
joins are elementwise maxima.
"""

from __future__ import annotations

import numpy as np


class VectorClock:
    """A growable vector clock."""

    __slots__ = ("_clocks",)

    def __init__(self, size: int = 8) -> None:
        self._clocks = np.zeros(max(1, size), dtype=np.int64)

    # -- capacity -------------------------------------------------------------

    def _ensure(self, tid: int) -> None:
        n = self._clocks.shape[0]
        if tid >= n:
            # Grow to the next power of two covering `tid`.  NOT `2 * n`:
            # joins size clocks against each other's capacity, and a
            # current-size-relative growth rule lets two clocks of mixed
            # capacities ratchet each other geometrically without bound.
            # Power-of-two targets are a fixed point under mutual joins.
            new_cap = max(8, 1 << (tid + 1 - 1).bit_length())
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[:n] = self._clocks
            self._clocks = grown

    # -- operations --------------------------------------------------------------

    def get(self, tid: int) -> int:
        if tid >= self._clocks.shape[0]:
            return 0
        return int(self._clocks[tid])

    def tick(self, tid: int) -> int:
        """Advance ``tid``'s component (a release point); returns new value."""
        self._ensure(tid)
        self._clocks[tid] += 1
        return int(self._clocks[tid])

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place."""
        o = other._clocks
        self._ensure(o.shape[0] - 1)
        n = o.shape[0]
        np.maximum(self._clocks[:n], o, out=self._clocks[:n])

    def copy(self) -> "VectorClock":
        vc = VectorClock(self._clocks.shape[0])
        vc._clocks = self._clocks.copy()
        return vc

    def happens_before(self, other: "VectorClock") -> bool:
        """Is self <= other pointwise (self's knowledge contained in other)?"""
        a, b = self._clocks, other._clocks
        n = min(a.shape[0], b.shape[0])
        if not (a[:n] <= b[:n]).all():
            return False
        return not a[n:].any()

    def epoch_visible(self, tid: int, clk: int) -> bool:
        """Does this clock already cover epoch ``(tid, clk)``?"""
        return clk <= self.get(tid)

    def as_array(self, length: int) -> np.ndarray:
        """Zero-padded view of the first ``length`` components (read-only)."""
        self._ensure(length - 1)
        return self._clocks[:length]

    @property
    def nbytes(self) -> int:
        return self._clocks.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        live = {i: int(v) for i, v in enumerate(self._clocks) if v}
        return f"VC({live})"
