"""TSan-style shadow memory with bounded cells and eviction.

The mechanism behind two of the paper's three ARCHER criticisms:

* **memory overhead** — every 8-byte application word owns ``C`` shadow
  cells (default 4) of 8 bytes each, so shadow memory alone is ``C/2`` times
  ... in TSan's layout exactly 4x the application footprint; the accountant
  is charged proportionally to the allocation's *simulated* size, which is
  what drives the Figure-7/8 curves and the AMG OOM;
* **race omission by eviction** — a fifth access to a word evicts one of the
  four cells round-robin, so a write record can be flushed out by a burst of
  reads before any racing thread arrives (§II's ``a[0]`` example, and the
  source of the AMG/OmpSCR races ARCHER misses).

Shadow state is column-oriented NumPy (one array per field, shape
``(nwords, C)``) so that whole strided ranges are checked and updated with
vectorised expressions rather than per-word Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..common.config import ArcherConfig
from ..memory.accounting import NodeMemory
from ..memory.address_space import Allocation

#: Flag bits stored per cell.
CELL_WRITE = 0x1
CELL_ATOMIC = 0x2

#: Shadow cell size in bytes (TSan: one word per cell).
CELL_BYTES = 8


@dataclass(frozen=True, slots=True)
class ShadowHit:
    """One racing (cell, current-access) pair found during a check."""

    cell_pc: int
    cell_tid: int
    cell_write: bool
    address: int


class AllocationShadow:
    """Shadow cells for one application allocation."""

    def __init__(self, alloc: Allocation, cells: int, word_bytes: int) -> None:
        self.alloc = alloc
        self.cells = cells
        self.word_bytes = word_bytes
        nwords = (alloc.nbytes + word_bytes - 1) // word_bytes
        self.nwords = nwords
        shape = (nwords, cells)
        self.tid = np.full(shape, -1, dtype=np.int32)
        self.clk = np.zeros(shape, dtype=np.int64)
        self.mask = np.zeros(shape, dtype=np.uint8)
        self.flags = np.zeros(shape, dtype=np.uint8)
        self.pc = np.zeros(shape, dtype=np.uint64)
        self.nfilled = np.zeros(nwords, dtype=np.uint8)
        self.evict_next = np.zeros(nwords, dtype=np.uint8)
        self.evictions = 0

    @property
    def accounted_bytes(self) -> int:
        """Bytes charged for this table: C cells per word of *simulated* size."""
        sim_words = (self.alloc.sim_bytes + self.word_bytes - 1) // self.word_bytes
        return sim_words * self.cells * CELL_BYTES

    # -- vectorised access processing -------------------------------------------

    def _element_words(
        self, addr: int, size: int, count: int, stride: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Unique word indices and per-word byte masks for a bulk access.

        Elements are assumed not to straddle word boundaries (allocations
        are 16-aligned and access sizes are power-of-two <= word size);
        straddling bytes would be clipped.
        """
        starts = (addr - self.alloc.base) + stride * np.arange(
            count, dtype=np.int64
        )
        words = starts // self.word_bytes
        offs = starts - words * self.word_bytes
        masks = (((1 << size) - 1) << offs).astype(np.int64) & 0xFF
        uniq, inverse = np.unique(words, return_inverse=True)
        agg = np.zeros(uniq.shape[0], dtype=np.int64)
        np.bitwise_or.at(agg, inverse, masks)
        return uniq.astype(np.int64), agg.astype(np.uint8)

    def check_and_store(
        self,
        *,
        addr: int,
        size: int,
        count: int,
        stride: int,
        tid: int,
        clk: int,
        is_write: bool,
        is_atomic: bool,
        pc: int,
        vc_array: np.ndarray,
        on_race: Callable[[ShadowHit], None],
    ) -> None:
        """Race-check a (possibly bulk) access against the cells, then record it.

        ``vc_array`` is the acting thread's vector clock as a dense array
        covering every tid that may appear in cells.
        """
        if count > 1 and stride < 0:
            addr = addr + (count - 1) * stride
            stride = -stride
        words, masks = self._element_words(addr, size, count, stride)

        # --- check phase (vectorised over words x cells) ---
        c_tid = self.tid[words]            # (W, C)
        valid = c_tid >= 0
        if valid.any():
            c_clk = self.clk[words]
            c_mask = self.mask[words]
            c_flags = self.flags[words]
            overlap = (c_mask & masks[:, None]) != 0
            other_thread = c_tid != tid
            some_write = is_write | ((c_flags & CELL_WRITE) != 0)
            both_atomic = is_atomic & ((c_flags & CELL_ATOMIC) != 0)
            # Epoch (t, c) happens-before current iff c <= VC[t].
            safe_tid = np.where(valid, c_tid, 0)
            ordered = c_clk <= vc_array[safe_tid]
            racy = valid & overlap & other_thread & some_write & ~both_atomic & ~ordered
            if racy.any():
                w_idx, c_idx = np.nonzero(racy)
                # Report one hit per distinct cell pc (dedup happens later
                # at the pc-pair level anyway).
                seen: set[int] = set()
                for wi, ci in zip(w_idx, c_idx):
                    cell_pc = int(self.pc[words[wi], ci])
                    if cell_pc in seen:
                        continue
                    seen.add(cell_pc)
                    on_race(
                        ShadowHit(
                            cell_pc=cell_pc,
                            cell_tid=int(c_tid[wi, ci]),
                            cell_write=bool(c_flags[wi, ci] & CELL_WRITE),
                            address=self.alloc.base
                            + int(words[wi]) * self.word_bytes,
                        )
                    )

        # --- store phase: one new cell per touched word ---
        filled = self.nfilled[words]
        full = filled >= self.cells
        slots = np.where(full, self.evict_next[words], filled).astype(np.intp)
        self.evictions += int(full.sum())
        self.tid[words, slots] = tid
        self.clk[words, slots] = clk
        self.mask[words, slots] = masks
        self.flags[words, slots] = (CELL_WRITE if is_write else 0) | (
            CELL_ATOMIC if is_atomic else 0
        )
        self.pc[words, slots] = pc
        self.nfilled[words] = np.minimum(filled + 1, self.cells)
        self.evict_next[words] = np.where(
            full, (self.evict_next[words] + 1) % self.cells, self.evict_next[words]
        )


class ShadowMemory:
    """All allocations' shadow tables plus the accounting hooks."""

    def __init__(
        self,
        config: ArcherConfig,
        accountant: Optional[NodeMemory] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.accountant = accountant
        self._tables: dict[int, AllocationShadow] = {}  # keyed by alloc.base
        self.flushes = 0

    def table_for(self, alloc: Allocation) -> AllocationShadow:
        """Get (lazily creating and charging) the table of one allocation."""
        table = self._tables.get(alloc.base)
        if table is None:
            table = AllocationShadow(
                alloc, self.config.shadow_cells, self.config.shadow_word_bytes
            )
            if self.accountant is not None:
                self.accountant.charge(NodeMemory.SHADOW, table.accounted_bytes)
                misc = int(alloc.sim_bytes * self.config.misc_overhead_factor)
                if misc:
                    self.accountant.charge(NodeMemory.TOOL, misc)
            self._tables[alloc.base] = table
        return table

    def flush(self) -> None:
        """Release every shadow table (the "archer-low" inter-region flush).

        Frees the proportional shadow charge but *not* the misc overhead —
        matching the paper's observation that the flush reduces the
        footprint by only ~30% while costing extra page-release work.
        """
        self.flushes += 1
        for table in self._tables.values():
            if self.accountant is not None:
                self.accountant.release(NodeMemory.SHADOW, table.accounted_bytes)
        self._tables.clear()

    @property
    def total_evictions(self) -> int:
        return sum(t.evictions for t in self._tables.values())

    @property
    def tables(self) -> int:
        return len(self._tables)
