"""The streaming race analyzer: analysis racing the application.

A :class:`StreamAnalyzer` subscribes to the online tool's flush-event
bus and drives the shared :class:`~repro.offline.engine.AnalysisEngine`
over pairs emitted by the :class:`~repro.stream.scheduler.
IncrementalPairScheduler` — while the traced program is still running.
Races are reported the moment they are confirmed (the live feed), and by
program end most of the offline work is already done.

The final race set is byte-identical to the post-mortem analyzers': the
engine deduplicates per comparison only and the
:class:`~repro.offline.report.RaceSet` keeps the canonical witness, so
pair order (the only thing streaming changes) cannot show through.

Progress is optionally checkpointed (:mod:`repro.stream.checkpoint`); an
interrupted analysis resumes by replaying the finished trace through the
same observer — checkpointed pairs are skipped, the rest are analyzed.
"""

from __future__ import annotations

import time
from pathlib import Path

from ..common.config import OfflineConfig
from ..common.deprecation import warn_once
from ..obs import Instrumentation, get_obs
from ..offline.engine import AnalysisEngine, AnalysisResult, AnalysisStats
from ..offline.intervals import IntervalData
from ..offline.options import AnalysisOptions
from ..offline.report import RaceSet
from ..sword.reader import ThreadTraceReader, TraceDir
from .bus import TraceObserver, replay_trace
from .checkpoint import Checkpoint
from .scheduler import IncrementalPairScheduler


class StreamingInterrupted(RuntimeError):
    """Raised when the analyzer hits its ``max_pairs`` budget (tests use
    this to simulate a mid-run crash; the checkpoint is saved first)."""


class LiveTraceSource:
    """Engine trace source over a directory still being written.

    ``mutexsets`` and ``task_graph`` are bound at trace begin — to the
    runtime's live tables when observing a run, or to the closed trace's
    loaded tables when replaying.
    """

    def __init__(self, directory: str | Path, *, live: bool = True) -> None:
        self.directory = Path(directory)
        self.live = live
        self.mutexsets = None
        self.task_graph = None

    def reader(self, gid: int) -> ThreadTraceReader:
        return ThreadTraceReader(self.directory, gid, live=self.live)


class StreamAnalyzer(TraceObserver):
    """Incremental analysis over the flush-event bus.

    Args:
        directory: the trace directory being produced (or replayed).
        config: offline-analysis tuning (chunking, ILP crosscheck).
        options: unified :class:`AnalysisOptions`; the explicit keyword
            arguments below override the matching fields when given.
        checkpoint_path: enable resumable progress at this file.
        checkpoint_every: save the checkpoint after this many new pairs.
        on_race: live feed — called with each :class:`RaceReport` the
            first time its pc pair is confirmed.
        max_pairs: analyze at most this many new pairs, then save the
            checkpoint and raise :class:`StreamingInterrupted`.
        tree_cache_capacity: bound on cached interval trees (LRU).
    """

    def __init__(
        self,
        directory: str | Path,
        config: OfflineConfig | None = None,
        *,
        options: AnalysisOptions | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int | None = None,
        on_race=None,
        max_pairs: int | None = None,
        tree_cache_capacity: int | None = None,
        obs: Instrumentation | None = None,
    ) -> None:
        self.directory = Path(directory)
        options = (
            options.copy() if options is not None
            else AnalysisOptions.from_config(config)
        )
        if checkpoint_path is not None:
            options.checkpoint_path = str(checkpoint_path)
        if checkpoint_every is not None:
            options.checkpoint_every = checkpoint_every
        if max_pairs is not None:
            options.max_pairs = max_pairs
        if tree_cache_capacity is not None:
            options.tree_cache_capacity = tree_cache_capacity
        options.validate()
        self.options = options
        self.config = options.offline_config()
        self.obs = obs or options.obs or get_obs()
        self.on_race = on_race
        registry = self.obs.registry
        self._m_pairs = registry.counter(
            "stream.pairs_analyzed", "interval pairs analyzed live"
        )
        self._m_skipped = registry.counter(
            "stream.pairs_skipped", "pairs skipped via checkpoint"
        )
        self._m_races = registry.gauge(
            "stream.races", "confirmed races so far"
        )
        self._m_first_race = registry.gauge(
            "stream.first_race_seconds", "time to first confirmed race"
        )
        self.checkpoint = (
            Checkpoint(options.checkpoint_path)
            if options.checkpoint_path
            else None
        )
        self.checkpoint_every = max(1, options.checkpoint_every)
        self.max_pairs = options.max_pairs
        # Resuming: the checkpoint's race set *is* the working set, so
        # every save persists the merged state.
        self.races: RaceSet = (
            self.checkpoint.races if self.checkpoint else RaceSet()
        )
        self.scheduler = IncrementalPairScheduler(is_tasky=self._is_tasky)
        self.source = LiveTraceSource(self.directory)
        self.engine: AnalysisEngine | None = None
        self.pairs_analyzed = 0
        self.pairs_skipped = 0
        self.first_race_seconds: float | None = None
        self.finished = False
        self._since_save = 0
        self._t0: float | None = None
        #: The trace producer (live SwordTool or replayed TraceDir) —
        #: its static verdict table is read lazily at result time, when
        #: a live run's table is complete.
        self._producer = None

    # -- wiring -----------------------------------------------------------------

    def _is_tasky(self, pid: int, bid: int) -> bool:
        graph = self.source.task_graph
        if graph is None or len(graph) == 0:
            return False
        return any(t.pid == pid and t.bid == bid for t in graph.tasks())

    def _race_seen(self, report) -> None:
        if self.first_race_seconds is None and self._t0 is not None:
            self.first_race_seconds = time.perf_counter() - self._t0
            self._m_first_race.set(self.first_race_seconds)
        self._m_races.set(len(self.races))
        if self.on_race is not None:
            self.on_race(report)

    # -- TraceObserver hooks ------------------------------------------------------

    def on_trace_begin(self, producer) -> None:
        self._t0 = time.perf_counter()
        self._producer = producer
        runtime = getattr(producer, "runtime", None)
        if runtime is not None:
            # Live run: bind the runtime's growing tables.  Mutex-set ids
            # are interned before any event referencing them is logged,
            # and task-graph verdicts for a (pid, bid) group are final
            # once the group seals, so reading the live tables is sound.
            self.source.mutexsets = runtime.mutexsets
            self.source.task_graph = producer.task_graph
            self.source.live = True
        else:
            # Replay of a closed TraceDir.
            self.source.mutexsets = producer.mutexsets
            self.source.task_graph = producer.task_graph
            self.source.live = False
        self.engine = AnalysisEngine(
            self.source,
            options=self.options,
            obs=self.obs,
        )

    def on_region(self, pid: int, info: dict) -> None:
        self.scheduler.add_region(pid, info)

    def on_chunk(self, gid: int, row) -> None:
        self.scheduler.add_chunk(gid, row)

    def on_interval_end(
        self, gid: int, pid: int, bid: int, slot: int, span: int
    ) -> None:
        pairs = self.scheduler.complete_interval(gid, pid, bid, slot, span)
        self._process(pairs)

    def on_trace_end(self, producer) -> None:
        self.finished = True
        if self.checkpoint is not None:
            self.checkpoint.save()
        if self.engine is not None:
            self.engine.close()

    # -- pair processing -----------------------------------------------------------

    def _process(self, pairs: list[tuple[IntervalData, IntervalData]]) -> None:
        assert self.engine is not None, "on_trace_begin not delivered"
        for ia, ib in pairs:
            if self.checkpoint is not None and self.checkpoint.contains(
                ia.key, ib.key
            ):
                self.pairs_skipped += 1
                self._m_skipped.inc()
                continue
            self.engine.analyze_pair(
                ia, ib, self.races, on_race=self._race_seen
            )
            self.pairs_analyzed += 1
            self._m_pairs.inc()
            if self.checkpoint is not None:
                self.checkpoint.record(ia.key, ib.key)
                self._since_save += 1
                if self._since_save >= self.checkpoint_every:
                    self.checkpoint.save()
                    self._since_save = 0
            if (
                self.max_pairs is not None
                and self.pairs_analyzed >= self.max_pairs
            ):
                if self.checkpoint is not None:
                    self.checkpoint.save()
                self.engine.close()
                raise StreamingInterrupted(
                    f"pair budget exhausted after {self.pairs_analyzed}"
                )

    # -- results ------------------------------------------------------------------

    def result(self) -> AnalysisResult:
        """Races and stats accumulated so far (final after trace end)."""
        stats = self.engine.stats if self.engine is not None else AnalysisStats()
        if self.engine is not None:
            # Fold in the producer's verdict table (read lazily: a live
            # tool's table only completes as regions register).  The
            # injection is idempotent under RaceSet's canonical merge.
            self.engine.apply_static_verdicts(
                self.races,
                on_race=self._race_seen,
                table=getattr(self._producer, "static_verdicts", None),
            )
        stats.intervals = len(self.scheduler)
        stats.concurrent_pairs = self.scheduler.pairs_emitted
        stats.races_found = len(self.races)
        return AnalysisResult(races=self.races, stats=stats)


class StreamingAnalyzer(StreamAnalyzer):
    """Deprecated alias; use ``repro.api.Session`` or
    ``repro.api.analyze(trace, mode="streaming")`` instead."""

    def __init__(self, *args, **kwargs) -> None:
        warn_once(
            "StreamingAnalyzer",
            "StreamingAnalyzer is deprecated; use repro.api.Session / "
            "repro.api.analyze(trace, mode='streaming') "
            "(or repro.stream.StreamAnalyzer)",
        )
        super().__init__(*args, **kwargs)


def replay_analyze(
    trace: TraceDir | str | Path,
    config: OfflineConfig | None = None,
    *,
    options: AnalysisOptions | None = None,
    checkpoint_path: str | Path | None = None,
    max_pairs: int | None = None,
    on_race=None,
    obs: Instrumentation | None = None,
) -> AnalysisResult:
    """Run the streaming analyzer over a closed trace (resume path).

    With a checkpoint this picks an interrupted analysis back up: pairs
    already recorded are skipped, everything else is analyzed, and the
    returned race set matches an uninterrupted run's exactly.
    """
    if not isinstance(trace, TraceDir):
        trace = TraceDir(trace)
    analyzer = StreamAnalyzer(
        trace.path,
        config,
        options=options,
        checkpoint_path=checkpoint_path,
        max_pairs=max_pairs,
        on_race=on_race,
        obs=obs,
    )
    replay_trace(trace, analyzer)
    return analyzer.result()
