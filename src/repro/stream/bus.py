"""The flush-event bus protocol between the online logger and observers.

The online tool (:class:`~repro.sword.logger.SwordTool`) publishes the
trace *as it is produced*: region registrations, every Table-I chunk row
the moment it is durable on disk, and barrier-interval completions.  A
:class:`TraceObserver` receives those notifications; the streaming
analyzer subclasses it to race the application to the finish line.

:func:`replay_trace` re-emits the same notification sequence from a
*closed* trace directory, so every consumer (and its tests) can run
identically post-mortem — resuming an interrupted live analysis is just a
replay over the finished trace with the checkpoint filtering out pairs
already analyzed.
"""

from __future__ import annotations

from ..sword.reader import TraceDir
from ..sword.traceformat import MetaRow


class TraceObserver:
    """Base class for flush-event subscribers; every hook is a no-op.

    Hook order guarantees (live and replayed):

    * ``on_trace_begin`` precedes everything else;
    * ``on_region(pid, ...)`` precedes every chunk/interval notification
      mentioning ``pid`` (and the regions of all its descendants);
    * ``on_chunk(gid, row)`` rows of one ``gid`` arrive in log order, and
      the chunk's data is already readable on disk when notified;
    * ``on_interval_end(gid, pid, bid, ...)`` follows the last chunk of
      that interval;
    * ``on_trace_end`` follows everything, after the trace is finalised.
    """

    def on_trace_begin(self, producer) -> None:
        """The run (or replay) starts; ``producer`` exposes the trace state.

        Live, ``producer`` is the :class:`~repro.sword.logger.SwordTool`
        (``.runtime.mutexsets`` / ``.task_graph`` are its live tables);
        replayed, it is the :class:`~repro.sword.reader.TraceDir`.
        """

    def on_region(self, pid: int, info: dict) -> None:
        """A parallel region was forked (``info`` is its regions-table row)."""

    def on_chunk(self, gid: int, row: MetaRow) -> None:
        """Thread ``gid`` closed one Table-I chunk; its bytes are on disk."""

    def on_interval_end(
        self, gid: int, pid: int, bid: int, slot: int, span: int
    ) -> None:
        """Thread ``gid`` completed barrier interval ``(pid, bid)``."""

    def on_trace_end(self, producer) -> None:
        """The run (or replay) is over and the trace directory is complete."""


def replay_trace(trace: TraceDir, observer: TraceObserver) -> None:
    """Re-emit a closed trace's notification sequence to ``observer``.

    Regions are announced first (parents before children — region ids are
    assigned in fork order), then each thread's meta rows in log order
    with an ``on_interval_end`` after the last row of every interval.
    The interleaving *across* threads is not the original one (threads
    are replayed whole), but no observer contract depends on it.
    """
    observer.on_trace_begin(trace)
    for pid in sorted(trace.regions):
        observer.on_region(pid, trace.regions[pid])
    for gid in trace.thread_gids:
        reader = trace.reader(gid)
        try:
            rows = reader.rows
        finally:
            reader.close()
        last_index: dict[tuple[int, int], int] = {
            (row.pid, row.bid): i for i, row in enumerate(rows)
        }
        for i, row in enumerate(rows):
            observer.on_chunk(gid, row)
            if last_index[(row.pid, row.bid)] == i:
                observer.on_interval_end(
                    gid, row.pid, row.bid, row.offset, row.span
                )
    observer.on_trace_end(trace)
