"""Run a workload with the streaming analyzer attached ("watch" mode).

This is the production deployment story of the streaming subsystem: the
application runs under the SWORD online tool, the analyzer rides the
flush-event bus, and confirmed races stream out while the program is
still going — no separate post-mortem pass.  The wall-clock comparison
(time to first race vs. run-then-analyze total) is what the streaming
benchmark measures.

With a live instrumentation bundle the watcher can also emit a periodic
one-line stats ticker (events, flushes, pairs, races, memory-bound
utilisation) while the run is in flight — the ``--stats-every`` flag of
``repro watch``.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..common.config import (
    NodeConfig,
    OfflineConfig,
    RunConfig,
    SchedulerConfig,
    SwordConfig,
)
from ..common.errors import SimulatedOOMError
from ..memory.accounting import NodeMemory
from ..obs import Instrumentation, get_obs, run_stats, stats_line
from ..offline.options import AnalysisOptions
from ..offline.report import RaceSet
from ..omp.runtime import OpenMPRuntime
from ..sword.logger import SwordTool
from ..workloads.base import Workload
from .analyzer import StreamAnalyzer
from .bus import TraceObserver


@dataclass
class WatchResult:
    """Outcome of one watched run."""

    workload: str
    nthreads: int
    oom: bool = False
    races: Optional[RaceSet] = None
    #: Wall time of the whole watched run (application + inline analysis).
    elapsed_seconds: float = 0.0
    #: Seconds from run begin to the first confirmed race (None: no race).
    time_to_first_race: Optional[float] = None
    pairs_analyzed: int = 0
    stats: dict = field(default_factory=dict)
    #: Metrics-registry snapshot (empty under the null backend).
    metrics: dict = field(default_factory=dict)

    @property
    def race_count(self) -> int:
        return len(self.races) if self.races is not None else 0

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "nthreads": self.nthreads,
            "oom": self.oom,
            "races": self.races.to_json() if self.races is not None else None,
            "elapsed_seconds": self.elapsed_seconds,
            "time_to_first_race": self.time_to_first_race,
            "pairs_analyzed": self.pairs_analyzed,
            "stats": self.stats,
            "metrics": self.metrics,
        }


class ResilientObserver(TraceObserver):
    """Shield the watched application from analyzer I/O failures.

    In production the trace directory can vanish mid-watch (log rotation,
    scratch-space cleanup, an NFS blip): an open reader then fails inside
    a bus notification, and without protection that exception unwinds
    *into the application's flush path* and kills the run — the exact
    outcome watch mode exists to avoid.

    This wrapper delivers each notification under the service-wide
    :class:`~repro.serve.retry.RetryPolicy` (bounded retry, exponential
    backoff), closing the inner analyzer's readers between attempts so
    stale handles on vanished files are reopened.  Every retry round
    counts on the ``watch.reconnects`` metric; if retries exhaust, the
    notification is dropped (the analysis under-reports, the
    application lives).
    """

    def __init__(
        self,
        inner: TraceObserver,
        obs: Optional[Instrumentation] = None,
        *,
        retries: int = 3,
        backoff_seconds: float = 0.01,
    ) -> None:
        self.inner = inner
        self.retries = retries
        self.backoff_seconds = backoff_seconds
        self.reconnects = 0
        self.dropped_notifications = 0
        self._sleep = time.sleep  # test seam
        obs = obs or get_obs()
        self._m_reconnects = obs.registry.counter(
            "watch.reconnects",
            "watch-mode analyzer retries after trace I/O failures",
        )
        self._journal = obs.journal

    def _reset_readers(self) -> None:
        engine = getattr(self.inner, "engine", None)
        if engine is not None:
            try:
                engine.close()
            except Exception:
                pass

    def _count_reconnect(self) -> None:
        self.reconnects += 1
        self._m_reconnects.inc()
        self._journal.record("watch-reconnect", total=self.reconnects)

    def _deliver(self, method: str, *args) -> None:
        from ..serve.retry import TRANSIENT_ERRORS, RetryPolicy

        # Built per delivery so the knobs (and the `_sleep` test seam)
        # are read at call time, like the inlined loop this replaced.
        policy = RetryPolicy(
            retries=self.retries,
            backoff_seconds=self.backoff_seconds,
            sleep=self._sleep,
        )
        call = getattr(self.inner, method)
        try:
            policy.run(
                lambda: call(*args),
                on_retry=self._count_reconnect,
                reset=self._reset_readers,
            )
        except TRANSIENT_ERRORS:
            self.dropped_notifications += 1
            self._journal.record(
                "watch-drop", method=method, total=self.dropped_notifications
            )

    def on_trace_begin(self, producer) -> None:
        self._deliver("on_trace_begin", producer)

    def on_region(self, pid: int, info: dict) -> None:
        self._deliver("on_region", pid, info)

    def on_chunk(self, gid: int, row) -> None:
        self._deliver("on_chunk", gid, row)

    def on_interval_end(
        self, gid: int, pid: int, bid: int, slot: int, span: int
    ) -> None:
        self._deliver("on_interval_end", gid, pid, bid, slot, span)

    def on_trace_end(self, producer) -> None:
        self._deliver("on_trace_end", producer)


class StatsTicker(TraceObserver):
    """Prints a compact registry stats line at most every ``interval`` s.

    Rides the same flush-event bus as the analyzer, so ticks land at
    chunk boundaries — the moments the registry was just updated.
    """

    def __init__(
        self, obs: Instrumentation, interval: float, emit=print
    ) -> None:
        self.obs = obs
        self.interval = max(0.0, interval)
        self.emit = emit
        self.lines = 0
        self._last = time.perf_counter()

    def on_chunk(self, gid: int, row) -> None:
        now = time.perf_counter()
        if now - self._last >= self.interval:
            self._last = now
            self.emit(stats_line(self.obs.registry.snapshot()))
            self.lines += 1


def watch(
    workload: Workload,
    *,
    nthreads: int = 8,
    seed: int = 0,
    node: Optional[NodeConfig] = None,
    yield_every: int = 0,
    sword_config: Optional[SwordConfig] = None,
    offline_config: Optional[OfflineConfig] = None,
    options: Optional[AnalysisOptions] = None,
    trace_dir: Optional[str] = None,
    keep_trace: bool = False,
    checkpoint_path: Optional[str] = None,
    on_race=None,
    obs: Optional[Instrumentation] = None,
    stats_every: Optional[float] = None,
    on_stats=print,
    **params: Any,
) -> WatchResult:
    """Run ``workload`` with a live streaming analyzer subscribed.

    ``on_race(report)`` fires as each race is confirmed, while the
    application is still executing.  ``stats_every`` (seconds) turns on
    the periodic stats ticker, delivered through ``on_stats(line)``.
    """
    node = node or NodeConfig()
    obs = obs or get_obs()
    owns_dir = trace_dir is None
    trace_path = Path(trace_dir or tempfile.mkdtemp(prefix="sword-watch-"))
    result = WatchResult(workload=workload.name, nthreads=nthreads)
    try:
        config = sword_config or SwordConfig()
        config.log_dir = str(trace_path)
        accountant = NodeMemory(node.memory_limit)
        tool = SwordTool(config, accountant, obs=obs)
        analyzer = StreamAnalyzer(
            trace_path,
            offline_config,
            options=options,
            checkpoint_path=checkpoint_path,
            on_race=on_race,
            obs=obs,
        )
        tool.subscribe(ResilientObserver(analyzer, obs=obs))
        if stats_every is not None:
            tool.subscribe(StatsTicker(obs, stats_every, emit=on_stats))
        rt = OpenMPRuntime(
            RunConfig(
                nthreads=nthreads,
                scheduler=SchedulerConfig(seed=seed, yield_every=yield_every),
                node=node,
            ),
            tool=tool,
            accountant=accountant,
        )
        t0 = time.perf_counter()
        with obs.tracer.span(
            "watch", category="run", workload=workload.name
        ):
            try:
                rt.run(lambda master: workload.run_program(master, **params))
            except SimulatedOOMError:
                result.oom = True
        result.elapsed_seconds = time.perf_counter() - t0
        result.time_to_first_race = analyzer.first_race_seconds
        result.pairs_analyzed = analyzer.pairs_analyzed
        analyses = {}
        if not result.oom:
            analysis = analyzer.result()
            result.races = analysis.races
            analyses["streaming"] = analysis.stats
        result.stats = run_stats(tool, analyses=analyses)
        result.metrics = obs.registry.snapshot()
        return result
    finally:
        if owns_dir and not keep_trace:
            shutil.rmtree(trace_path, ignore_errors=True)
