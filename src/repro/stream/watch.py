"""Run a workload with the streaming analyzer attached ("watch" mode).

This is the production deployment story of the streaming subsystem: the
application runs under the SWORD online tool, the analyzer rides the
flush-event bus, and confirmed races stream out while the program is
still going — no separate post-mortem pass.  The wall-clock comparison
(time to first race vs. run-then-analyze total) is what the streaming
benchmark measures.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..common.config import (
    NodeConfig,
    OfflineConfig,
    RunConfig,
    SchedulerConfig,
    SwordConfig,
)
from ..common.errors import SimulatedOOMError
from ..memory.accounting import NodeMemory
from ..offline.report import RaceSet
from ..omp.runtime import OpenMPRuntime
from ..sword.logger import SwordTool
from ..workloads.base import Workload
from .analyzer import StreamingAnalyzer


@dataclass
class WatchResult:
    """Outcome of one watched run."""

    workload: str
    nthreads: int
    oom: bool = False
    races: Optional[RaceSet] = None
    #: Wall time of the whole watched run (application + inline analysis).
    elapsed_seconds: float = 0.0
    #: Seconds from run begin to the first confirmed race (None: no race).
    time_to_first_race: Optional[float] = None
    pairs_analyzed: int = 0
    stats: dict = field(default_factory=dict)

    @property
    def race_count(self) -> int:
        return len(self.races) if self.races is not None else 0

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "nthreads": self.nthreads,
            "oom": self.oom,
            "races": self.races.to_json() if self.races is not None else None,
            "elapsed_seconds": self.elapsed_seconds,
            "time_to_first_race": self.time_to_first_race,
            "pairs_analyzed": self.pairs_analyzed,
            "stats": self.stats,
        }


def watch(
    workload: Workload,
    *,
    nthreads: int = 8,
    seed: int = 0,
    node: Optional[NodeConfig] = None,
    yield_every: int = 0,
    sword_config: Optional[SwordConfig] = None,
    offline_config: Optional[OfflineConfig] = None,
    trace_dir: Optional[str] = None,
    keep_trace: bool = False,
    checkpoint_path: Optional[str] = None,
    on_race=None,
    **params: Any,
) -> WatchResult:
    """Run ``workload`` with a live streaming analyzer subscribed.

    ``on_race(report)`` fires as each race is confirmed, while the
    application is still executing.
    """
    node = node or NodeConfig()
    owns_dir = trace_dir is None
    trace_path = Path(trace_dir or tempfile.mkdtemp(prefix="sword-watch-"))
    result = WatchResult(workload=workload.name, nthreads=nthreads)
    try:
        config = sword_config or SwordConfig()
        config.log_dir = str(trace_path)
        accountant = NodeMemory(node.memory_limit)
        tool = SwordTool(config, accountant)
        analyzer = StreamingAnalyzer(
            trace_path,
            offline_config,
            checkpoint_path=checkpoint_path,
            on_race=on_race,
        )
        tool.subscribe(analyzer)
        rt = OpenMPRuntime(
            RunConfig(
                nthreads=nthreads,
                scheduler=SchedulerConfig(seed=seed, yield_every=yield_every),
                node=node,
            ),
            tool=tool,
            accountant=accountant,
        )
        t0 = time.perf_counter()
        try:
            rt.run(lambda master: workload.run_program(master, **params))
        except SimulatedOOMError:
            result.oom = True
        result.elapsed_seconds = time.perf_counter() - t0
        result.time_to_first_race = analyzer.first_race_seconds
        result.pairs_analyzed = analyzer.pairs_analyzed
        result.stats = dict(tool.stats)
        if not result.oom:
            analysis = analyzer.result()
            result.races = analysis.races
            result.stats["streaming"] = analysis.stats.to_json()
        return result
    finally:
        if owns_dir and not keep_trace:
            shutil.rmtree(trace_path, ignore_errors=True)
