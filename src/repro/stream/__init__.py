"""SWORD streaming subsystem: race analysis that races the application.

The post-mortem pipeline waits for the run to finish before any offline
work starts.  This package closes that gap: the online logger publishes
flush events as the trace is produced (:mod:`repro.stream.bus`), an
incremental scheduler turns the growing interval inventory into sound
comparisons the moment both sides exist (:mod:`repro.stream.scheduler`),
and a streaming analyzer drives the shared analysis engine over them,
reporting races while the application is still running
(:mod:`repro.stream.analyzer`), with resumable checkpoints
(:mod:`repro.stream.checkpoint`) and a one-call watch mode
(:mod:`repro.stream.watch`).
"""

from .analyzer import (
    LiveTraceSource,
    StreamAnalyzer,
    StreamingAnalyzer,
    StreamingInterrupted,
    replay_analyze,
)
from .bus import TraceObserver, replay_trace
from .checkpoint import Checkpoint, pair_key
from .scheduler import IncrementalPairScheduler
from .watch import WatchResult, watch

__all__ = [
    "Checkpoint",
    "IncrementalPairScheduler",
    "LiveTraceSource",
    "StreamAnalyzer",
    "StreamingAnalyzer",
    "StreamingInterrupted",
    "TraceObserver",
    "WatchResult",
    "pair_key",
    "replay_analyze",
    "replay_trace",
    "watch",
]
