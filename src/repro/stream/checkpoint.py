"""Durable progress for the streaming analyzer.

A checkpoint is one JSON file with the analyzed-pair watermark (which
interval pairs have already been compared) plus the races found so far.
If the analyzer dies, a restart replays the trace, skips every
checkpointed pair, and — because :class:`~repro.offline.report.RaceSet`
merges witnesses canonically — converges on the exact race set an
uninterrupted run produces.

Writes are atomic (temp file + rename in the same directory), so a crash
mid-save leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..common.errors import TraceFormatError
from ..offline.intervals import IntervalKey
from ..offline.report import RaceSet

CHECKPOINT_VERSION = 1

#: A pair watermark entry: two (gid, pid, bid) interval identities.
PairKey = tuple[tuple[int, int, int], tuple[int, int, int]]


def pair_key(key_a: IntervalKey, key_b: IntervalKey) -> PairKey:
    """Order-normalised identity of one interval-pair comparison."""
    a = (key_a.gid, key_a.pid, key_a.bid)
    b = (key_b.gid, key_b.pid, key_b.bid)
    return (a, b) if a <= b else (b, a)


class Checkpoint:
    """Analyzed-pair watermark + accumulated races, saved atomically."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.analyzed: set[PairKey] = set()
        self.races = RaceSet()
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            raise TraceFormatError(
                f"{self.path}: unreadable checkpoint: {exc}"
            ) from exc
        version = payload.get("version")
        if version != CHECKPOINT_VERSION:
            raise TraceFormatError(
                f"{self.path}: checkpoint version {version!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        self.analyzed = {
            (tuple(a), tuple(b)) for a, b in payload["analyzed"]
        }
        self.races = RaceSet.from_json(payload["races"])

    def record(self, key_a: IntervalKey, key_b: IntervalKey) -> None:
        self.analyzed.add(pair_key(key_a, key_b))

    def contains(self, key_a: IntervalKey, key_b: IntervalKey) -> bool:
        return pair_key(key_a, key_b) in self.analyzed

    def save(self) -> None:
        """Atomically persist the watermark and races."""
        payload = {
            "version": CHECKPOINT_VERSION,
            "analyzed": sorted(
                [list(a), list(b)] for a, b in self.analyzed
            ),
            "races": self.races.to_json(),
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=0, sort_keys=True))
        os.replace(tmp, self.path)
