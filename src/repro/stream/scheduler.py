"""Incremental concurrent-pair scheduling over a growing interval inventory.

The batch planner (:class:`~repro.offline.intervals.IntervalInventory`)
sees the whole trace at once; the streaming analyzer instead learns about
intervals one completion at a time and must emit each comparable pair *as
soon as it is sound to compare it*:

* **different (pid, bid) groups** — the pair is ready the moment both
  intervals have completed: the verdict is a pure label judgment
  (:func:`~repro.osl.concurrency.concurrent_intervals`), and it can only
  be *concurrent* when nested parallelism exists (same region / different
  bid is barrier-separated; sibling top-level regions are fork-serialised),
  so the cross-group scan is skipped entirely until a nested region is
  registered — the same structural shortcut the batch planner uses;
* **same (pid, bid) group** — teammate pairs are held until the group is
  *sealed*: all ``span`` slots completed the interval.  Only then is the
  region's task graph final for that interval (explicit tasks drain at the
  barrier), which the tasking-extension comparison consults; sealing also
  fixes whether the group gets self-pairs (an interval that carries
  deferred tasks can race with itself).

Every interval emits at least one meta row (each barrier interval logs a
structural begin/barrier/end event), so sealing by counting distinct
completed slots is exact.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterator

from ..offline.intervals import IntervalData, IntervalKey
from ..osl.concurrency import concurrent_intervals
from ..sword.reader import build_interval_label
from ..sword.traceformat import MetaRow

#: A scheduled comparison: two completed intervals (may be the same one).
Pair = tuple[IntervalData, IntervalData]


class IncrementalPairScheduler:
    """Feeds the analysis engine pairs as the interval inventory grows.

    ``is_tasky(pid, bid)`` is consulted at seal time and must answer
    whether the interval carries explicit tasks; the streaming analyzer
    binds it to the live task graph (final for the group once sealed).
    """

    def __init__(
        self, *, is_tasky: Callable[[int, int], bool] | None = None
    ) -> None:
        self._is_tasky = is_tasky or (lambda pid, bid: False)
        self.regions: dict[int, dict] = {}
        self.intervals: dict[IntervalKey, IntervalData] = {}
        #: Completed intervals per (pid, bid), insertion-ordered.
        self._groups: dict[tuple[int, int], list[IntervalData]] = {}
        self._group_slots: dict[tuple[int, int], set[int]] = {}
        self._sealed: set[tuple[int, int]] = set()
        #: All completed intervals in completion order (cross-group scan).
        self._completed: list[IntervalData] = []
        self._completed_keys: set[IntervalKey] = set()
        self._nested = False
        self.pairs_emitted = 0

    # -- inventory growth -------------------------------------------------------

    def add_region(self, pid: int, info: dict) -> None:
        """Register a forked region's fork-position record."""
        self.regions[pid] = info
        if info["ppid"] > 0:
            self._nested = True

    def add_chunk(self, gid: int, row: MetaRow) -> None:
        """Register one Table-I row, growing its interval's chunk list."""
        key = IntervalKey(gid=gid, pid=row.pid, bid=row.bid)
        data = self.intervals.get(key)
        if data is None:
            data = IntervalData(
                key=key,
                slot=row.offset,
                span=row.span,
                label=build_interval_label(
                    self.regions, row.pid, row.offset, row.bid
                ),
            )
            self.intervals[key] = data
        data.chunks.append((row.data_begin, row.size))
        data.digests.append(row.digest)

    # -- completion and pair emission -------------------------------------------

    def complete_interval(
        self, gid: int, pid: int, bid: int, slot: int, span: int
    ) -> list[Pair]:
        """Mark one interval complete; return the newly comparable pairs."""
        key = IntervalKey(gid=gid, pid=pid, bid=bid)
        if key in self._completed_keys:
            return []  # idempotent: a duplicate completion emits nothing
        self._completed_keys.add(key)
        data = self.intervals.get(key)
        if data is None:
            # Defensive: an interval that logged nothing (cannot race).
            data = IntervalData(
                key=key,
                slot=slot,
                span=span,
                label=build_interval_label(self.regions, pid, slot, bid),
            )
            self.intervals[key] = data
        pairs: list[Pair] = []

        # Cross-group pairs: ready now.  Only nested parallelism can make
        # intervals of different (pid, bid) groups concurrent.
        if self._nested:
            for other in self._completed:
                other_key = other.key
                if (other_key.pid, other_key.bid) == (pid, bid):
                    continue
                if other_key.gid == gid:
                    continue
                if concurrent_intervals(data.label, other.label):
                    pairs.append((data, other))

        group_key = (pid, bid)
        self._completed.append(data)
        group = self._groups.setdefault(group_key, [])
        group.append(data)
        slots = self._group_slots.setdefault(group_key, set())
        slots.add(slot)
        if len(slots) == span and group_key not in self._sealed:
            self._sealed.add(group_key)
            pairs.extend(self._seal_group(group_key, group))

        self.pairs_emitted += len(pairs)
        return pairs

    def _seal_group(
        self, group_key: tuple[int, int], group: list[IntervalData]
    ) -> Iterator[Pair]:
        """All teammates finished the interval: emit the in-group pairs.

        Mirrors the batch planner's enumeration: self-pairs first when the
        interval carries explicit tasks, then all cross-thread pairs.
        """
        ordered = sorted(group, key=lambda d: d.key.gid)
        if self._is_tasky(*group_key):
            for a in ordered:
                yield a, a
        for a, b in combinations(ordered, 2):
            if a.key.gid != b.key.gid:
                yield a, b

    # -- diagnostics ------------------------------------------------------------

    def unsealed_groups(self) -> list[tuple[int, int]]:
        """Groups still waiting for teammates (empty after a full trace)."""
        return [k for k in self._groups if k not in self._sealed]

    def __len__(self) -> int:
        return len(self.intervals)
