"""The persisted verdict table: manifest payload, CRC, and schema.

Verdicts ride the trace manifest under the ``"static_verdicts"`` key so
every offline consumer — serial, distributed, streaming, and ``serve``
shards — sees the same table the online run acted on.  The payload is

* **versioned** (``version``, bumped on layout changes),
* **CRC-covered** (``crc32`` over the canonical JSON of the body, using
  the trace format's own CRC), and
* **schema-checked** (:data:`STATIC_VERDICTS_SCHEMA`, the same subset
  grammar :mod:`repro.obs.schema` validates CI artifacts with; the
  checked-in copy lives at ``schemas/static-verdicts.schema.json``).

A table that fails any of the three checks is *corrupt*: strict readers
raise :class:`~repro.common.errors.TraceFormatError`, salvage readers
drop to UNKNOWN-everything (full-instrumentation semantics — no pair is
skipped, no report injected) and count the loss in the integrity report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..common.errors import TraceFormatError
from .analyzer import RegionVerdicts
from .model import DEFINITE_RACE, PROVEN_FREE

#: Manifest key the table is stored under.
STATIC_VERDICTS_KEY = "static_verdicts"

#: Payload layout version.
STATIC_VERDICTS_VERSION = 1

#: A synthesised report row: the 11 RaceReport fields in order.
_REPORT_FIELDS = 11

#: JSON Schema (repro.obs.schema subset) for the manifest payload.
STATIC_VERDICTS_SCHEMA: dict = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "title": "SWORD static pre-screening verdict table",
    "type": "object",
    "required": ["version", "crc32", "events_elided", "regions"],
    "additionalProperties": False,
    "properties": {
        "version": {"type": "integer", "minimum": 1},
        "crc32": {"type": "integer", "minimum": 0},
        "events_elided": {"type": "integer", "minimum": 0},
        "regions": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["proven_free", "definite_race", "reports"],
                "additionalProperties": False,
                "properties": {
                    "proven_free": {
                        "type": "array",
                        "items": {"type": "integer", "minimum": 0},
                    },
                    "definite_race": {
                        "type": "array",
                        "items": {"type": "integer", "minimum": 0},
                    },
                    "reports": {
                        "type": "array",
                        "items": {
                            "type": "array",
                            "minItems": _REPORT_FIELDS,
                            "maxItems": _REPORT_FIELDS,
                            "items": {
                                "anyOf": [
                                    {"type": "integer"},
                                    {"type": "boolean"},
                                ]
                            },
                        },
                    },
                },
            },
        },
    },
}


@dataclass(slots=True)
class StaticVerdictTable:
    """In-memory form of the persisted verdict table."""

    #: pid -> {"proven_free": frozenset[pc], "definite_race":
    #: frozenset[pc], "reports": list[tuple]}.
    regions: dict[int, dict] = field(default_factory=dict)
    #: Access events whose emission the online run suppressed.
    events_elided: int = 0

    # -- accumulation (online side) -----------------------------------------------

    def add_region(self, verdicts: RegionVerdicts) -> None:
        self.regions[verdicts.pid] = {
            "proven_free": frozenset(
                pc for pc, v in verdicts.verdicts.items() if v == PROVEN_FREE
            ),
            "definite_race": frozenset(
                pc
                for pc, v in verdicts.verdicts.items()
                if v == DEFINITE_RACE
            ),
            "reports": list(verdicts.reports),
        }

    # -- aggregate views (stats / offline side) -------------------------------------

    @property
    def sites_proven_free(self) -> int:
        return sum(len(r["proven_free"]) for r in self.regions.values())

    @property
    def sites_definite_race(self) -> int:
        return sum(len(r["definite_race"]) for r in self.regions.values())

    def proven_free_by_pid(self) -> dict[int, frozenset[int]]:
        """pid -> pcs the engine may skip pairs for (non-empty only)."""
        return {
            pid: entry["proven_free"]
            for pid, entry in self.regions.items()
            if entry["proven_free"]
        }

    def race_reports(self) -> list:
        """Synthesised reports as RaceReport objects (injection side)."""
        from ..offline.report import RaceReport  # deferred: import cycle

        return [
            RaceReport(*row)
            for entry in self.regions.values()
            for row in entry["reports"]
        ]

    # -- serialisation ---------------------------------------------------------------

    def _body(self) -> dict:
        return {
            "version": STATIC_VERDICTS_VERSION,
            "events_elided": int(self.events_elided),
            "regions": {
                str(pid): {
                    "proven_free": sorted(entry["proven_free"]),
                    "definite_race": sorted(entry["definite_race"]),
                    "reports": [list(row) for row in entry["reports"]],
                }
                for pid, entry in sorted(self.regions.items())
            },
        }

    def to_payload(self) -> dict:
        """The manifest value: the body plus its covering CRC."""
        # Deferred: repro.sword imports this module back (import cycle).
        from ..sword.traceformat import crc32

        body = self._body()
        payload = dict(body)
        payload["crc32"] = crc32(
            json.dumps(body, sort_keys=True).encode("utf-8")
        )
        return payload

    @classmethod
    def from_payload(cls, payload) -> "StaticVerdictTable":
        """Parse and verify one manifest payload.

        Raises :class:`TraceFormatError` on schema violations, version
        mismatch, or CRC mismatch — the caller decides whether that is
        fatal (strict) or a fallback to UNKNOWN-everything (salvage).
        """
        from ..obs.schema import validate  # deferred: keep import light
        from ..sword.traceformat import crc32  # deferred: import cycle

        errors = validate(payload, STATIC_VERDICTS_SCHEMA)
        if errors:
            raise TraceFormatError(
                f"static verdict table failed schema validation: "
                f"{'; '.join(errors[:3])}"
            )
        if payload["version"] != STATIC_VERDICTS_VERSION:
            raise TraceFormatError(
                f"static verdict table version {payload['version']} "
                f"(expected {STATIC_VERDICTS_VERSION})"
            )
        body = {k: v for k, v in payload.items() if k != "crc32"}
        expected = crc32(json.dumps(body, sort_keys=True).encode("utf-8"))
        if payload["crc32"] != expected:
            raise TraceFormatError(
                f"static verdict table CRC mismatch "
                f"(stored {payload['crc32']:#x}, computed {expected:#x})"
            )
        table = cls(events_elided=int(payload["events_elided"]))
        for pid_str, entry in payload["regions"].items():
            table.regions[int(pid_str)] = {
                "proven_free": frozenset(entry["proven_free"]),
                "definite_race": frozenset(entry["definite_race"]),
                "reports": [tuple(row) for row in entry["reports"]],
            }
        return table
