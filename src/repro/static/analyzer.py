"""Region classification: the pre-screening pass proper.

Runs once per parallel-region registration, before the body executes.
For every declared site the analyzer materialises the per-thread access
footprint as a :class:`~repro.itree.interval.StridedInterval` — the same
representation the dynamic pipeline coalesces events into — and decides
cross-thread disjointness with the same exact overlap check
(:func:`repro.ilp.overlap.intervals_share_address`) the offline engine
uses.  Sharing the geometry kernel is what makes the two paths agree:
a statically synthesised DEFINITE_RACE witness is byte-identical to the
dynamically detected one because both come from the same function over
the same intervals.

Verdict rules (soundness argument in DESIGN.md §3.11):

* non-static schedules: every affine site is UNKNOWN (reduction sites
  stay PROVEN_FREE — the critical lock serialises them regardless);
* sites only pair with sites on the *same array in the same phase*
  (different arrays are disjoint allocations; different phases are
  barrier-ordered);
* a site is PROVEN_FREE when no such pair with at least one write
  shares an address across two different thread slots — including the
  site against itself;
* racy sites become DEFINITE_RACE only in ``complete`` regions where
  every declared site classified (no UNKNOWN sibling a silent elision
  could hide a race against); otherwise they demote to UNKNOWN and the
  region stays instrumented at those pcs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ilp.overlap import intervals_share_address
from ..itree.interval import StridedInterval
from .model import (
    DEFINITE_RACE,
    PROVEN_FREE,
    STATIC_SCHEDULE,
    UNKNOWN,
    AffineSite,
    RegionSpec,
    chunk_bounds,
)


@dataclass(slots=True)
class RegionVerdicts:
    """Outcome of pre-screening one region (what the runtime consumes).

    ``elide`` is the set of pcs whose event emission the runtime may
    suppress; ``reports`` are the synthesised DEFINITE_RACE witnesses
    (field tuples of :class:`~repro.offline.report.RaceReport`, kept as
    plain tuples so this module stays import-light for the hot path).
    """

    pid: int
    verdicts: dict[int, str] = field(default_factory=dict)
    elide: frozenset[int] = frozenset()
    reports: list[tuple] = field(default_factory=list)

    @property
    def sites_proven_free(self) -> int:
        return sum(1 for v in self.verdicts.values() if v == PROVEN_FREE)

    @property
    def sites_definite_race(self) -> int:
        return sum(1 for v in self.verdicts.values() if v == DEFINITE_RACE)


def site_interval(
    site: AffineSite, lo: int, hi: int
) -> Optional[StridedInterval]:
    """The byte footprint of one site over iterations ``[lo, hi)``.

    None for an empty chunk.  The interval is exactly what the offline
    coalescer would build from the site's event stream: ``hi - lo``
    accesses of ``block`` elements, ``coef`` elements apart, starting at
    element ``coef*lo + offset``.
    """
    if hi <= lo:
        return None
    array = site.array
    esize = array.itemsize
    return StridedInterval(
        low=array.addr(0) + (site.coef * lo + site.offset) * esize,
        stride=site.coef * esize,
        size=site.block * esize,
        count=hi - lo,
        is_write=site.is_write,
        is_atomic=False,
        pc=site.pc,
        msid=0,
    )


def _paired(a: AffineSite, b: AffineSite) -> bool:
    """True when two sites can conflict at all (same array, same phase,
    at least one write)."""
    return (
        a.array is b.array
        and a.phase == b.phase
        and (a.is_write or b.is_write)
    )


def analyze_region(
    spec: RegionSpec, *, pid: int, gids: list[int]
) -> RegionVerdicts:
    """Classify every declared site for one region instance.

    ``gids`` are the team members' thread gids in slot order — the span
    comes from its length, and synthesised reports carry real gids so
    they are byte-identical to what the dynamic path would report.
    """
    span = len(gids)
    result = RegionVerdicts(pid=pid)
    verdicts = result.verdicts
    for pc in spec.reduction_pcs:
        verdicts[pc] = PROVEN_FREE
    if not spec.sites and not spec.reduction_pcs:
        return result
    if spec.schedule != STATIC_SCHEDULE:
        for site in spec.sites:
            verdicts[site.pc] = UNKNOWN
        result.elide = frozenset(
            pc for pc, v in verdicts.items() if v == PROVEN_FREE
        )
        return result

    # Per-(site, slot) footprints under the static partition.
    footprints: dict[int, list[Optional[StridedInterval]]] = {}
    for idx, site in enumerate(spec.sites):
        footprints[idx] = [
            site_interval(site, *chunk_bounds(slot, span, spec.iterations))
            for slot in range(span)
        ]

    # Pairwise cross-thread overlap: a site is racy when any conflicting
    # pair (including itself) shares an address across two slots.
    racy: set[int] = set()
    conflicts: list[tuple[int, int]] = []
    nsites = len(spec.sites)
    for i in range(nsites):
        for j in range(i, nsites):
            if not _paired(spec.sites[i], spec.sites[j]):
                continue
            if _slots_overlap(footprints[i], footprints[j]):
                racy.add(i)
                racy.add(j)
                conflicts.append((i, j))

    for idx, site in enumerate(spec.sites):
        verdicts[site.pc] = DEFINITE_RACE if idx in racy else PROVEN_FREE

    if racy:
        if spec.complete:
            result.reports = _synthesize(spec, footprints, conflicts, pid, gids)
        else:
            # Without the completeness contract an undeclared site could
            # race against an elided one; keep racy pcs instrumented and
            # let the dynamic path report them.
            for idx in racy:
                verdicts[spec.sites[idx].pc] = UNKNOWN
    result.elide = frozenset(
        pc for pc, v in verdicts.items() if v != UNKNOWN
    )
    return result


def _slots_overlap(
    fa: list[Optional[StridedInterval]], fb: list[Optional[StridedInterval]]
) -> bool:
    """Any cross-slot shared address between two sites' footprints?"""
    span = len(fa)
    for s in range(span):
        a = fa[s]
        if a is None:
            continue
        for t in range(span):
            if t == s:
                continue
            b = fb[t]
            if b is None:
                continue
            if intervals_share_address(a, b) is not None:
                return True
    return False


def _synthesize(
    spec: RegionSpec,
    footprints: dict[int, list[Optional[StridedInterval]]],
    conflicts: list[tuple[int, int]],
    pid: int,
    gids: list[int],
) -> list[tuple]:
    """Reports for every statically racy (site, slot) pair.

    Mirrors the engine's witness selection: the pair is oriented by
    ascending interval key — for same-region siblings, ascending gid —
    and the witness address comes from ``intervals_share_address`` on
    the oriented pair, exactly as ``compare_trees`` computes it.  All
    contributing pairs are emitted; the caller feeds them through
    :meth:`~repro.offline.report.RaceSet.add`, whose canonical-minimum
    merge selects the same final witness the dynamic analysis would.
    """
    from ..offline.report import make_report  # deferred: import cycle

    reports: list[tuple] = []
    span = len(gids)
    for i, j in conflicts:
        fa, fb = footprints[i], footprints[j]
        bid = spec.sites[i].phase
        for s in range(span):
            for t in range(span):
                if t == s:
                    continue
                a, b = fa[s], fb[t]
                if a is None or b is None:
                    continue
                # Canonical orientation: lower gid is side A, matching
                # the engine's (gid, pid, bid) key ordering.
                if gids[s] <= gids[t]:
                    lo_i, hi_i = a, b
                    gid_lo, gid_hi = gids[s], gids[t]
                else:
                    lo_i, hi_i = b, a
                    gid_lo, gid_hi = gids[t], gids[s]
                witness = intervals_share_address(lo_i, hi_i)
                if witness is None:
                    continue
                report = make_report(
                    pc_a=lo_i.pc,
                    pc_b=hi_i.pc,
                    address=witness.address,
                    write_a=lo_i.is_write,
                    write_b=hi_i.is_write,
                    gid_a=gid_lo,
                    gid_b=gid_hi,
                    pid_a=pid,
                    pid_b=pid,
                    bid_a=bid,
                    bid_b=bid,
                )
                reports.append(
                    (
                        report.pc_a, report.pc_b, report.address,
                        report.write_a, report.write_b,
                        report.gid_a, report.gid_b,
                        report.pid_a, report.pid_b,
                        report.bid_a, report.bid_b,
                    )
                )
    return reports
