"""Static pre-screening of parallel regions (ROADMAP item 3).

LLOV-style region analysis performed by the *runtime* at parallel-region
registration: our simulated runtime sees affine subscripts, the schedule
clause, and the reduction set before the region body runs, so it can

* prove access sites race-free (``PROVEN_FREE``) and elide their event
  emission entirely,
* prove races without running (``DEFINITE_RACE``) and synthesise the
  exact reports the dynamic path would have produced, and
* leave everything else ``UNKNOWN`` — instrumented exactly as today.

Workloads opt in by passing a declarative :class:`RegionSpec` to
``m.parallel(body, static=spec)``; undeclared regions are untouched.
Verdicts are persisted into the trace manifest (CRC-covered, versioned,
schema-checked — see :mod:`repro.static.table`) so the offline engine
skips whole site pairs and ``serve`` shards inherit the skip for free.
"""

from .analyzer import RegionVerdicts, analyze_region
from .model import (
    DEFINITE_RACE,
    PROVEN_FREE,
    STATIC_SCHEDULE,
    UNKNOWN,
    VERDICTS,
    AffineSite,
    RegionSpec,
    chunk_bounds,
)
from .table import (
    STATIC_VERDICTS_KEY,
    STATIC_VERDICTS_SCHEMA,
    STATIC_VERDICTS_VERSION,
    StaticVerdictTable,
)

__all__ = [
    "AffineSite",
    "DEFINITE_RACE",
    "PROVEN_FREE",
    "RegionSpec",
    "RegionVerdicts",
    "STATIC_SCHEDULE",
    "STATIC_VERDICTS_KEY",
    "STATIC_VERDICTS_SCHEMA",
    "STATIC_VERDICTS_VERSION",
    "StaticVerdictTable",
    "UNKNOWN",
    "VERDICTS",
    "analyze_region",
    "chunk_bounds",
]
