"""The declarative region model the static pre-screener consumes.

A workload that wants pre-screening describes each parallel region as a
:class:`RegionSpec`: the loop trip count, the schedule clause, and one
:class:`AffineSite` per instrumented access site.  A site maps loop
iteration ``i`` to the element range ``[coef*i + offset,
coef*i + offset + block)`` of one shared array — exactly the information
LLVM's scalar-evolution analysis hands LLOV for real OpenMP loop nests.

Declaring sites on an array is a *completeness contract for that array*:
the declared sites must be the only accesses the region performs on it.
The analyzer never needs the contract for arrays the spec does not
mention — undeclared arrays stay fully instrumented.

``phase`` indexes the barrier phase a site executes in (phase ``p`` runs
between team barriers ``p`` and ``p+1``).  Sites in different phases are
barrier-ordered and therefore never concurrent; multi-sweep loops whose
sweeps repeat the same site sequence may declare one sweep's phases —
each sweep lands the same pc in the same relative phase, and distinct
barrier intervals are analyzed independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..common.errors import RuntimeModelError

#: Site verdicts (the three-point lattice, DESIGN.md §3.11).
PROVEN_FREE = "proven_free"
DEFINITE_RACE = "definite_race"
UNKNOWN = "unknown"
VERDICTS = (PROVEN_FREE, DEFINITE_RACE, UNKNOWN)

#: The only schedule clause the analyzer issues verdicts for: the static
#: schedule's per-thread iteration sets are a pure function of (slot,
#: span, trip count).  Dynamic/guided schedules are load-dependent, so
#: every affine site under them stays UNKNOWN.
STATIC_SCHEDULE = "static"


def chunk_bounds(slot: int, size: int, n: int) -> tuple[int, int]:
    """Iterations ``[lo, hi)`` slot executes under the static schedule.

    Must mirror :meth:`repro.omp.context.ThreadContext.static_chunk`
    exactly — the analyzer's soundness rests on reasoning about the same
    iteration partition the runtime actually executes.
    """
    return slot * n // size, (slot + 1) * n // size


@dataclass(frozen=True, slots=True)
class AffineSite:
    """One access site: iteration ``i`` touches elements
    ``[coef*i + offset, coef*i + offset + block)`` of ``array``.

    ``array`` is the :class:`~repro.memory.address_space.SharedArray`
    the site accesses (anything with ``name``/``itemsize``/``addr``
    works).  ``coef`` must be positive — descending or degenerate
    subscripts are outside the model and should simply not be declared.
    """

    pc: int
    array: object
    coef: int = 1
    offset: int = 0
    is_write: bool = False
    phase: int = 0
    block: int = 1

    def __post_init__(self) -> None:
        if self.coef < 1:
            raise RuntimeModelError(
                f"AffineSite pc={self.pc:#x}: coef must be >= 1 "
                f"(got {self.coef}); leave non-affine sites undeclared"
            )
        if self.block < 1:
            raise RuntimeModelError(
                f"AffineSite pc={self.pc:#x}: block must be >= 1"
            )
        if self.phase < 0:
            raise RuntimeModelError(
                f"AffineSite pc={self.pc:#x}: phase must be >= 0"
            )


@dataclass(slots=True)
class RegionSpec:
    """Static description of one parallel region.

    Attributes:
        iterations: loop trip count each phase distributes over the team.
        schedule: the schedule clause (verdicts only under ``"static"``).
        sites: the region's affine access sites.
        reduction_pcs: pcs of reduction-accumulation sites.  Contract:
            those cells are *only* accessed through ``ctx.reduce_add``
            (every access serialised by the per-array critical lock), so
            the sites are race-free by construction.
        complete: the spec covers every access site in the region.  Only
            complete regions may yield DEFINITE_RACE verdicts: report
            synthesis with zero collected events is sound only when no
            undeclared site could have raced with an elided one.
    """

    iterations: int
    schedule: str = STATIC_SCHEDULE
    sites: tuple[AffineSite, ...] = ()
    reduction_pcs: tuple[int, ...] = ()
    complete: bool = False

    def __post_init__(self) -> None:
        self.sites = tuple(self.sites)
        self.reduction_pcs = tuple(self.reduction_pcs)
        if self.iterations < 0:
            raise RuntimeModelError("RegionSpec.iterations must be >= 0")
        for site in self.sites:
            if not isinstance(site, AffineSite):
                raise RuntimeModelError(
                    f"RegionSpec.sites entries must be AffineSite, "
                    f"got {type(site).__name__}"
                )
        seen: dict[int, AffineSite] = {}
        for site in self.sites:
            dup = seen.get(site.pc)
            if dup is not None and (
                dup.array is not site.array or dup.phase != site.phase
            ):
                raise RuntimeModelError(
                    f"RegionSpec: pc {site.pc:#x} declared twice with "
                    f"different array/phase — verdicts are per pc"
                )
            seen[site.pc] = site

    @property
    def pcs(self) -> frozenset[int]:
        """Every pc the spec makes a claim about."""
        return frozenset(
            [s.pc for s in self.sites] + list(self.reduction_pcs)
        )
