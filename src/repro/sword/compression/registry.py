"""Codec registry: name/id lookup for writers and readers."""

from __future__ import annotations

from ...common.errors import CodecError
from .base import Codec
from .lz4like import Lz4LikeCodec
from .lzrle import LzRleCodec
from .snappylike import SnappyLikeCodec
from .zlibwrap import ZlibCodec

_CODECS: dict[str, Codec] = {}
_BY_ID: dict[int, Codec] = {}


def register(codec: Codec) -> Codec:
    """Register a codec instance under its name and id."""
    if codec.name in _CODECS:
        raise CodecError(f"duplicate codec name {codec.name!r}")
    if codec.codec_id in _BY_ID:
        raise CodecError(f"duplicate codec id {codec.codec_id}")
    _CODECS[codec.name] = codec
    _BY_ID[codec.codec_id] = codec
    return codec


def by_name(name: str) -> Codec:
    """Look a codec up by registry name."""
    try:
        return _CODECS[name]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; available: {sorted(_CODECS)}"
        ) from None


def by_id(codec_id: int) -> Codec:
    """Look a codec up by its block-header id."""
    try:
        return _BY_ID[codec_id]
    except KeyError:
        raise CodecError(f"unknown codec id {codec_id}") from None


def available() -> list[str]:
    """Registered codec names."""
    return sorted(_CODECS)


register(LzRleCodec())
register(Lz4LikeCodec())
register(SnappyLikeCodec())
register(ZlibCodec())
