"""Simplified Snappy block codec (pure Python).

Follows Snappy's element layout: a varint uncompressed-length header, then
tag bytes whose two low bits select literal / 1-byte-offset copy /
2-byte-offset copy elements.  Match finding reuses the greedy hashing
approach of the LZ4 codec; the point of carrying a second LZ77-family codec
is the paper's observation that the candidates perform similarly on trace
data (experiment E9).
"""

from __future__ import annotations

from ...common.errors import CodecError
from .base import Codec

_TAG_LITERAL = 0
_TAG_COPY1 = 1  # 3-byte element: offsets < 2048, lengths 4..11
_TAG_COPY2 = 2  # 4-byte element: 16-bit offset, lengths 1..64

_MIN_MATCH = 4
_HASH_LOG = 14
_HASH_SIZE = 1 << _HASH_LOG


def _hash4(data: bytes, pos: int) -> int:
    v = (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    )
    return (v * 2654435761 >> (32 - _HASH_LOG)) & (_HASH_SIZE - 1)


class SnappyLikeCodec(Codec):
    """Greedy Snappy-format compressor."""

    codec_id = 3
    name = "snappy"

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        n = len(data)
        # Header: varint uncompressed length (as in Snappy).
        v = n
        while v >= 0x80:
            out.append((v & 0x7F) | 0x80)
            v >>= 7
        out.append(v)
        if n == 0:
            return bytes(out)

        table = [-1] * _HASH_SIZE
        pos = 0
        literal_start = 0
        limit = n - _MIN_MATCH
        while pos <= limit:
            h = _hash4(data, pos)
            candidate = table[h]
            table[h] = pos
            if (
                candidate >= 0
                and pos - candidate <= 0xFFFF
                and data[candidate : candidate + _MIN_MATCH]
                == data[pos : pos + _MIN_MATCH]
            ):
                match_len = _MIN_MATCH
                while (
                    pos + match_len < n
                    and data[candidate + match_len] == data[pos + match_len]
                ):
                    match_len += 1
                self._emit_literal(out, data[literal_start:pos])
                self._emit_copies(out, pos - candidate, match_len)
                pos += match_len
                literal_start = pos
            else:
                pos += 1
        self._emit_literal(out, data[literal_start:])
        return bytes(out)

    @staticmethod
    def _emit_literal(out: bytearray, literals: bytes) -> None:
        n = len(literals)
        if n == 0:
            return
        if n <= 60:
            out.append(((n - 1) << 2) | _TAG_LITERAL)
        else:
            # 1..4 length bytes, little endian (tags 60..63).
            nbytes = (n - 1).bit_length() + 7 >> 3
            out.append(((59 + nbytes) << 2) | _TAG_LITERAL)
            out += (n - 1).to_bytes(nbytes, "little")
        out += literals

    @staticmethod
    def _emit_copies(out: bytearray, offset: int, length: int) -> None:
        # Snappy emits lengths > 64 as multiple copy elements.
        while length > 0:
            chunk = min(length, 64)
            if length - chunk in (1, 2, 3):
                # Avoid leaving a remainder below the minimum copy length.
                chunk = length - 4 if chunk == 64 else chunk
            if 4 <= chunk <= 11 and offset < 2048:
                out.append(
                    ((offset >> 8) << 5) | ((chunk - 4) << 2) | _TAG_COPY1
                )
                out.append(offset & 0xFF)
            else:
                out.append(((chunk - 1) << 2) | _TAG_COPY2)
                out.append(offset & 0xFF)
                out.append(offset >> 8)
            length -= chunk

    def decompress(self, data: bytes, expected_size: int) -> bytes:
        pos = 0
        n = len(data)
        # Header varint.
        total = 0
        shift = 0
        while True:
            if pos >= n:
                raise CodecError("truncated length header")
            b = data[pos]
            pos += 1
            total |= (b & 0x7F) << shift
            if not b & 0x80:
                break
            shift += 7
        if total != expected_size:
            raise CodecError(
                f"header says {total} bytes, caller expects {expected_size}"
            )
        out = bytearray()
        while pos < n:
            tag = data[pos]
            pos += 1
            kind = tag & 0x03
            if kind == _TAG_LITERAL:
                code = tag >> 2
                if code < 60:
                    length = code + 1
                else:
                    nbytes = code - 59
                    if pos + nbytes > n:
                        raise CodecError("truncated literal length")
                    length = int.from_bytes(data[pos : pos + nbytes], "little") + 1
                    pos += nbytes
                if pos + length > n:
                    raise CodecError("truncated literal body")
                out += data[pos : pos + length]
                pos += length
            elif kind == _TAG_COPY1:
                if pos >= n:
                    raise CodecError("truncated copy1")
                length = ((tag >> 2) & 0x07) + 4
                offset = ((tag >> 5) << 8) | data[pos]
                pos += 1
                self._copy(out, offset, length)
            elif kind == _TAG_COPY2:
                if pos + 2 > n:
                    raise CodecError("truncated copy2")
                length = (tag >> 2) + 1
                offset = data[pos] | (data[pos + 1] << 8)
                pos += 2
                self._copy(out, offset, length)
            else:
                raise CodecError("copy4 elements are not emitted by this codec")
        if len(out) != expected_size:
            raise CodecError(
                f"decompressed {len(out)} bytes, expected {expected_size}"
            )
        return bytes(out)

    @staticmethod
    def _copy(out: bytearray, offset: int, length: int) -> None:
        start = len(out) - offset
        if start < 0 or offset == 0:
            raise CodecError("invalid copy offset")
        for i in range(length):
            out.append(out[start + i])
