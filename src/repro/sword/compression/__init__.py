"""Trace-block compression codecs (paper's LZO/Snappy/LZ4 comparison)."""

from .base import Codec
from .filters import FILTER_DELTA, FILTER_NAMES, FILTER_NONE
from .lz4like import Lz4LikeCodec
from .lzrle import LzRleCodec
from .registry import available, by_id, by_name, register
from .snappylike import SnappyLikeCodec
from .zlibwrap import ZlibCodec

__all__ = [
    "Codec",
    "FILTER_DELTA",
    "FILTER_NAMES",
    "FILTER_NONE",
    "Lz4LikeCodec",
    "LzRleCodec",
    "SnappyLikeCodec",
    "ZlibCodec",
    "available",
    "by_id",
    "by_name",
    "register",
]
