"""Codec interface for trace-block compression.

The paper compared LZO, Snappy, and LZ4 on its traces, found "similar
performance and compression ratios", and picked LZO for ease of integration.
We reproduce that comparison (benchmark E9) across four codecs behind one
interface: a byte-oriented RLE codec standing in for LZO, simplified LZ4 and
Snappy block formats, and stdlib zlib as the C-speed reference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ...common.errors import CodecError


class Codec(ABC):
    """A block compressor.  Implementations must be pure functions of the
    payload (no inter-block state) so blocks stay independently seekable."""

    #: Stable one-byte id written into block headers.
    codec_id: int = 0
    #: Registry name.
    name: str = "base"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress one block."""

    @abstractmethod
    def decompress(self, data: bytes, expected_size: int) -> bytes:
        """Decompress one block; must yield exactly ``expected_size`` bytes."""

    def roundtrip_check(self, data: bytes) -> None:
        """Sanity helper for tests."""
        out = self.decompress(self.compress(data), len(data))
        if out != data:
            raise CodecError(f"{self.name}: roundtrip mismatch")
