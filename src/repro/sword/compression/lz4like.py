"""Simplified LZ4 block codec (pure Python).

Implements the core of the LZ4 block format — greedy hash-chain match
finding, token byte packing literal-length and match-length nibbles, 2-byte
little-endian match offsets — without the frame layer or the end-of-block
restrictions of the reference implementation (blocks here are self-framed by
the trace writer).

This codec exists for the paper's codec-comparison experiment; being pure
Python, it trades speed for faithfulness to the format's *ratio* behaviour.
"""

from __future__ import annotations

from ...common.errors import CodecError
from .base import Codec

_MIN_MATCH = 4
_HASH_LOG = 14
_HASH_SIZE = 1 << _HASH_LOG
_MAX_OFFSET = 0xFFFF


def _hash4(data: bytes, pos: int) -> int:
    """Fibonacci hash of the 4 bytes at ``pos``."""
    v = (
        data[pos]
        | (data[pos + 1] << 8)
        | (data[pos + 2] << 16)
        | (data[pos + 3] << 24)
    )
    return (v * 2654435761 >> (32 - _HASH_LOG)) & (_HASH_SIZE - 1)


def _write_lsic(out: bytearray, value: int) -> None:
    """LZ4's linear small-integer code: 255-saturating continuation bytes."""
    while value >= 255:
        out.append(255)
        value -= 255
    out.append(value)


class Lz4LikeCodec(Codec):
    """Greedy single-probe LZ4 block compressor."""

    codec_id = 2
    name = "lz4"

    def compress(self, data: bytes) -> bytes:
        n = len(data)
        out = bytearray()
        if n == 0:
            return b""
        table = [-1] * _HASH_SIZE
        pos = 0
        literal_start = 0
        # Last 4 bytes can never start a match (need MIN_MATCH lookahead).
        limit = n - _MIN_MATCH
        while pos <= limit:
            h = _hash4(data, pos)
            candidate = table[h]
            table[h] = pos
            if (
                candidate >= 0
                and pos - candidate <= _MAX_OFFSET
                and data[candidate : candidate + _MIN_MATCH]
                == data[pos : pos + _MIN_MATCH]
            ):
                # Extend the match forward.
                match_len = _MIN_MATCH
                while (
                    pos + match_len < n
                    and data[candidate + match_len] == data[pos + match_len]
                ):
                    match_len += 1
                self._emit_sequence(
                    out,
                    data[literal_start:pos],
                    pos - candidate,
                    match_len,
                )
                pos += match_len
                literal_start = pos
            else:
                pos += 1
        # Trailing literals-only sequence.
        tail = data[literal_start:]
        if tail:
            self._emit_sequence(out, tail, 0, 0)
        return bytes(out)

    @staticmethod
    def _emit_sequence(
        out: bytearray, literals: bytes, offset: int, match_len: int
    ) -> None:
        lit_len = len(literals)
        token_lit = min(lit_len, 15)
        if match_len:
            ml = match_len - _MIN_MATCH
            token_ml = min(ml, 15)
        else:
            ml = 0
            token_ml = 0
        out.append((token_lit << 4) | token_ml)
        if token_lit == 15:
            _write_lsic(out, lit_len - 15)
        out += literals
        if match_len:
            out.append(offset & 0xFF)
            out.append(offset >> 8)
            if token_ml == 15:
                _write_lsic(out, ml - 15)

    def decompress(self, data: bytes, expected_size: int) -> bytes:
        out = bytearray()
        pos = 0
        n = len(data)
        while pos < n:
            token = data[pos]
            pos += 1
            lit_len = token >> 4
            if lit_len == 15:
                while True:
                    if pos >= n:
                        raise CodecError("truncated literal length")
                    b = data[pos]
                    pos += 1
                    lit_len += b
                    if b != 255:
                        break
            if pos + lit_len > n:
                raise CodecError("truncated literals")
            out += data[pos : pos + lit_len]
            pos += lit_len
            if pos >= n:
                break  # final literals-only sequence
            if pos + 2 > n:
                raise CodecError("truncated match offset")
            offset = data[pos] | (data[pos + 1] << 8)
            pos += 2
            if offset == 0:
                # Offset 0 marks a literals-only sequence (our extension).
                continue
            match_len = (token & 0x0F) + _MIN_MATCH
            if (token & 0x0F) == 15:
                while True:
                    if pos >= n:
                        raise CodecError("truncated match length")
                    b = data[pos]
                    pos += 1
                    match_len += b
                    if b != 255:
                        break
            start = len(out) - offset
            if start < 0:
                raise CodecError("match offset before block start")
            for i in range(match_len):  # byte-wise: overlapping copies allowed
                out.append(out[start + i])
        if len(out) != expected_size:
            raise CodecError(
                f"decompressed {len(out)} bytes, expected {expected_size}"
            )
        return bytes(out)
