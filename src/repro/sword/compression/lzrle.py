"""Byte run-length codec (the "LZO-like" default).

Trace records are fixed-width with many zero bytes (high address bits,
padding, small counts), so run-length encoding captures most of the
redundancy LZO would.  Run detection is vectorised with NumPy — the codec
compresses the 1-2 MB flush buffers in a few milliseconds, keeping the
online phase's overhead shape (cheap, CPU-light flushes) faithful.

Format: a sequence of tokens.

* ``0x00 <varint n> <n literal bytes>`` — literal run;
* ``0x01 <varint n> <byte>``           — ``n`` repeats of ``byte``.

Runs shorter than :data:`MIN_RUN` are folded into literals.
"""

from __future__ import annotations

import numpy as np

from ...common.errors import CodecError
from .base import Codec

#: Minimum repeat length worth a run token (3 header bytes to amortise).
MIN_RUN = 8

_LITERAL = 0x00
_RUN = 0x01


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    shift = 0
    value = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        b = data[pos]
        pos += 1
        value |= (b & 0x7F) << shift
        if not b & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise CodecError("varint too long")


class LzRleCodec(Codec):
    """Run-length codec with vectorised run detection."""

    codec_id = 1
    name = "lzrle"

    def compress(self, data: bytes) -> bytes:
        if not data:
            return b""
        arr = np.frombuffer(data, dtype=np.uint8)
        # Boundaries where the byte value changes.
        change = np.nonzero(np.diff(arr))[0] + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [arr.shape[0]]))
        lengths = ends - starts

        out = bytearray()
        lit_start = 0  # start of the pending literal region
        lit_end = 0
        for i in range(starts.shape[0]):
            s = int(starts[i])
            ln = int(lengths[i])
            if ln >= MIN_RUN:
                if lit_end > lit_start:
                    out.append(_LITERAL)
                    _write_varint(out, lit_end - lit_start)
                    out += data[lit_start:lit_end]
                out.append(_RUN)
                _write_varint(out, ln)
                out.append(int(arr[s]))
                lit_start = lit_end = s + ln
            else:
                lit_end = s + ln
        if lit_end > lit_start:
            out.append(_LITERAL)
            _write_varint(out, lit_end - lit_start)
            out += data[lit_start:lit_end]
        return bytes(out)

    def decompress(self, data: bytes, expected_size: int) -> bytes:
        out = bytearray()
        pos = 0
        n = len(data)
        while pos < n:
            token = data[pos]
            pos += 1
            if token == _LITERAL:
                length, pos = _read_varint(data, pos)
                if pos + length > n:
                    raise CodecError("truncated literal run")
                out += data[pos : pos + length]
                pos += length
            elif token == _RUN:
                length, pos = _read_varint(data, pos)
                if pos >= n:
                    raise CodecError("truncated repeat run")
                out += bytes([data[pos]]) * length
                pos += 1
            else:
                raise CodecError(f"unknown token {token:#x}")
        if len(out) != expected_size:
            raise CodecError(
                f"decompressed {len(out)} bytes, expected {expected_size}"
            )
        return bytes(out)
