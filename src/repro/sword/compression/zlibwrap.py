"""Stdlib zlib as the C-speed reference codec."""

from __future__ import annotations

import zlib

from ...common.errors import CodecError
from .base import Codec


class ZlibCodec(Codec):
    """DEFLATE via the standard library (level tuned for trace blocks)."""

    codec_id = 4
    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        # Level 1: trace blocks are flushed on the hot path; the paper's
        # candidates (LZO/Snappy/LZ4) are all speed-oriented codecs.
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes, expected_size: int) -> bytes:
        try:
            out = zlib.decompress(data)
        except zlib.error as exc:
            raise CodecError(f"zlib: {exc}") from exc
        if len(out) != expected_size:
            raise CodecError(
                f"decompressed {len(out)} bytes, expected {expected_size}"
            )
        return out
