"""Preconditioning filters applied to raw event bytes before the codec.

Trace blocks are arrays of fixed-width :data:`~repro.common.events.EVENT_DTYPE`
records whose ``addr`` and ``pc`` columns are *nearly sorted* within a chunk
(dense loops walk arrays monotonically and revisit a handful of access
sites).  Delta-encoding those two columns turns long arithmetic progressions
into runs of identical small values — exactly what the byte-oriented codecs
(RLE/LZ windows) exploit — without changing the record layout: a filtered
block is still ``n * EVENT_BYTES`` bytes.

The filter id travels in the v2 frame header (one previously-zero padding
byte), so v1 blocks and unfiltered v2 frames read back unchanged:
``FILTER_NONE == 0`` is what every pre-filter trace already contains.

Filters are lossless and self-contained per block: ``decode(encode(x)) == x``
and no state crosses block boundaries, which keeps the salvage reader's
block-at-a-time recovery story intact (payload CRCs cover the *compressed*
bytes and are unaffected).
"""

from __future__ import annotations

import numpy as np

from ...common.errors import CodecError
from ...common.events import EVENT_BYTES, EVENT_DTYPE

#: No preconditioning (the default; also what v1 / pre-filter frames carry).
FILTER_NONE = 0
#: Per-column delta of ``addr`` and ``pc`` (uint64 wrap-around arithmetic).
FILTER_DELTA = 1

FILTER_NAMES = {FILTER_NONE: "none", FILTER_DELTA: "delta"}

#: Columns the delta filter preconditions (unsigned, wrap-around safe).
_DELTA_COLUMNS = ("addr", "pc")


def _check(filter_id: int, data: bytes) -> None:
    if filter_id not in FILTER_NAMES:
        raise CodecError(f"unknown filter id {filter_id}")
    if filter_id != FILTER_NONE and len(data) % EVENT_BYTES != 0:
        raise CodecError(
            f"filtered block length {len(data)} is not a multiple of "
            f"{EVENT_BYTES}"
        )


def encode(filter_id: int, raw: bytes) -> bytes:
    """Apply a preconditioning filter to raw (uncompressed) event bytes."""
    _check(filter_id, raw)
    if filter_id == FILTER_NONE or not raw:
        return raw
    rec = np.frombuffer(raw, dtype=EVENT_DTYPE).copy()
    for name in _DELTA_COLUMNS:
        col = rec[name]
        out = col.copy()
        # uint64 subtraction wraps modulo 2**64, so decreasing sequences
        # round-trip exactly through the cumsum inverse.
        np.subtract(col[1:], col[:-1], out=out[1:])
        rec[name] = out
    return rec.tobytes()


def decode(filter_id: int, data: bytes) -> bytes:
    """Invert :func:`encode` on decompressed block bytes."""
    _check(filter_id, data)
    if filter_id == FILTER_NONE or not data:
        return data
    rec = np.frombuffer(data, dtype=EVENT_DTYPE).copy()
    for name in _DELTA_COLUMNS:
        # cumsum over uint64 is modular, undoing the wrap-around deltas.
        rec[name] = np.cumsum(rec[name], dtype=np.uint64)
    return rec.tobytes()
