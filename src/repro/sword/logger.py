"""The SWORD online tool: bounded-buffer trace collection.

Implements the paper's dynamic phase (§III-A) against the simulator's OMPT
seam:

* every thread owns one :class:`~repro.sword.buffer.EventBuffer`; full
  buffers are compressed and appended to the thread's log file with no
  coordination between threads;
* a per-thread meta-data file records one Table-I row per barrier-interval
  data chunk (``data_begin``/``size`` index into the *uncompressed* log
  stream);
* the bounded overhead — buffer + auxiliary TLS, ~3.3 MB/thread — is charged
  to the node-memory accountant per participating thread, which is the whole
  story of Figures 7/8: the charge never grows with the application.

Nested parallelism: when a thread enters a nested region, its outer
interval's chunk is closed and a fresh tracker is pushed; the outer interval
resumes (as another chunk row with the same pid/bid) after the nested region
ends.

Durability (production hardening): every chunk is written as a CRC-framed
v2 block with a trailing commit marker, writes go through a bounded
retry/backoff policy with an optional drop-oldest degradation path, and
``SwordConfig.durable`` keeps meta rows and the run-wide tables on disk
throughout the run — so a kill at any byte boundary leaves a prefix-valid
trace the salvage reader (:mod:`repro.sword.reader`) can still analyze.

Flush-event bus: observers registered with :meth:`SwordTool.subscribe`
receive live notifications as the trace is produced — region registration,
every Table-I chunk row the moment it is written (with the underlying data
already flushed and durable, so a live reader can consume it), and
barrier-interval completion.  This is the seam the streaming analysis
subsystem (:mod:`repro.stream`) attaches to; with no observers subscribed
the logger's behaviour and block layout are unchanged.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..common.config import SwordConfig
from ..common.errors import FlushError
from ..common.events import (
    EVENT_BYTES,
    KIND_BARRIER,
    KIND_MUTEX_ACQUIRED,
    KIND_MUTEX_RELEASED,
    KIND_PARALLEL_BEGIN,
    KIND_PARALLEL_END,
)
from ..memory.accounting import NodeMemory
from ..obs import (
    RATIO_BUCKETS,
    SECONDS_BUCKETS,
    Instrumentation,
    MemoryBoundGauge,
    get_obs,
)
from ..omp.ompt import OmptTool
from ..static.analyzer import analyze_region
from ..static.table import STATIC_VERDICTS_KEY, StaticVerdictTable
from .buffer import EventBuffer
from .compression import by_name, filters
from .digest import FrameDigest
from .traceformat import (
    MANIFEST_NAME,
    MUTEXSETS_NAME,
    REGIONS_JOURNAL_NAME,
    REGIONS_NAME,
    TASKS_NAME,
    TRACE_FORMAT_VERSION,
    META_COLUMNS,
    MetaRow,
    format_meta_file,
    journal_line,
    log_name,
    meta_name,
    pack_frame,
)


@dataclass(slots=True)
class _IntervalTracker:
    """Open barrier interval of one thread (stacked for nesting)."""

    pid: int
    ppid: int
    slot: int
    span: int
    level: int
    bid: int
    chunk_start: int


@dataclass(slots=True)
class _ThreadLog:
    """Per-thread collection state."""

    gid: int
    buffer: EventBuffer
    file: object
    flushed: int = 0  # uncompressed bytes already written out
    rows: list[MetaRow] = field(default_factory=list)
    stack: list[_IntervalTracker] = field(default_factory=list)
    #: Durable mode only: open append handle on the meta file.
    meta_file: object | None = None
    #: Logical byte ranges lost to the drop-oldest degradation path.
    dropped_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: Running access digest of the open chunk; reset at every chunk
    #: boundary.  ``fold_pos`` is the stream position covered so far —
    #: records are folded vectorised at flush/close, never per event.
    digest_acc: FrameDigest | None = None
    fold_pos: int = 0

    def logical_pos(self) -> int:
        """Current position in uncompressed stream coordinates."""
        return self.flushed + len(self.buffer) * EVENT_BYTES

    def overlaps_dropped(self, begin: int, end: int) -> bool:
        return any(begin < hi and lo < end for lo, hi in self.dropped_ranges)


class SwordTool(OmptTool):
    """The online (dynamic-analysis) half of SWORD."""

    def __init__(
        self,
        config: SwordConfig,
        accountant: NodeMemory | None = None,
        obs: Instrumentation | None = None,
        *,
        sink_factory=None,
    ) -> None:
        config.validate()
        self.config = config
        self.accountant = accountant
        self.obs = obs or get_obs()
        self.codec = by_name(config.codec)
        self._filter_id = (
            filters.FILTER_DELTA if config.delta_filter else filters.FILTER_NONE
        )
        self.dir = Path(config.log_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        from ..tasking.graph import TaskGraph

        self._logs: dict[int, _ThreadLog] = {}
        self._regions: dict[int, dict] = {}
        self._task_graph = TaskGraph()
        self._runtime = None
        self._observers: list = []
        #: Open one log sink; the fault-injection harness swaps this to
        #: wrap files with transient/permanent IO errors.
        self._sink_factory = sink_factory or (lambda path: open(path, "wb"))
        #: Backoff sleep; tests replace it to avoid real waiting.
        self._sleep = time.sleep
        #: Chunks lost to the drop-oldest degradation path (manifest's
        #: ``dropped_chunks`` — the record of exactly what was lost).
        self.dropped_chunks: list[dict] = []
        #: Meta rows suppressed because their bytes fell in a dropped range.
        self.lost_rows: list[dict] = []
        # Statistics surfaced in the manifest and by the harness.
        self.stats = {
            "events": 0,
            "batched_events": 0,
            "flushes": 0,
            "bytes_uncompressed": 0,
            "bytes_compressed": 0,
            "filter_bytes_saved": 0,
            "io_seconds": 0.0,
            "threads": 0,
            "flush_retries": 0,
            "chunks_dropped": 0,
            "events_dropped": 0,
            "events_elided": 0,
            "sites_proven_free": 0,
            "sites_definite_race": 0,
        }
        #: Verdicts of the static pre-screening pass, persisted into the
        #: manifest at finalisation (and in durable snapshots).
        self._verdict_table = StaticVerdictTable()
        # Registry instruments (cached: one attribute lookup + call per
        # update, a shared no-op under the null backend).  The hot
        # per-event counter is mirrored at flush grain, not per event.
        registry = self.obs.registry
        self._m_events = registry.counter(
            "sword.events", "events logged (mirrored per flush)"
        )
        self._m_batched = registry.counter(
            "sword.batched_events", "events delivered via the columnar batch path"
        )
        self._m_flushes = registry.counter("sword.flushes", "buffers flushed")
        self._m_bytes_raw = registry.counter(
            "sword.bytes_uncompressed", "raw event bytes flushed"
        )
        self._m_bytes_comp = registry.counter(
            "sword.bytes_compressed", "compressed bytes written"
        )
        self._m_filter_saved = registry.counter(
            "sword.filter_bytes_saved",
            "compressed bytes avoided by delta preconditioning",
        )
        self._m_threads = registry.gauge(
            "sword.threads", "threads with an open trace log"
        )
        self._m_flush_seconds = registry.histogram(
            "sword.flush_seconds", "compress+write latency per flush",
            buckets=SECONDS_BUCKETS,
        )
        self._m_ratio = registry.histogram(
            "sword.compression_ratio", "compressed/raw bytes per flush",
            buckets=RATIO_BUCKETS,
        )
        self._m_retries = registry.counter(
            "sword.flush_retries", "flush write attempts that were retried"
        )
        self._m_dropped = registry.counter(
            "sword.chunks_dropped", "chunks lost to the drop-oldest policy"
        )
        self._m_events_dropped = registry.counter(
            "sword.events_dropped", "events lost to the drop-oldest policy"
        )
        self._m_events_elided = registry.counter(
            "sword.events_elided",
            "accesses suppressed at statically classified sites",
        )
        # Live N x (B + C) verification: the gauge rides the accountant's
        # charge feed and re-checks the bound on every tool-memory move.
        self.membound: MemoryBoundGauge | None = None
        if accountant is not None:
            self.membound = MemoryBoundGauge(
                registry, config.per_thread_bytes, category=NodeMemory.TOOL
            ).attach(accountant)

    # -- flush-event bus --------------------------------------------------------

    def subscribe(self, observer) -> None:
        """Register a trace observer (see :class:`repro.stream.bus.TraceObserver`).

        Observers make chunk flushes *eager*: whenever a meta row is
        emitted, the thread's buffer is flushed and the log file synced
        first, so the notified chunk is immediately readable on disk.
        """
        self._observers.append(observer)

    @property
    def task_graph(self) -> "TaskGraph":
        """The live (growing) task graph of the current run."""
        return self._task_graph

    @property
    def runtime(self):
        """The runtime this tool is attached to (set at run begin)."""
        return self._runtime

    # -- per-thread state -------------------------------------------------------

    def _log_for(self, gid: int) -> _ThreadLog:
        log = self._logs.get(gid)
        if log is None:
            if self.membound is not None:
                # Grow the budget before the charge lands so the gauge
                # never sees a spuriously over-budget intermediate state.
                self.membound.add_thread()
            if self.accountant is not None:
                self.accountant.charge(
                    NodeMemory.TOOL, self.config.per_thread_bytes
                )
            fh = self._sink_factory(self.dir / log_name(gid))
            log = _ThreadLog(
                gid=gid,
                buffer=EventBuffer(self.config.buffer_events),
                file=fh,
            )
            if self.config.durable:
                meta_fh = open(self.dir / meta_name(gid), "a")
                meta_fh.write("# " + " ".join(META_COLUMNS) + "\n")
                meta_fh.flush()
                log.meta_file = meta_fh
            log.buffer.on_flush = lambda records, _log=log: self._flush(
                _log, records
            )
            self._logs[gid] = log
            self.stats["threads"] += 1
            self._m_threads.set(self.stats["threads"])
        return log

    def _flush(self, log: _ThreadLog, records: np.ndarray) -> None:
        """Compress one filled buffer and append it as a CRC-framed chunk.

        The frame (header + payload + commit marker) is written with a
        bounded retry/backoff policy; a partial write is rolled back
        (seek + truncate) before each retry so a successful retry never
        leaves a torn frame mid-file.  When retries are exhausted, the
        ``flush_degraded`` policy either raises :class:`FlushError` or
        drops the chunk — advancing the logical stream position so later
        chunks keep their coordinates, and recording exactly which bytes
        and events were lost.
        """
        self._fold_digest(log, records, log.flushed)
        raw = np.ascontiguousarray(records).tobytes()
        filter_id = self._filter_id
        if len(raw) % EVENT_BYTES != 0:  # defensive: blocks are record arrays
            filter_id = filters.FILTER_NONE
        t0 = time.perf_counter()
        with self.obs.tracer.span("flush", category="online", gid=log.gid):
            data = filters.encode(filter_id, raw) if filter_id else raw
            payload = self.codec.compress(data)
            frame = pack_frame(
                log.flushed, payload, len(raw), self.codec.codec_id, filter_id
            )
            written = self._write_frame(log, frame)
        elapsed = time.perf_counter() - t0
        self.stats["io_seconds"] += elapsed
        if not written:
            # Drop-oldest degradation: the logical range is recorded as a
            # hole; meta rows touching it are suppressed at emission.
            begin, end = log.flushed, log.flushed + len(raw)
            log.dropped_ranges.append((begin, end))
            log.flushed = end
            events = int(records.shape[0])
            self.dropped_chunks.append(
                {
                    "gid": log.gid,
                    "data_begin": begin,
                    "size": len(raw),
                    "events": events,
                }
            )
            self.stats["chunks_dropped"] += 1
            self.stats["events_dropped"] += events
            self._m_dropped.inc()
            self._m_events_dropped.inc(events)
            return
        self.stats["flushes"] += 1
        self.stats["bytes_uncompressed"] += len(raw)
        self.stats["bytes_compressed"] += len(payload)
        log.flushed += len(raw)
        self._m_events.inc(int(records.shape[0]))
        self._m_flushes.inc()
        self._m_bytes_raw.inc(len(raw))
        self._m_bytes_comp.inc(len(payload))
        self._m_flush_seconds.observe(elapsed)
        if raw:
            self._m_ratio.observe(len(payload) / len(raw))
        if filter_id:
            # One reference compression of the unfiltered bytes makes the
            # savings number exact rather than estimated.  It runs outside
            # the timed span so flush-latency metrics stay honest, and the
            # filter is opt-in, so so is this cost.
            saved = len(self.codec.compress(raw)) - len(payload)
            self.stats["filter_bytes_saved"] += saved
            if saved > 0:  # the counter is monotone; the stat keeps the net
                self._m_filter_saved.inc(saved)

    def _write_frame(self, log: _ThreadLog, frame: bytes) -> bool:
        """Write one frame with bounded retry + exponential backoff.

        Returns True on success; False when retries are exhausted and the
        degradation policy is drop-oldest.  Raises :class:`FlushError`
        when the policy is ``"raise"``.
        """
        attempts = self.config.flush_retries + 1
        last: BaseException | None = None
        for attempt in range(attempts):
            if attempt:
                self.stats["flush_retries"] += 1
                self._m_retries.inc()
                backoff = self.config.flush_backoff_seconds * (2 ** (attempt - 1))
                if backoff > 0:
                    self._sleep(backoff)
            start = None
            try:
                start = log.file.tell()
                log.file.write(frame)
                log.file.flush()
                if self.config.fsync_on_flush:
                    os.fsync(log.file.fileno())
                return True
            except OSError as exc:
                last = exc
                if start is not None:
                    try:  # roll back a partial write before retrying
                        log.file.seek(start)
                        log.file.truncate()
                    except OSError:
                        pass
        if self.config.flush_degraded == "drop-oldest":
            return False
        raise FlushError(log.gid, attempts, last)

    def _fold_digest(
        self, log: _ThreadLog, records: np.ndarray, base: int
    ) -> None:
        """Fold the unfolded suffix of ``records`` into the chunk digest.

        ``base`` is the stream position of ``records[0]``.  Everything
        before ``log.fold_pos`` was already folded (at an earlier chunk
        close or flush), so each record is digested exactly once, in one
        vectorised pass — never on the per-event hot path.
        """
        start = max(0, (log.fold_pos - base) // EVENT_BYTES)
        tail = records[start:]
        log.fold_pos = base + records.shape[0] * EVENT_BYTES
        if tail.shape[0] == 0:
            return
        part = FrameDigest.from_records(tail)
        log.digest_acc = (
            part if log.digest_acc is None else log.digest_acc.fold(part)
        )

    def _reset_digest(self, log: _ThreadLog, pos: int) -> None:
        """Start a fresh digest accumulator at a chunk boundary."""
        log.digest_acc = None
        log.fold_pos = pos

    def _close_chunk(self, log: _ThreadLog) -> None:
        """Emit a Table-I row for the current tracker's open chunk."""
        tr = log.stack[-1]
        pos = log.logical_pos()
        if pos > tr.chunk_start:
            # Digest the buffered tail of the chunk (flushed frames were
            # folded as they left the buffer) so the row carries a summary
            # of exactly its [data_begin, data_begin + size) bytes.
            self._fold_digest(log, log.buffer.view(), log.flushed)
            row = MetaRow(
                pid=tr.pid,
                ppid=tr.ppid,
                bid=tr.bid,
                offset=tr.slot,
                span=tr.span,
                level=tr.level,
                data_begin=tr.chunk_start,
                size=pos - tr.chunk_start,
                digest=log.digest_acc or FrameDigest.empty(),
            )
            if log.overlaps_dropped(tr.chunk_start, pos):
                # Part of this chunk's bytes were lost to the drop-oldest
                # policy; a row pointing at a hole would make the reader
                # serve wrong data, so the whole row is suppressed and
                # the loss recorded for the integrity report.
                self.lost_rows.append(
                    {
                        "gid": log.gid,
                        "pid": tr.pid,
                        "bid": tr.bid,
                        "data_begin": tr.chunk_start,
                        "size": pos - tr.chunk_start,
                    }
                )
                tr.chunk_start = pos
                self._reset_digest(log, pos)
                return
            log.rows.append(row)
            if log.meta_file is not None:
                # Durable mode: the row is on disk (with its own CRC) the
                # moment it exists, so a kill right after this point
                # still leaves a salvageable prefix.
                log.meta_file.write(row.format_durable() + "\n")
                log.meta_file.flush()
                if self.config.fsync_on_flush:
                    os.fsync(log.meta_file.fileno())
            if self._observers:
                # Make the chunk durable before announcing it: flush the
                # buffered events into a framed block and sync the file so
                # a live reader sees complete blocks covering the row.
                log.buffer.flush()
                log.file.flush()
                for obs in self._observers:
                    obs.on_chunk(log.gid, row)
        tr.chunk_start = pos
        self._reset_digest(log, pos)

    def _notify_interval_end(
        self, gid: int, pid: int, bid: int, slot: int, span: int
    ) -> None:
        for obs in self._observers:
            obs.on_interval_end(gid, pid, bid, slot, span)

    # -- OMPT callbacks -------------------------------------------------------------

    def on_run_begin(self, runtime) -> None:  # noqa: D102
        self._runtime = runtime
        for obs in self._observers:
            obs.on_trace_begin(self)

    def on_parallel_begin(self, region) -> None:  # noqa: D102
        info = {
            "ppid": region.ppid,
            "parent_slot": region.parent_slot,
            "parent_bid": region.parent_bid,
            "span": region.span,
            "level": region.level,
        }
        self._regions[region.pid] = info
        if self.config.durable:
            self._journal_region(region.pid, info)
            self._snapshot_tables()
        for obs in self._observers:
            obs.on_region(region.pid, info)

    # -- static pre-screening --------------------------------------------------

    def on_static_region(self, region, team, spec):  # noqa: D102
        if not self.config.static_prescreen:
            return None
        verdicts = analyze_region(
            spec, pid=region.pid, gids=[m.gid for m in team.members]
        )
        self._verdict_table.add_region(verdicts)
        self.stats["sites_proven_free"] += verdicts.sites_proven_free
        self.stats["sites_definite_race"] += verdicts.sites_definite_race
        if self.config.durable:
            self._snapshot_tables()
        return verdicts

    def on_access_elided(self, thread, count) -> None:  # noqa: D102
        self.stats["events_elided"] += count
        self._verdict_table.events_elided += count
        self._m_events_elided.inc(count)

    @property
    def static_verdicts(self) -> StaticVerdictTable | None:
        """The live verdict table (None until a region is screened).

        Offline analyzers consume this through the same attribute name
        trace readers expose, so the streaming path skips proven-free
        pairs and injects DEFINITE_RACE reports identically to a
        post-mortem analysis of the persisted manifest.
        """
        return self._verdict_table if self._verdict_table.regions else None

    # -- durable-mode journalling ---------------------------------------------

    def _journal_region(self, pid: int, info: dict) -> None:
        """Append one checksummed region record to ``regions.jsonl``."""
        with open(self.dir / REGIONS_JOURNAL_NAME, "a") as fh:
            fh.write(journal_line({"pid": pid, **info}))
            fh.flush()
            if self.config.fsync_on_flush:
                os.fsync(fh.fileno())

    def _write_atomic(self, name: str, text: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.dir, prefix=name, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(text)
            os.replace(tmp, self.dir / name)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _snapshot_tables(self) -> None:
        """Keep the small run-wide tables recoverable mid-run.

        Written atomically at every region fork (rare relative to event
        traffic): the mutex-set table and an in-progress manifest, so a
        kill between forks still leaves a trace the salvage reader can
        open without the finalised files.
        """
        if self._runtime is not None:
            self._runtime.mutexsets.save(self.dir / MUTEXSETS_NAME)
        snapshot = {
            "in_progress": True,
            "format_version": TRACE_FORMAT_VERSION,
            "codec": self.config.codec,
            "delta_filter": self.config.delta_filter,
            "buffer_events": self.config.buffer_events,
            "thread_gids": sorted(self._logs),
        }
        if self._verdict_table.regions:
            snapshot[STATIC_VERDICTS_KEY] = self._verdict_table.to_payload()
        self._write_atomic(
            MANIFEST_NAME,
            json.dumps(snapshot, indent=2, sort_keys=True),
        )

    def on_implicit_task_begin(self, thread, region, slot) -> None:  # noqa: D102
        log = self._log_for(thread.gid)
        if log.stack:
            self._close_chunk(log)  # pause the outer interval
        log.stack.append(
            _IntervalTracker(
                pid=region.pid,
                ppid=region.ppid,
                slot=slot,
                span=region.span,
                level=region.level,
                bid=0,
                chunk_start=log.logical_pos(),
            )
        )
        log.buffer.append_event(KIND_PARALLEL_BEGIN, addr=region.pid)
        self.stats["events"] += 1

    def on_implicit_task_end(self, thread, region, slot) -> None:  # noqa: D102
        log = self._logs[thread.gid]
        log.buffer.append_event(KIND_PARALLEL_END, addr=region.pid)
        self.stats["events"] += 1
        self._close_chunk(log)
        tr = log.stack.pop()
        # The thread's final interval of this region (the post-barrier one
        # holding the region-end marker) is complete.
        self._notify_interval_end(
            thread.gid, region.pid, tr.bid, tr.slot, tr.span
        )
        if log.stack:
            # Resume the outer interval as a fresh chunk.
            log.stack[-1].chunk_start = log.logical_pos()
            self._reset_digest(log, log.stack[-1].chunk_start)

    def on_barrier_arrive(self, thread, region, bid) -> None:  # noqa: D102
        log = self._logs[thread.gid]
        log.buffer.append_event(KIND_BARRIER, addr=region.pid, aux=bid)
        self.stats["events"] += 1
        self._close_chunk(log)
        tr = log.stack[-1]
        self._notify_interval_end(thread.gid, region.pid, bid, tr.slot, tr.span)

    def on_barrier_depart(self, thread, region, new_bid) -> None:  # noqa: D102
        log = self._logs[thread.gid]
        tr = log.stack[-1]
        tr.bid = new_bid
        tr.chunk_start = log.logical_pos()
        self._reset_digest(log, tr.chunk_start)

    def on_mutex_acquired(self, thread, mutex_id) -> None:  # noqa: D102
        log = self._log_for(thread.gid)
        if log.stack:
            log.buffer.append_event(KIND_MUTEX_ACQUIRED, addr=mutex_id)
            self.stats["events"] += 1

    def on_mutex_released(self, thread, mutex_id) -> None:  # noqa: D102
        log = self._log_for(thread.gid)
        if log.stack:
            log.buffer.append_event(KIND_MUTEX_RELEASED, addr=mutex_id)
            self.stats["events"] += 1

    def on_access(self, thread, access) -> None:  # noqa: D102
        log = self._log_for(thread.gid)
        log.buffer.append_access(access)
        self.stats["events"] += 1

    def on_access_batch(self, thread, batch) -> None:  # noqa: D102
        log = self._log_for(thread.gid)
        log.buffer.append_access_batch(batch)
        n = len(batch)
        self.stats["events"] += n
        self.stats["batched_events"] += n
        self._m_batched.inc(n)

    # -- tasking extension -----------------------------------------------------

    def on_task_create(self, thread, task) -> None:  # noqa: D102
        from ..tasking.graph import TaskInfo

        self._task_graph.add(
            TaskInfo(
                task_id=task.task_id,
                creator=task.creator_entity,
                creator_gid=task.creator_gid,
                pid=task.pid,
                bid=task.bid,
                create_seq=task.create_seq,
            )
        )

    def on_taskwait(self, thread, waited, new_seq) -> None:  # noqa: D102
        for task in waited:
            self._task_graph.set_wait(task.task_id, new_seq)

    def on_run_end(self, runtime) -> None:  # noqa: D102
        self.finalize()

    # -- finalisation --------------------------------------------------------------------

    def finalize(self) -> None:
        """Flush buffers, write meta files and run-wide tables."""
        with self.obs.tracer.span("finalize", category="online"):
            self._finalize()

    def _finalize(self) -> None:
        for log in self._logs.values():
            log.buffer.flush()
            log.file.close()
            if log.meta_file is not None:
                # Durable mode appended every row as it was emitted; the
                # meta file is already complete on disk.
                log.meta_file.close()
            else:
                (self.dir / meta_name(log.gid)).write_text(
                    format_meta_file(log.rows, durable=self.config.durable)
                )
        (self.dir / REGIONS_NAME).write_text(
            json.dumps(self._regions, indent=0, sort_keys=True)
        )
        (self.dir / TASKS_NAME).write_text(
            json.dumps(self._task_graph.to_json(), indent=0, sort_keys=True)
        )
        if self._runtime is not None:
            self._runtime.mutexsets.save(self.dir / MUTEXSETS_NAME)
        manifest = dict(self.stats)
        manifest["format_version"] = TRACE_FORMAT_VERSION
        manifest["codec"] = self.config.codec
        manifest["delta_filter"] = self.config.delta_filter
        manifest["buffer_events"] = self.config.buffer_events
        manifest["thread_gids"] = sorted(self._logs)
        if self._verdict_table.regions:
            manifest[STATIC_VERDICTS_KEY] = self._verdict_table.to_payload()
        if self.dropped_chunks:
            manifest["dropped_chunks"] = self.dropped_chunks
            manifest["lost_rows"] = self.lost_rows
        (self.dir / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        for obs in self._observers:
            obs.on_trace_end(self)

    @property
    def per_thread_bytes(self) -> int:
        """The paper's ``B + C`` (~3.3 MB)."""
        return self.config.per_thread_bytes
