"""SWORD online phase: bounded buffers, compression, trace logging."""

from .buffer import EventBuffer
from .logger import SwordTool
from .reader import ThreadTraceReader, TraceDir
from .traceformat import (
    BlockHeader,
    MetaRow,
    format_meta_file,
    log_name,
    meta_name,
    pack_block_header,
    parse_meta_file,
    unpack_block_header,
)

__all__ = [
    "BlockHeader",
    "EventBuffer",
    "MetaRow",
    "SwordTool",
    "ThreadTraceReader",
    "TraceDir",
    "format_meta_file",
    "log_name",
    "meta_name",
    "pack_block_header",
    "parse_meta_file",
    "unpack_block_header",
]
