"""SWORD online phase: bounded buffers, compression, trace logging."""

from .buffer import EventBuffer
from .integrity import IntegrityReport, ThreadIntegrity
from .logger import SwordTool
from .reader import ThreadTraceReader, TraceDir
from .traceformat import (
    TRACE_FORMAT_VERSION,
    BlockHeader,
    MetaRow,
    format_meta_file,
    log_name,
    meta_name,
    pack_block_header,
    pack_frame,
    parse_meta_file,
    unpack_block_header,
    unpack_frame_header,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "BlockHeader",
    "EventBuffer",
    "IntegrityReport",
    "MetaRow",
    "SwordTool",
    "ThreadIntegrity",
    "ThreadTraceReader",
    "TraceDir",
    "format_meta_file",
    "log_name",
    "meta_name",
    "pack_block_header",
    "pack_frame",
    "parse_meta_file",
    "unpack_block_header",
    "unpack_frame_header",
]
