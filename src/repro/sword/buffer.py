"""The bounded per-thread event buffer.

SWORD's central memory-overhead claim: each thread collects accesses in a
fixed-capacity buffer (paper default: 25,000 events ≈ 2 MB, chosen to fit in
L3) and, when it fills, compresses and writes it out *independently of other
threads*.  The buffer is a preallocated NumPy structured array — appends are
O(1) slot assignments, and a flush hands the writer one contiguous block
with no per-event serialisation work.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..common.config import SWORD_BUFFER_EVENTS
from ..common.events import (
    EVENT_DTYPE,
    FLAG_ATOMIC,
    FLAG_WRITE,
    KIND_ACCESS,
    Access,
    AccessBatch,
)


class EventBuffer:
    """Fixed-capacity append buffer over :data:`EVENT_DTYPE` records.

    ``on_flush(records)`` is invoked with a *view* of the filled prefix when
    the buffer runs out of slots (and on explicit :meth:`flush`); the view is
    only valid for the duration of the callback.
    """

    def __init__(
        self,
        capacity: int = SWORD_BUFFER_EVENTS,
        on_flush: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.on_flush = on_flush or (lambda records: None)
        self._records = np.zeros(capacity, dtype=EVENT_DTYPE)
        self._used = 0
        self.flushes = 0
        self.events_total = 0
        self.events_dropped = 0

    def __len__(self) -> int:
        return self._used

    def view(self) -> np.ndarray:
        """A read-only-by-convention view of the filled prefix.

        Valid only until the next append/flush/drop; the digest
        accumulator folds it at chunk boundaries without copying.
        """
        return self._records[: self._used]

    @property
    def nbytes(self) -> int:
        """Fixed allocation size (the bounded overhead)."""
        return self._records.nbytes

    def _slot(self) -> np.ndarray:
        if self._used == self.capacity:
            self.flush()
        i = self._used
        self._used += 1
        self.events_total += 1
        return self._records[i]

    def append_access(self, access: Access) -> None:
        """Append one access event (hot path: writes fields in place)."""
        rec = self._slot()
        rec["kind"] = KIND_ACCESS
        rec["flags"] = (FLAG_WRITE if access.is_write else 0) | (
            FLAG_ATOMIC if access.is_atomic else 0
        )
        rec["size"] = access.size
        rec["msid"] = access.msid
        rec["addr"] = access.addr
        rec["count"] = access.count
        rec["stride"] = access.stride
        rec["pc"] = access.pc
        rec["aux"] = access.task_point

    @staticmethod
    def _column(value, lo: int, hi: int):
        """Slice a batch column, passing scalars through (they broadcast)."""
        return value[lo:hi] if isinstance(value, np.ndarray) else value

    def append_access_batch(self, batch: AccessBatch) -> None:
        """Append a columnar batch with slice assignment (the fast path).

        Splits across flush boundaries exactly like repeated
        :meth:`append_access` calls would: a full buffer is flushed lazily
        *before* the next record lands, never right after the last one.
        """
        n = len(batch)
        offset = 0
        while offset < n:
            if self._used == self.capacity:
                self.flush()
            take = min(self.capacity - self._used, n - offset)
            dst = self._records[self._used : self._used + take]
            lo, hi = offset, offset + take
            dst["kind"] = KIND_ACCESS
            dst["flags"] = self._column(batch.flags, lo, hi)
            dst["size"] = self._column(batch.size, lo, hi)
            dst["msid"] = self._column(batch.msid, lo, hi)
            dst["addr"] = batch.addr[lo:hi]
            dst["count"] = self._column(batch.count, lo, hi)
            dst["stride"] = self._column(batch.stride, lo, hi)
            dst["pc"] = self._column(batch.pc, lo, hi)
            dst["aux"] = self._column(batch.task_point, lo, hi)
            self._used += take
            self.events_total += take
            offset += take

    def append_event(self, kind: int, *, addr: int = 0, aux: int = 0) -> None:
        """Append a structural runtime event (barrier, mutex, region)."""
        rec = self._slot()
        rec["kind"] = kind
        rec["flags"] = 0
        rec["size"] = 0
        rec["msid"] = 0
        rec["addr"] = addr
        rec["count"] = 0
        rec["stride"] = 0
        rec["pc"] = 0
        rec["aux"] = aux

    def flush(self) -> None:
        """Hand the filled prefix to ``on_flush`` and reset.

        If ``on_flush`` raises, the buffered events are *retained* (the
        reset only happens after the callback returns) so the writer's
        retry policy can flush them again.  The ``flushes`` counter is
        likewise only bumped once the callback succeeds — a raising
        callback plus a retry is one flush, not two.
        """
        if self._used == 0:
            return
        view = self._records[: self._used]
        self.on_flush(view)
        self.flushes += 1
        self._used = 0

    def drop(self) -> int:
        """Discard the buffered events without flushing (degraded mode).

        Returns how many events were thrown away; the caller is expected
        to record the loss (see the logger's drop-oldest policy).
        """
        dropped = self._used
        self._used = 0
        self.events_dropped += dropped
        return dropped
