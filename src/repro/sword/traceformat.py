"""On-disk trace layout: block framing, Table-I metadata rows, manifest.

Per-thread files in a trace directory:

* ``thread_<gid>.log``  — concatenated compressed blocks of EVENT_DTYPE
  records.  Each block is framed by a fixed 24-byte header carrying the
  codec id and both sizes, so a reader can skip blocks without
  decompressing and can resynchronise offsets in *uncompressed stream
  coordinates* (what the metadata refers to).
* ``thread_<gid>.meta`` — text rows, one per barrier-interval data chunk,
  with exactly the paper's Table-I columns: ``pid ppid bid offset span
  level data_begin size`` (``data_begin``/``size`` in uncompressed bytes).
  An interval interrupted by a nested region contributes multiple chunks.

Run-wide files:

* ``regions.json``   — per region: ppid, parent slot/bid, span, level (the
  fork positions the offline phase chains into offset-span labels);
* ``mutexsets.json`` — the interned mutex-set table;
* ``manifest.json``  — codec, thread list, counters.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..common.errors import TraceFormatError

BLOCK_MAGIC = b"SWBL"
#: ``magic, uncompressed stream offset, compressed size, uncompressed size,
#: codec id, padding``
BLOCK_HEADER = struct.Struct("<4sQIIB3x")
BLOCK_HEADER_BYTES = BLOCK_HEADER.size
assert BLOCK_HEADER_BYTES == 24

META_COLUMNS = ("pid", "ppid", "bid", "offset", "span", "level", "data_begin", "size")
MANIFEST_NAME = "manifest.json"
REGIONS_NAME = "regions.json"
MUTEXSETS_NAME = "mutexsets.json"
TASKS_NAME = "tasks.json"


def pack_block_header(
    uncompressed_offset: int, compressed_size: int, uncompressed_size: int, codec_id: int
) -> bytes:
    """Frame one compressed block."""
    return BLOCK_HEADER.pack(
        BLOCK_MAGIC, uncompressed_offset, compressed_size, uncompressed_size, codec_id
    )


@dataclass(frozen=True, slots=True)
class BlockHeader:
    """Parsed block frame."""

    uncompressed_offset: int
    compressed_size: int
    uncompressed_size: int
    codec_id: int


def unpack_block_header(data: bytes) -> BlockHeader:
    """Parse and validate one block frame."""
    if len(data) < BLOCK_HEADER_BYTES:
        raise TraceFormatError("truncated block header")
    magic, off, csize, usize, codec_id = BLOCK_HEADER.unpack(
        data[:BLOCK_HEADER_BYTES]
    )
    if magic != BLOCK_MAGIC:
        raise TraceFormatError(f"bad block magic {magic!r}")
    return BlockHeader(
        uncompressed_offset=off,
        compressed_size=csize,
        uncompressed_size=usize,
        codec_id=codec_id,
    )


@dataclass(frozen=True, slots=True)
class MetaRow:
    """One Table-I row: a barrier-interval data chunk of one thread."""

    pid: int
    ppid: int            # -1 for top-level regions (printed as '-')
    bid: int
    offset: int          # thread slot within the team
    span: int            # team size
    level: int
    data_begin: int      # uncompressed byte offset into the thread's log
    size: int            # chunk length in uncompressed bytes

    def format(self) -> str:
        ppid = "-" if self.ppid < 0 else str(self.ppid)
        return (
            f"{self.pid} {ppid} {self.bid} {self.offset} {self.span} "
            f"{self.level} {self.data_begin} {self.size}"
        )

    @classmethod
    def parse(cls, line: str) -> "MetaRow":
        parts = line.split()
        if len(parts) != len(META_COLUMNS):
            raise TraceFormatError(f"malformed meta row: {line!r}")
        try:
            ppid = -1 if parts[1] == "-" else int(parts[1])
            return cls(
                pid=int(parts[0]),
                ppid=ppid,
                bid=int(parts[2]),
                offset=int(parts[3]),
                span=int(parts[4]),
                level=int(parts[5]),
                data_begin=int(parts[6]),
                size=int(parts[7]),
            )
        except ValueError as exc:
            raise TraceFormatError(f"malformed meta row: {line!r}") from exc


def format_meta_file(rows: list[MetaRow]) -> str:
    """Render a meta file (header comment + rows)."""
    lines = ["# " + " ".join(META_COLUMNS)]
    lines.extend(r.format() for r in rows)
    return "\n".join(lines) + "\n"


def parse_meta_file(text: str) -> list[MetaRow]:
    """Parse a meta file, skipping comments and blank lines."""
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append(MetaRow.parse(line))
    return rows


def log_name(gid: int) -> str:
    return f"thread_{gid}.log"


def meta_name(gid: int) -> str:
    return f"thread_{gid}.meta"
