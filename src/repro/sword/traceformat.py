"""On-disk trace layout: block framing, Table-I metadata rows, manifest.

Per-thread files in a trace directory:

* ``thread_<gid>.log``  — concatenated compressed blocks of EVENT_DTYPE
  records.  Format v2 frames each block with a 32-byte checksummed
  header and an 8-byte trailing commit marker (layout below), so a
  reader can skip blocks without decompressing, resynchronise offsets in
  *uncompressed stream coordinates* (what the metadata refers to), and
  — the durability property — prove that any byte-level truncation or
  corruption leaves a detectable, prefix-valid trace.  v1 traces used an
  unchecksummed 24-byte header; the reader auto-detects them per block.
* ``thread_<gid>.meta`` — text rows, one per barrier-interval data chunk,
  with exactly the paper's Table-I columns: ``pid ppid bid offset span
  level data_begin size`` (``data_begin``/``size`` in uncompressed bytes).
  An interval interrupted by a nested region contributes multiple chunks.
  Durable mode appends a per-row CRC32 suffix (``*xxxxxxxx``) so a torn
  trailing row is detectable; rows without the suffix still parse (v1).

Run-wide files:

* ``regions.json``   — per region: ppid, parent slot/bid, span, level (the
  fork positions the offline phase chains into offset-span labels);
* ``regions.jsonl``  — durable-mode journal: one checksummed JSON line per
  region, appended at fork time so a crash before finalisation still
  leaves the concurrency structure recoverable;
* ``mutexsets.json`` — the interned mutex-set table;
* ``manifest.json``  — codec, thread list, counters, format version.

Frame layout (format v2, little-endian)::

    offset  size  field
    0       4     magic "SWB2"
    4       8     uncompressed stream offset
    12      4     compressed payload size
    16      4     uncompressed size
    20      1     codec id
    21      1     preconditioning filter id (0 = none; see
                  :mod:`repro.sword.compression.filters`)
    22      2     padding (zero)
    24      4     CRC32 of the compressed payload
    28      4     CRC32 of header bytes [0, 28)
    32      *     compressed payload
    32+*    4     commit magic "SWCM"
    36+*    4     CRC32 of the compressed payload (echo)

A frame *commits* only once its trailer is on disk; a kill at any byte
boundary therefore leaves either complete committed frames or one
detectable torn frame at the tail.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass

from ..common.errors import TraceFormatError
from .digest import FrameDigest, decode_digest

#: On-disk format version recorded in the manifest.  v1: unchecksummed
#: 24-byte block headers; v2: CRC-framed chunks + commit markers.
TRACE_FORMAT_VERSION = 2

# -- v1 block framing (legacy; still readable) --------------------------------

BLOCK_MAGIC = b"SWBL"
#: ``magic, uncompressed stream offset, compressed size, uncompressed size,
#: codec id, padding``
BLOCK_HEADER = struct.Struct("<4sQIIB3x")
BLOCK_HEADER_BYTES = BLOCK_HEADER.size
assert BLOCK_HEADER_BYTES == 24

# -- v2 CRC framing -----------------------------------------------------------

FRAME_MAGIC = b"SWB2"
#: v1 header fields plus a filter id (carved from a padding byte, so
#: pre-filter v2 frames parse as filter 0 = none), payload CRC32, and a
#: CRC32 over the header itself.
FRAME_HEADER = struct.Struct("<4sQIIBB2xII")
FRAME_HEADER_BYTES = FRAME_HEADER.size
assert FRAME_HEADER_BYTES == 32

COMMIT_MAGIC = b"SWCM"
#: ``commit magic, payload CRC32 echo`` — written after the payload; its
#: presence marks the frame as fully committed.
COMMIT_TRAILER = struct.Struct("<4sI")
COMMIT_TRAILER_BYTES = COMMIT_TRAILER.size
assert COMMIT_TRAILER_BYTES == 8

META_COLUMNS = ("pid", "ppid", "bid", "offset", "span", "level", "data_begin", "size")
MANIFEST_NAME = "manifest.json"
REGIONS_NAME = "regions.json"
REGIONS_JOURNAL_NAME = "regions.jsonl"
MUTEXSETS_NAME = "mutexsets.json"
TASKS_NAME = "tasks.json"


def crc32(data: bytes) -> int:
    """The trace format's checksum (zlib CRC32, unsigned)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def pack_block_header(
    uncompressed_offset: int, compressed_size: int, uncompressed_size: int, codec_id: int
) -> bytes:
    """Frame one compressed block (legacy v1 header, kept for tests/tools)."""
    return BLOCK_HEADER.pack(
        BLOCK_MAGIC, uncompressed_offset, compressed_size, uncompressed_size, codec_id
    )


@dataclass(frozen=True, slots=True)
class BlockHeader:
    """Parsed block frame (either format version)."""

    uncompressed_offset: int
    compressed_size: int
    uncompressed_size: int
    codec_id: int
    #: CRC32 of the compressed payload; None for v1 blocks (unchecksummed).
    payload_crc: int | None = None
    #: Preconditioning filter applied before compression (0 = none; v1
    #: blocks and pre-filter v2 frames always carry 0).
    filter_id: int = 0

    @property
    def version(self) -> int:
        return 1 if self.payload_crc is None else 2

    @property
    def header_bytes(self) -> int:
        return BLOCK_HEADER_BYTES if self.payload_crc is None else FRAME_HEADER_BYTES

    @property
    def trailer_bytes(self) -> int:
        return 0 if self.payload_crc is None else COMMIT_TRAILER_BYTES


def unpack_block_header(data: bytes) -> BlockHeader:
    """Parse and validate one v1 block frame."""
    if len(data) < BLOCK_HEADER_BYTES:
        raise TraceFormatError("truncated block header")
    magic, off, csize, usize, codec_id = BLOCK_HEADER.unpack(
        data[:BLOCK_HEADER_BYTES]
    )
    if magic != BLOCK_MAGIC:
        raise TraceFormatError(f"bad block magic {magic!r}")
    return BlockHeader(
        uncompressed_offset=off,
        compressed_size=csize,
        uncompressed_size=usize,
        codec_id=codec_id,
    )


def pack_frame(
    uncompressed_offset: int,
    payload: bytes,
    uncompressed_size: int,
    codec_id: int,
    filter_id: int = 0,
) -> bytes:
    """Frame one compressed block as a v2 chunk: header + payload + commit."""
    payload_crc = crc32(payload)
    head = FRAME_HEADER.pack(
        FRAME_MAGIC,
        uncompressed_offset,
        len(payload),
        uncompressed_size,
        codec_id,
        filter_id,
        payload_crc,
        0,  # placeholder; the header CRC covers everything before itself
    )
    head = head[:-4] + struct.pack("<I", crc32(head[:-4]))
    return head + payload + COMMIT_TRAILER.pack(COMMIT_MAGIC, payload_crc)


def unpack_frame_header(data: bytes) -> BlockHeader:
    """Parse and validate one v2 frame header (magic + header CRC)."""
    if len(data) < FRAME_HEADER_BYTES:
        raise TraceFormatError("truncated frame header")
    raw = data[:FRAME_HEADER_BYTES]
    magic, off, csize, usize, codec_id, filter_id, payload_crc, header_crc = (
        FRAME_HEADER.unpack(raw)
    )
    if magic != FRAME_MAGIC:
        raise TraceFormatError(f"bad frame magic {magic!r}")
    if crc32(raw[:-4]) != header_crc:
        raise TraceFormatError("frame header CRC mismatch")
    return BlockHeader(
        uncompressed_offset=off,
        compressed_size=csize,
        uncompressed_size=usize,
        codec_id=codec_id,
        payload_crc=payload_crc,
        filter_id=filter_id,
    )


def check_commit_trailer(data: bytes, payload_crc: int) -> bool:
    """True when ``data`` is this frame's valid commit trailer."""
    if len(data) < COMMIT_TRAILER_BYTES:
        return False
    magic, echo = COMMIT_TRAILER.unpack(data[:COMMIT_TRAILER_BYTES])
    return magic == COMMIT_MAGIC and echo == payload_crc


@dataclass(frozen=True, slots=True)
class MetaRow:
    """One Table-I row: a barrier-interval data chunk of one thread."""

    pid: int
    ppid: int            # -1 for top-level regions (printed as '-')
    bid: int
    offset: int          # thread slot within the team
    span: int            # team size
    level: int
    data_begin: int      # uncompressed byte offset into the thread's log
    size: int            # chunk length in uncompressed bytes
    #: Collection-time access summary of the chunk, serialised as a
    #: versioned ``d1=...`` suffix token (durable rows CRC-cover it).
    #: None for v1 rows, pre-digest v2 rows, and newer-version tokens.
    digest: FrameDigest | None = None

    def format(self) -> str:
        ppid = "-" if self.ppid < 0 else str(self.ppid)
        body = (
            f"{self.pid} {ppid} {self.bid} {self.offset} {self.span} "
            f"{self.level} {self.data_begin} {self.size}"
        )
        if self.digest is not None:
            body = f"{body} {self.digest.encode()}"
        return body

    def format_durable(self) -> str:
        """Row text plus a ``*crc32`` suffix so a torn line is detectable."""
        body = self.format()
        return f"{body} *{crc32(body.encode()):08x}"

    @classmethod
    def parse(cls, line: str) -> "MetaRow":
        parts = line.split()
        if parts and parts[-1].startswith("*"):
            body = line[: line.rindex("*")].rstrip()
            try:
                expected = int(parts[-1][1:], 16)
            except ValueError as exc:
                raise TraceFormatError(f"malformed meta row: {line!r}") from exc
            if crc32(body.encode()) != expected:
                raise TraceFormatError(f"meta row CRC mismatch: {line!r}")
            parts = parts[:-1]
        digest: FrameDigest | None = None
        if len(parts) == len(META_COLUMNS) + 1:
            # Optional digest suffix token (``d<version>=...``); a token
            # from a *newer* digest version decodes to None and the chunk
            # falls back to inflation.
            try:
                digest = decode_digest(parts[-1])
            except ValueError as exc:
                raise TraceFormatError(f"malformed meta row: {line!r}") from exc
            parts = parts[:-1]
        if len(parts) != len(META_COLUMNS):
            raise TraceFormatError(f"malformed meta row: {line!r}")
        try:
            ppid = -1 if parts[1] == "-" else int(parts[1])
            return cls(
                pid=int(parts[0]),
                ppid=ppid,
                bid=int(parts[2]),
                offset=int(parts[3]),
                span=int(parts[4]),
                level=int(parts[5]),
                data_begin=int(parts[6]),
                size=int(parts[7]),
                digest=digest,
            )
        except ValueError as exc:
            raise TraceFormatError(f"malformed meta row: {line!r}") from exc


def format_meta_file(rows: list[MetaRow], *, durable: bool = False) -> str:
    """Render a meta file (header comment + rows)."""
    lines = ["# " + " ".join(META_COLUMNS)]
    if durable:
        lines.extend(r.format_durable() for r in rows)
    else:
        lines.extend(r.format() for r in rows)
    return "\n".join(lines) + "\n"


def parse_meta_file(text: str) -> list[MetaRow]:
    """Parse a meta file, skipping comments and blank lines (fail-fast)."""
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        rows.append(MetaRow.parse(line))
    return rows


def parse_meta_file_salvage(text: str) -> tuple[list[MetaRow], int]:
    """Lenient meta parse: drop invalid rows instead of raising.

    Each row is validated independently (the durable format checksums
    per line), so a deleted or torn record in the middle only loses that
    record, not everything after it.  Returns ``(rows, dropped)``.
    """
    rows: list[MetaRow] = []
    dropped = 0
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            rows.append(MetaRow.parse(line))
        except TraceFormatError:
            dropped += 1
    return rows, dropped


# -- checksummed JSON journal lines (regions.jsonl) ---------------------------


def journal_line(payload: dict) -> str:
    """One append-atomic journal record: JSON body + ``*crc32`` suffix."""
    body = json.dumps(payload, sort_keys=True)
    return f"{body} *{crc32(body.encode()):08x}\n"


def parse_journal(text: str, *, salvage: bool = False) -> list[dict]:
    """Parse a journal file; torn/invalid lines raise (strict) or drop."""
    records: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            star = line.rindex("*")
            body = line[:star].rstrip()
            if crc32(body.encode()) != int(line[star + 1 :], 16):
                raise ValueError("journal line CRC mismatch")
            payload = json.loads(body)
            if not isinstance(payload, dict):
                raise ValueError("journal line is not an object")
        except ValueError as exc:
            if salvage:
                continue
            raise TraceFormatError(f"malformed journal line: {line!r}") from exc
        records.append(payload)
    return records


def log_name(gid: int) -> str:
    return f"thread_{gid}.log"


def meta_name(gid: int) -> str:
    return f"thread_{gid}.meta"
