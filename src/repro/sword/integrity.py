"""Structured accounting of what salvage-mode analysis recovered and lost.

SWORD's production story requires the offline phase to extract value from
whatever trace survived an ugly end (OOM kill mid-flush, full disk, node
failure).  The salvage reader truncates each thread log at its first torn
frame and reconciles meta records against the recovered bytes; this module
is the ledger of those decisions, attached to
:class:`~repro.offline.engine.AnalysisResult` and surfaced through the CLI
(``--salvage`` + the JSON ``integrity`` key).

The headline guarantee the report documents: salvage analysis *completes*
for any fault point, and because it only ever removes events from
consideration, its race set is a subset of the fault-free run's
(``races_possibly_missed`` flags when that subset may be proper).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class ThreadIntegrity:
    """Per-thread salvage accounting for one ``thread_<gid>.log``/``.meta``."""

    gid: int
    #: Committed frames that passed every checksum.
    chunks_recovered: int = 0
    #: Frames rejected (torn, CRC mismatch, bad commit marker).  The log
    #: is truncated at the first such frame, so this counts the frames
    #: *identified* in the rejected tail, usually 1.
    chunks_dropped: int = 0
    #: Uncompressed bytes served to the analysis.
    bytes_recovered: int = 0
    #: Log-file bytes past the truncation point (compressed coordinates).
    bytes_dropped: int = 0
    #: Meta rows kept after reconciliation against the recovered bytes.
    rows_recovered: int = 0
    #: Meta rows dropped (torn line, bad row CRC, or pointing past the
    #: recovered extent).
    rows_dropped: int = 0
    #: Human-readable descriptions of each defect found.
    errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.chunks_dropped or self.bytes_dropped or self.rows_dropped)

    def reset(self) -> None:
        """Zero the ledger before a (re-)scan.

        A salvage scan of unchanged files always reaches the same
        verdicts, so re-opening a thread's reader resets-and-refills
        rather than double-counting.
        """
        self.chunks_recovered = 0
        self.chunks_dropped = 0
        self.bytes_recovered = 0
        self.bytes_dropped = 0
        self.rows_recovered = 0
        self.rows_dropped = 0
        self.errors.clear()

    def to_json(self) -> dict:
        return {
            "gid": self.gid,
            "chunks_recovered": self.chunks_recovered,
            "chunks_dropped": self.chunks_dropped,
            "bytes_recovered": self.bytes_recovered,
            "bytes_dropped": self.bytes_dropped,
            "rows_recovered": self.rows_recovered,
            "rows_dropped": self.rows_dropped,
            "errors": list(self.errors),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ThreadIntegrity":
        return cls(
            gid=int(payload["gid"]),
            chunks_recovered=int(payload.get("chunks_recovered", 0)),
            chunks_dropped=int(payload.get("chunks_dropped", 0)),
            bytes_recovered=int(payload.get("bytes_recovered", 0)),
            bytes_dropped=int(payload.get("bytes_dropped", 0)),
            rows_recovered=int(payload.get("rows_recovered", 0)),
            rows_dropped=int(payload.get("rows_dropped", 0)),
            errors=list(payload.get("errors", [])),
        )


@dataclass(slots=True)
class IntegrityReport:
    """Trace-wide salvage outcome (the ``integrity`` key of results)."""

    #: ``"strict"`` or ``"salvage"``.
    mode: str = "strict"
    threads: dict[int, ThreadIntegrity] = field(default_factory=dict)
    #: Intervals the planner had to skip (unknown region, no surviving
    #: chunks) plus pairs the salvage driver abandoned mid-analysis.
    intervals_skipped: int = 0
    pairs_skipped: int = 0
    #: Run-wide files that were missing or unusable (manifest, regions…).
    missing_files: list[str] = field(default_factory=list)
    #: Static verdict tables rejected (truncated/corrupt payload).  The
    #: analysis falls back to UNKNOWN-everything — no pair skipped, no
    #: report injected — so elided DEFINITE_RACE witnesses may be lost.
    verdicts_dropped: int = 0
    #: Free-form reconstruction notes (e.g. "regions recovered from journal").
    notes: list[str] = field(default_factory=list)

    def thread(self, gid: int) -> ThreadIntegrity:
        """The (created-on-demand) per-thread ledger for ``gid``."""
        entry = self.threads.get(gid)
        if entry is None:
            entry = ThreadIntegrity(gid=gid)
            self.threads[gid] = entry
        return entry

    @property
    def clean(self) -> bool:
        """True when nothing at all was lost (byte-identical to strict)."""
        return (
            not self.intervals_skipped
            and not self.pairs_skipped
            and not self.missing_files
            and not self.verdicts_dropped
            and all(t.clean for t in self.threads.values())
        )

    @property
    def races_possibly_missed(self) -> bool:
        """True when the recovered trace may under-report races."""
        return not self.clean

    @property
    def chunks_dropped(self) -> int:
        return sum(t.chunks_dropped for t in self.threads.values())

    @property
    def rows_dropped(self) -> int:
        return sum(t.rows_dropped for t in self.threads.values())

    def note(self, message: str) -> None:
        self.notes.append(message)

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "clean": self.clean,
            "races_possibly_missed": self.races_possibly_missed,
            "intervals_skipped": self.intervals_skipped,
            "pairs_skipped": self.pairs_skipped,
            "missing_files": list(self.missing_files),
            "verdicts_dropped": self.verdicts_dropped,
            "notes": list(self.notes),
            "threads": {
                str(gid): t.to_json() for gid, t in sorted(self.threads.items())
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "IntegrityReport":
        report = cls(
            mode=str(payload.get("mode", "strict")),
            intervals_skipped=int(payload.get("intervals_skipped", 0)),
            pairs_skipped=int(payload.get("pairs_skipped", 0)),
            missing_files=list(payload.get("missing_files", [])),
            verdicts_dropped=int(payload.get("verdicts_dropped", 0)),
            notes=list(payload.get("notes", [])),
        )
        for key, entry in payload.get("threads", {}).items():
            report.threads[int(key)] = ThreadIntegrity.from_json(entry)
        return report

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        if self.clean:
            return "integrity: clean (no loss detected)"
        return (
            f"integrity: salvaged with loss — {self.chunks_dropped} chunk(s) "
            f"and {self.rows_dropped} meta row(s) dropped, "
            f"{self.intervals_skipped} interval(s) and "
            f"{self.pairs_skipped} pair(s) skipped; "
            f"races may be under-reported"
        )
