"""Frame-resident access digests: collection-time pair-pruning summaries.

A :class:`FrameDigest` summarises the access footprint of one trace chunk
— the byte bounding box, read/write/atomic composition, pc range, and a
residue-class description of every touched address — computed *while the
frame is still an uncompressed record array* in the logger's buffer.  The
digest rides the chunk's Table-I meta row as a versioned ``d1=...`` token
(covered by the row's durable CRC), so the offline engine can decide most
concurrent interval pairs without ever inflating the compressed payload
bytes (cf. Kini, Mathur & Viswanathan, "Data Race Detection on
Compressed Traces": detection directly over the compressed form).

The field layout is attribute-compatible with
:class:`repro.itree.digest.TreeDigest` (``nodes``/``lo``/``hi``/
``writes``/``reads``/``all_atomic``/``gcd``/``width``), so
:func:`repro.itree.digest.digests_may_race` applies unchanged — the same
soundness argument holds:

* ``gcd`` divides every bulk stride *and* every access's low-endpoint
  offset from ``lo``, hence every touched byte is ``lo + k (mod gcd)``
  for some ``k in [0, width)``;
* folding two digests reduces ``gcd`` by ``|lo_a - lo_b|`` as well, which
  re-anchors both windows onto the combined minimum without widening the
  residue claim.

Digest-less rows (v1 traces, pre-digest v2 traces, tokens from a *newer*
digest version) simply decode to ``digest=None`` and the engine falls
back to inflation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..common.events import FLAG_ATOMIC, FLAG_WRITE, KIND_ACCESS

#: Version prefix of the meta-row token (``d<version>=...``).  Unknown
#: *newer* versions decode to None (fallback to inflation); same-version
#: tokens that fail to parse are malformed rows.
FRAME_DIGEST_VERSION = 1

#: Field order of the comma-separated token payload.
_TOKEN_FIELDS = 11


@dataclass(frozen=True, slots=True)
class FrameDigest:
    """O(1) access summary of one trace chunk (or a fold of several).

    ``nodes`` counts access records (the name matches
    :class:`~repro.itree.digest.TreeDigest` so the shared
    ``digests_may_race`` filter duck-types over both).
    """

    #: All records in the chunk, including structural events.
    events: int
    #: Access records summarised (0 = no accesses; cannot race).
    nodes: int
    writes: int
    reads: int
    #: True when every access is atomic (vacuously true at ``nodes == 0``).
    all_atomic: bool
    #: Byte bounding box, ``hi`` inclusive (undefined when ``nodes == 0``).
    lo: int
    hi: int
    #: Residue class: every touched byte is ``lo + k (mod gcd)`` for some
    #: ``k in [0, width)``; ``gcd == 0`` collapses to the bounding box.
    gcd: int
    width: int
    #: Program-counter range of the access sites (diagnostics/fold only).
    pc_lo: int
    pc_hi: int

    # -- construction ----------------------------------------------------------

    @classmethod
    def empty(cls, events: int = 0) -> "FrameDigest":
        return cls(
            events=events, nodes=0, writes=0, reads=0, all_atomic=True,
            lo=0, hi=0, gcd=0, width=0, pc_lo=0, pc_hi=0,
        )

    @classmethod
    def from_records(cls, records: np.ndarray) -> "FrameDigest":
        """Digest one EVENT_DTYPE record array in a few vector passes."""
        events = int(records.shape[0])
        acc = records[records["kind"] == KIND_ACCESS]
        n = int(acc.shape[0])
        if n == 0:
            return cls.empty(events)
        addr = acc["addr"].astype(np.int64)
        count = acc["count"].astype(np.int64)
        stride = acc["stride"].astype(np.int64)
        size = acc["size"].astype(np.int64)
        last = addr + (count - 1) * stride
        low = np.minimum(addr, last)
        high = np.maximum(addr, last) + size - 1
        lo = int(low.min())
        flags = acc["flags"]
        writes = int(np.count_nonzero(flags & FLAG_WRITE))
        # gcd over bulk strides, then over every low-endpoint offset from
        # the minimum (the residue-window soundness construction).
        bulk = np.abs(stride[count > 1])
        g = int(np.gcd.reduce(bulk)) if bulk.size else 0
        offsets = low - lo
        if offsets.size:
            g = math.gcd(g, int(np.gcd.reduce(offsets)))
        pc = acc["pc"]
        return cls(
            events=events,
            nodes=n,
            writes=writes,
            reads=n - writes,
            all_atomic=bool(np.all(flags & FLAG_ATOMIC)),
            lo=lo,
            hi=int(high.max()),
            gcd=g,
            width=int(size.max()),
            pc_lo=int(pc.min()),
            pc_hi=int(pc.max()),
        )

    def fold(self, other: "FrameDigest") -> "FrameDigest":
        """Combine two digests into one covering both chunks.

        Sound by the same residue argument: the combined ``gcd`` also
        divides ``|lo_a - lo_b|``, so both windows re-anchor onto the
        combined minimum ``lo`` without losing any congruence claim.
        """
        if other.nodes == 0:
            return self._with_events(self.events + other.events)
        if self.nodes == 0:
            return other._with_events(self.events + other.events)
        return FrameDigest(
            events=self.events + other.events,
            nodes=self.nodes + other.nodes,
            writes=self.writes + other.writes,
            reads=self.reads + other.reads,
            all_atomic=self.all_atomic and other.all_atomic,
            lo=min(self.lo, other.lo),
            hi=max(self.hi, other.hi),
            gcd=math.gcd(self.gcd, other.gcd, abs(self.lo - other.lo)),
            width=max(self.width, other.width),
            pc_lo=min(self.pc_lo, other.pc_lo),
            pc_hi=max(self.pc_hi, other.pc_hi),
        )

    def _with_events(self, events: int) -> "FrameDigest":
        if events == self.events:
            return self
        return FrameDigest(
            events=events, nodes=self.nodes, writes=self.writes,
            reads=self.reads, all_atomic=self.all_atomic, lo=self.lo,
            hi=self.hi, gcd=self.gcd, width=self.width, pc_lo=self.pc_lo,
            pc_hi=self.pc_hi,
        )

    # -- meta-row token --------------------------------------------------------

    def encode(self) -> str:
        """The whitespace-free meta-row token (``d1=...``)."""
        return (
            f"d{FRAME_DIGEST_VERSION}="
            f"{self.events},{self.nodes},{self.writes},{self.reads},"
            f"{1 if self.all_atomic else 0},{self.lo},{self.hi},"
            f"{self.gcd},{self.width},{self.pc_lo},{self.pc_hi}"
        )


def fold_digests(digests) -> "FrameDigest | None":
    """Fold an iterable of per-chunk digests; None if any is missing."""
    total: FrameDigest | None = None
    for digest in digests:
        if digest is None:
            return None
        total = digest if total is None else total.fold(digest)
    return total


def decode_digest(token: str) -> "FrameDigest | None":
    """Parse one ``d<version>=`` meta-row token.

    Returns None for tokens written by a *newer* digest version (the
    reader falls back to inflation — forward compatibility); raises
    :class:`ValueError` for anything malformed at a known version.
    """
    head, sep, body = token.partition("=")
    if not sep or len(head) < 2 or head[0] != "d":
        raise ValueError(f"not a digest token: {token!r}")
    version = int(head[1:])
    if version > FRAME_DIGEST_VERSION:
        return None
    parts = body.split(",")
    if len(parts) != _TOKEN_FIELDS:
        raise ValueError(f"digest token has {len(parts)} fields: {token!r}")
    values = [int(p) for p in parts]
    return FrameDigest(
        events=values[0],
        nodes=values[1],
        writes=values[2],
        reads=values[3],
        all_atomic=bool(values[4]),
        lo=values[5],
        hi=values[6],
        gcd=values[7],
        width=values[8],
        pc_lo=values[9],
        pc_hi=values[10],
    )
