"""Streaming readers for SWORD trace directories.

The offline phase must handle log files much larger than memory (the paper:
"the size of a single log file can be dozens of gigabytes ... we employ a
streaming algorithm that reads access information from log files in small
chunks").  The reader therefore:

* builds a block index by scanning the frame headers (seeking over
  payloads — no decompression);
* serves byte ranges in *uncompressed stream coordinates* (what Table-I
  ``data_begin``/``size`` reference) by decompressing only the overlapping
  blocks, one at a time, yielding record batches.

Integrity modes (the production-hardening story):

* ``strict`` (default) — any torn frame, checksum mismatch, or malformed
  meta row fails fast with a :class:`TraceFormatError` naming the thread,
  block, and byte offset;
* ``salvage`` — each thread log is verified frame-by-frame (header CRC,
  payload CRC, commit marker) and truncated at the first torn frame; meta
  rows are validated independently and reconciled against the recovered
  bytes.  Everything dropped is accounted in a
  :class:`~repro.sword.integrity.ThreadIntegrity` ledger, and the
  surviving prefix is served normally — analysis completes on whatever
  data a crashed run left behind.

Format v1 logs (unchecksummed 24-byte headers) are auto-detected per block
and read transparently; the first v1 block seen in a process emits a
one-time :class:`UserWarning`.
"""

from __future__ import annotations

import bisect
import json
import os
import re
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..common.deprecation import warn_once
from ..common.errors import CodecError, TraceFormatError
from ..common.events import EVENT_BYTES, EVENT_DTYPE
from ..obs import get_obs
from ..omp.mutexset import MutexSetTable
from ..osl.concurrency import IntervalLabel, IntervalPair
from .compression import by_id, filters
from .digest import FrameDigest
from ..static.table import STATIC_VERDICTS_KEY
from ..tasking.graph import TaskGraph
from .integrity import IntegrityReport, ThreadIntegrity
from .traceformat import (
    BLOCK_HEADER_BYTES,
    BLOCK_MAGIC,
    COMMIT_TRAILER_BYTES,
    FRAME_HEADER_BYTES,
    FRAME_MAGIC,
    MANIFEST_NAME,
    MUTEXSETS_NAME,
    REGIONS_JOURNAL_NAME,
    REGIONS_NAME,
    TASKS_NAME,
    MetaRow,
    check_commit_trailer,
    crc32,
    log_name,
    meta_name,
    parse_journal,
    parse_meta_file,
    parse_meta_file_salvage,
    unpack_block_header,
    unpack_frame_header,
)

INTEGRITY_MODES = ("strict", "salvage")

_v1_warned = False


def _warn_v1_once(path: Path) -> None:
    global _v1_warned
    if not _v1_warned:
        _v1_warned = True
        warnings.warn(
            f"{path}: unframed v1 trace blocks (no checksums); reading in "
            f"compatibility mode — corruption in v1 payloads is undetectable",
            UserWarning,
            stacklevel=3,
        )


def _check_integrity_mode(integrity: str) -> None:
    if integrity not in INTEGRITY_MODES:
        raise ValueError(
            f"unknown integrity mode {integrity!r}; expected one of "
            f"{INTEGRITY_MODES}"
        )


@dataclass(frozen=True, slots=True)
class _BlockRef:
    """Index entry: where one compressed block lives."""

    uncompressed_offset: int
    file_offset: int  # of the payload (past the header)
    compressed_size: int
    uncompressed_size: int
    codec_id: int
    payload_crc: int | None  # None for v1 blocks
    filter_id: int  # preconditioning filter (0 = none)


@dataclass(frozen=True, slots=True)
class FrameSpan:
    """Physical layout of one committed frame inside a log file.

    The fault-injection harness derives its kill points from these spans
    instead of re-parsing raw frame bytes itself.
    """

    start: int  # file offset of the frame header
    header_bytes: int
    payload_bytes: int  # compressed payload size
    trailer_bytes: int  # commit trailer (0 for v1 blocks)
    version: int  # trace format version of this frame (1 or 2)

    @property
    def end(self) -> int:
        """File offset just past the frame (its boundary kill point)."""
        return self.start + self.header_bytes + self.payload_bytes + self.trailer_bytes


class FrameView:
    """Lazy handle on one data chunk of a thread's log.

    The redesigned reader surface: a view exposes the chunk's
    collection-time :attr:`digest` without touching the compressed
    payload, and inflates the events only when :meth:`events` /
    :meth:`iter_events` is called.  ``events()`` memoizes the inflated
    array for repeated access; ``iter_events()`` streams block-by-block
    with bounded memory (and reuses the memoized array when present).

    Integrity semantics are the owning reader's: a strict reader raises
    on CRC mismatch at inflation time, a salvage reader only ever serves
    chunks its reconciliation pass admitted.
    """

    __slots__ = ("reader", "begin", "size", "row", "_events")

    def __init__(
        self,
        reader: "ThreadTraceReader",
        begin: int,
        size: int,
        row: MetaRow | None = None,
    ) -> None:
        self.reader = reader
        self.begin = begin
        self.size = size
        self.row = row
        self._events: np.ndarray | None = None

    @property
    def gid(self) -> int:
        return self.reader.gid

    @property
    def nbytes(self) -> int:
        """Uncompressed extent of the chunk (what inflating would cost)."""
        return self.size

    @property
    def digest(self) -> FrameDigest | None:
        """The frame-resident access summary; None forces inflation."""
        return self.row.digest if self.row is not None else None

    @property
    def inflated(self) -> bool:
        return self._events is not None

    def events(self) -> np.ndarray:
        """Inflate (once) and return the chunk's records."""
        if self._events is None:
            self._events = self.reader._read_range(self.begin, self.size)
        return self._events

    def iter_events(self):
        """Stream the chunk's records block-by-block (bounded memory)."""
        if self._events is not None:
            if self._events.shape[0]:
                yield self._events
            return
        yield from self.reader._iter_range(self.begin, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrameView(gid={self.reader.gid}, begin={self.begin}, "
            f"size={self.size}, digest={'yes' if self.digest else 'no'})"
        )


class ThreadTraceReader:
    """Random/streaming access to one thread's log + meta files.

    In ``live`` mode the log is still being appended to by the online
    logger: the meta file may not exist yet (chunk rows arrive over the
    flush-event bus instead), an incomplete trailing block is tolerated,
    and :meth:`refresh` re-scans the tail to index newly flushed blocks.

    In ``salvage`` mode defects truncate instead of raising, and the
    reader's :attr:`integrity` ledger records everything dropped.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        gid: int,
        *,
        live: bool = False,
        integrity: str = "strict",
        report: ThreadIntegrity | None = None,
    ) -> None:
        _check_integrity_mode(integrity)
        directory = Path(directory)
        self.gid = gid
        self.live = live
        self.integrity_mode = integrity
        self.integrity = report if report is not None else ThreadIntegrity(gid=gid)
        if integrity == "salvage":
            # Rescanning unchanged files reaches identical verdicts, so a
            # second reader refills the shared ledger instead of
            # double-counting.
            self.integrity.reset()
        self.log_path = directory / log_name(gid)
        self.meta_path = directory / meta_name(gid)
        self._blocks: list[_BlockRef] = []
        self._offsets: list[int] = []
        self._scan_pos = 0
        self._truncated = False
        self._index()
        self.rows: list[MetaRow] = self._load_rows()
        self._file = open(self.log_path, "rb")
        # One-block decompression cache (ranges are read in ascending order).
        self._cached_block: int = -1
        self._cached_data: bytes = b""
        #: Uncompressed bytes this reader actually decompressed — the
        #: lazy-inflation accounting the engine folds into its stats.
        self.bytes_inflated = 0
        self._row_index: dict[tuple[int, int], MetaRow] | None = None

    @property
    def salvage(self) -> bool:
        return self.integrity_mode == "salvage"

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "ThreadTraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- block index ----------------------------------------------------------

    def _defect(self, pos: int, message: str) -> bool:
        """Handle one torn/corrupt frame at file offset ``pos``.

        Salvage truncates (returns True = stop scanning); strict raises a
        precise error naming thread, block, and offset.
        """
        detail = (
            f"{self.log_path}: thread {self.gid}, "
            f"block {len(self._blocks)} at byte {pos}: {message}"
        )
        if self.salvage:
            self._truncated = True
            self.integrity.chunks_dropped += 1
            self.integrity.errors.append(detail)
            get_obs().registry.counter(
                "sword.chunks_corrupt",
                "frames rejected by the salvage reader",
            ).inc()
            return True
        raise TraceFormatError(detail)

    def _index(self) -> None:
        """Scan frames from the last indexed position to the file end."""
        pos = self._scan_pos
        size = self.log_path.stat().st_size
        with open(self.log_path, "rb") as fh:
            while pos < size and not self._truncated:
                fh.seek(pos)
                magic = fh.read(4)
                if magic == FRAME_MAGIC:
                    advance = self._index_frame(fh, pos, size)
                elif magic == BLOCK_MAGIC:
                    _warn_v1_once(self.log_path)
                    advance = self._index_v1_block(fh, pos, size)
                elif len(magic) < 4 or pos + BLOCK_HEADER_BYTES > size:
                    if self.live:
                        break  # header still being written
                    if self._defect(pos, "truncated frame header"):
                        break
                    break
                else:
                    if self._defect(pos, f"bad frame magic {magic!r}"):
                        break
                    break
                if advance is None:
                    break  # live tail, or salvage truncation recorded
                pos = advance
        self._scan_pos = pos
        if self.salvage:
            self.integrity.chunks_recovered = len(self._blocks)
            self.integrity.bytes_recovered = self.uncompressed_bytes
            self.integrity.bytes_dropped = max(0, size - pos)

    def _index_frame(self, fh, pos: int, size: int) -> int | None:
        """Index one v2 CRC-framed chunk; returns the next scan position."""
        if pos + FRAME_HEADER_BYTES > size:
            if self.live:
                return None
            self._defect(pos, "truncated frame header")
            return None
        fh.seek(pos)
        try:
            header = unpack_frame_header(fh.read(FRAME_HEADER_BYTES))
        except TraceFormatError as exc:
            if self.live:
                return None  # header bytes still in flight
            self._defect(pos, str(exc))
            return None
        end = (
            pos + FRAME_HEADER_BYTES + header.compressed_size
            + COMMIT_TRAILER_BYTES
        )
        if end > size:
            if self.live:
                return None  # payload/commit not fully written yet
            self._defect(pos, "torn frame (payload or commit marker missing)")
            return None
        fh.seek(pos + FRAME_HEADER_BYTES + header.compressed_size)
        trailer = fh.read(COMMIT_TRAILER_BYTES)
        if not check_commit_trailer(trailer, header.payload_crc):
            if self.live:
                return None
            self._defect(pos, "uncommitted frame (bad commit marker)")
            return None
        if self.salvage:
            # Salvage pays one full read per block up front: a payload
            # whose CRC fails truncates the log here, before any meta
            # row referencing it is admitted.
            fh.seek(pos + FRAME_HEADER_BYTES)
            payload = fh.read(header.compressed_size)
            if crc32(payload) != header.payload_crc:
                self._defect(pos, "payload CRC mismatch")
                return None
        self._admit(header, pos + FRAME_HEADER_BYTES)
        return end

    def _index_v1_block(self, fh, pos: int, size: int) -> int | None:
        """Index one legacy unchecksummed v1 block."""
        fh.seek(pos)
        header = unpack_block_header(fh.read(BLOCK_HEADER_BYTES))
        end = pos + BLOCK_HEADER_BYTES + header.compressed_size
        if end > size:
            if self.live:
                return None
            self._defect(pos, "torn v1 block (payload missing)")
            return None
        self._admit(header, pos + BLOCK_HEADER_BYTES)
        return end

    def _admit(self, header, payload_offset: int) -> None:
        ref = _BlockRef(
            uncompressed_offset=header.uncompressed_offset,
            file_offset=payload_offset,
            compressed_size=header.compressed_size,
            uncompressed_size=header.uncompressed_size,
            codec_id=header.codec_id,
            payload_crc=header.payload_crc,
            filter_id=header.filter_id,
        )
        self._blocks.append(ref)
        self._offsets.append(ref.uncompressed_offset)

    def refresh(self) -> None:
        """Index blocks appended since construction (live mode)."""
        self._index()

    # -- meta rows ------------------------------------------------------------

    def _load_rows(self) -> list[MetaRow]:
        if not self.meta_path.exists():
            if self.live:
                return []
            if self.salvage:
                self.integrity.errors.append(f"{self.meta_path}: missing")
                return []
            raise TraceFormatError(f"{self.meta_path}: missing meta file")
        text = self.meta_path.read_text()
        if not self.salvage:
            return parse_meta_file(text)
        rows, dropped = parse_meta_file_salvage(text)
        reconciled = self._reconcile(rows)
        self.integrity.rows_dropped += dropped
        if dropped:
            self.integrity.errors.append(
                f"{self.meta_path}: {dropped} malformed/torn row(s) dropped"
            )
        self.integrity.rows_recovered = len(reconciled)
        return reconciled

    def _reconcile(self, rows: list[MetaRow]) -> list[MetaRow]:
        """Keep only meta rows fully covered by the recovered bytes.

        Rows pointing past the truncation point, misaligned rows, and
        exact duplicates (the duplicate-record fault) are dropped and
        accounted; what remains is guaranteed readable.
        """
        extent = self.uncompressed_bytes
        kept: list[MetaRow] = []
        seen: set[MetaRow] = set()
        for row in rows:
            if row in seen:
                self.integrity.rows_dropped += 1
                self.integrity.errors.append(
                    f"{self.meta_path}: duplicate row dropped: {row.format()}"
                )
                continue
            if (
                row.data_begin % EVENT_BYTES
                or row.size % EVENT_BYTES
                or row.size < 0
                or row.data_begin + row.size > extent
            ):
                self.integrity.rows_dropped += 1
                self.integrity.errors.append(
                    f"{self.meta_path}: row beyond recovered data "
                    f"(or misaligned) dropped: {row.format()}"
                )
                continue
            seen.add(row)
            kept.append(row)
        return kept

    # -- byte ranges ----------------------------------------------------------

    @property
    def uncompressed_bytes(self) -> int:
        if not self._blocks:
            return 0
        last = self._blocks[-1]
        return last.uncompressed_offset + last.uncompressed_size

    def _block_bytes(self, i: int) -> bytes:
        if i == self._cached_block:
            return self._cached_data
        ref = self._blocks[i]
        self._file.seek(ref.file_offset)
        payload = self._file.read(ref.compressed_size)
        if ref.payload_crc is not None and crc32(payload) != ref.payload_crc:
            raise TraceFormatError(
                f"{self.log_path}: thread {self.gid}, block {i} at byte "
                f"{ref.file_offset}: payload CRC mismatch"
            )
        data = by_id(ref.codec_id).decompress(payload, ref.uncompressed_size)
        if ref.filter_id:
            data = filters.decode(ref.filter_id, data)
        self.bytes_inflated += ref.uncompressed_size
        self._cached_block = i
        self._cached_data = data
        return data

    def _read_range(self, begin: int, size: int) -> np.ndarray:
        """Materialise one chunk ``[begin, begin+size)`` as a record array."""
        parts = list(self._iter_range(begin, size))
        if not parts:
            return np.empty(0, dtype=EVENT_DTYPE)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _iter_range(self, begin: int, size: int) -> Iterator[np.ndarray]:
        """Stream one chunk block-by-block (bounded memory)."""
        if size == 0:
            return
        if begin % EVENT_BYTES or size % EVENT_BYTES:
            raise TraceFormatError("chunk not record-aligned")
        end = begin + size
        if self.live and end > self.uncompressed_bytes:
            self.refresh()  # the logger may have flushed more blocks
        if end > self.uncompressed_bytes:
            raise TraceFormatError(
                f"chunk [{begin}, {end}) beyond log end {self.uncompressed_bytes}"
            )
        i = bisect.bisect_right(self._offsets, begin) - 1
        pos = begin
        while pos < end:
            ref = self._blocks[i]
            data = self._block_bytes(i)
            lo = pos - ref.uncompressed_offset
            hi = min(end - ref.uncompressed_offset, ref.uncompressed_size)
            chunk = data[lo:hi]
            yield np.frombuffer(chunk, dtype=EVENT_DTYPE)
            pos = ref.uncompressed_offset + hi
            i += 1

    # -- frame views ----------------------------------------------------------

    def frame_at(self, begin: int, size: int) -> FrameView:
        """The lazy view of chunk ``[begin, begin+size)``.

        When a meta row for that exact extent exists its collection-time
        digest rides along; extents with no matching row (e.g. ad-hoc
        sub-ranges) get a digest-less view that always inflates.
        """
        if self._row_index is None:
            self._row_index = {
                (row.data_begin, row.size): row for row in self.rows
            }
        row = self._row_index.get((begin, size))
        return FrameView(self, begin, size, row)

    def frames(self) -> list[FrameView]:
        """Lazy views of every chunk the meta file describes, in order."""
        return [FrameView(self, row.data_begin, row.size, row) for row in self.rows]

    def frame_spans(self) -> list[FrameSpan]:
        """Physical frame layout of the log file (headers, payloads,
        trailers) for tooling that reasons about on-disk byte offsets."""
        spans: list[FrameSpan] = []
        for ref in self._blocks:
            if ref.payload_crc is not None:
                spans.append(
                    FrameSpan(
                        start=ref.file_offset - FRAME_HEADER_BYTES,
                        header_bytes=FRAME_HEADER_BYTES,
                        payload_bytes=ref.compressed_size,
                        trailer_bytes=COMMIT_TRAILER_BYTES,
                        version=2,
                    )
                )
            else:
                spans.append(
                    FrameSpan(
                        start=ref.file_offset - BLOCK_HEADER_BYTES,
                        header_bytes=BLOCK_HEADER_BYTES,
                        payload_bytes=ref.compressed_size,
                        trailer_bytes=0,
                        version=1,
                    )
                )
        return spans

    # -- deprecated eager surface ----------------------------------------------

    def read_range(self, begin: int, size: int) -> np.ndarray:
        """Deprecated eager read; use :meth:`frame_at` + ``events()``."""
        warn_once(
            "ThreadTraceReader.read_range",
            "ThreadTraceReader.read_range() is deprecated; use "
            "frame_at(begin, size).events() for lazy, digest-aware access",
        )
        return self._read_range(begin, size)

    def iter_range(self, begin: int, size: int) -> Iterator[np.ndarray]:
        """Deprecated eager iteration; use ``frame_at(...).iter_events()``."""
        warn_once(
            "ThreadTraceReader.iter_range",
            "ThreadTraceReader.iter_range() is deprecated; use "
            "frame_at(begin, size).iter_events() for lazy, digest-aware "
            "access",
        )
        return self._iter_range(begin, size)

    def read_chunk(self, row: MetaRow) -> np.ndarray:
        """Deprecated eager read of a meta row's chunk."""
        warn_once(
            "ThreadTraceReader.read_chunk",
            "ThreadTraceReader.read_chunk() is deprecated; use "
            "frame_at(row.data_begin, row.size).events()",
        )
        return self._read_range(row.data_begin, row.size)


def build_interval_label(
    regions: dict, pid: int, slot: int, bid: int
) -> IntervalLabel:
    """Reconstruct a barrier-interval label from a regions table.

    ``regions`` maps region pid to its fork-position record (``ppid``,
    ``parent_slot``, ``parent_bid``, ``span``) — either the parsed
    ``regions.json`` of a closed trace or the online logger's live table.
    """

    def span_of(p: int) -> int:
        return int(regions[p]["span"])

    pairs = [IntervalPair(region=pid, slot=slot, bid=bid, span=span_of(pid))]
    info = regions[pid]
    # Region ids start at 1; ppid <= 0 marks a top-level region.
    while info["ppid"] > 0:
        ppid = int(info["ppid"])
        pairs.append(
            IntervalPair(
                region=ppid,
                slot=int(info["parent_slot"]),
                bid=int(info["parent_bid"]),
                span=span_of(ppid),
            )
        )
        info = regions[ppid]
    return tuple(reversed(pairs))


class _TolerantMutexSetTable(MutexSetTable):
    """Mutex-set table that treats unknown ids conservatively.

    A kill between the last table snapshot and the end of the run can
    leave logged events referencing msids the recovered table does not
    know.  Answering "not disjoint" for those suppresses the race (an
    under-report), which preserves the salvage subset guarantee; the
    alternative — guessing "disjoint" — could invent races a clean run
    never finds.
    """

    def disjoint(self, msid_a: int, msid_b: int) -> bool:
        try:
            return super().disjoint(msid_a, msid_b)
        except KeyError:
            return False

    @classmethod
    def wrap(cls, table: MutexSetTable) -> "_TolerantMutexSetTable":
        tolerant = cls()
        with table._lock:
            tolerant._by_id = dict(table._by_id)
            tolerant._by_set = dict(table._by_set)
            tolerant._next = table._next
        return tolerant


_LOG_RE = re.compile(r"^thread_(\d+)\.log$")


class TraceDir:
    """A complete SWORD trace directory (one program run).

    ``integrity="salvage"`` opens traces a crashed run left behind:
    missing or corrupt run-wide files are reconstructed where possible
    (thread list from the log files on disk, regions from the durable
    journal) and every repair is recorded in :attr:`integrity`.
    """

    def __init__(
        self, path: str | os.PathLike, *, integrity: str = "strict"
    ) -> None:
        _check_integrity_mode(integrity)
        self.path = Path(path)
        self.integrity_mode = integrity
        self.integrity = IntegrityReport(mode=integrity)
        salvage = integrity == "salvage"
        self.manifest = self._load_manifest(salvage)
        self.static_verdicts = self._load_static_verdicts(salvage)
        self.regions: dict[int, dict] = self._load_regions(salvage)
        self.mutexsets = self._load_mutexsets(salvage)
        tasks_path = self.path / TASKS_NAME
        if tasks_path.exists():
            try:
                self.task_graph = TaskGraph.from_json(
                    json.loads(tasks_path.read_text())
                )
            except (ValueError, KeyError, TypeError):
                if not salvage:
                    raise
                self.integrity.missing_files.append(TASKS_NAME)
                self.integrity.note(f"{TASKS_NAME}: corrupt, task graph ignored")
                self.task_graph = TaskGraph()
        else:  # traces from before the tasking extension
            self.task_graph = TaskGraph()
        self.thread_gids: list[int] = self._load_thread_gids(salvage)

    # -- salvage-aware loading -------------------------------------------------

    def _glob_thread_gids(self) -> list[int]:
        gids = []
        for entry in self.path.iterdir():
            match = _LOG_RE.match(entry.name)
            if match:
                gids.append(int(match.group(1)))
        return sorted(gids)

    def _load_manifest(self, salvage: bool) -> dict:
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
            if not isinstance(manifest, dict):
                raise ValueError("manifest is not an object")
        except (OSError, ValueError) as exc:
            if not salvage:
                if not manifest_path.exists():
                    raise TraceFormatError(
                        f"{self.path}: missing {MANIFEST_NAME}"
                    )
                raise TraceFormatError(
                    f"{manifest_path}: corrupt manifest: {exc}"
                ) from exc
            self.integrity.missing_files.append(MANIFEST_NAME)
            self.integrity.note(
                f"{MANIFEST_NAME}: missing/corrupt, reconstructed from disk"
            )
            return {"reconstructed": True}
        if manifest.get("in_progress"):
            self.integrity.note(
                f"{MANIFEST_NAME}: in-progress (run was killed before "
                f"finalisation)"
            )
        return manifest

    def _load_static_verdicts(self, salvage: bool):
        """Parse the manifest's static verdict table, if present.

        A table that fails its schema, version, or CRC check is corrupt:
        strict mode raises, salvage mode falls back to UNKNOWN-everything
        (full-instrumentation semantics — the analysis skips no pair and
        injects no synthesised report) and counts the loss.
        """
        payload = self.manifest.get(STATIC_VERDICTS_KEY)
        if payload is None:
            return None
        from ..static.table import StaticVerdictTable  # deferred: cycle

        try:
            return StaticVerdictTable.from_payload(payload)
        except TraceFormatError as exc:
            if not salvage:
                raise TraceFormatError(
                    f"{self.path / MANIFEST_NAME}: {exc}"
                ) from exc
            self.integrity.verdicts_dropped += 1
            self.integrity.note(
                f"{MANIFEST_NAME}: static verdict table corrupt "
                f"({exc}); treating every site as UNKNOWN — elided "
                f"DEFINITE_RACE witnesses may be lost"
            )
            return None

    def _load_regions(self, salvage: bool) -> dict[int, dict]:
        regions_path = self.path / REGIONS_NAME
        try:
            payload = json.loads(regions_path.read_text())
            return {int(k): v for k, v in payload.items()}
        except (OSError, ValueError) as exc:
            if not salvage:
                raise TraceFormatError(
                    f"{regions_path}: missing or corrupt regions table: {exc}"
                ) from exc
        # Fall back to the durable journal (regions.jsonl), dropping any
        # torn line; a region journalled at fork time is always complete
        # before any chunk referencing it could have been flushed.
        self.integrity.missing_files.append(REGIONS_NAME)
        journal_path = self.path / REGIONS_JOURNAL_NAME
        regions: dict[int, dict] = {}
        if journal_path.exists():
            for record in parse_journal(journal_path.read_text(), salvage=True):
                try:
                    pid = int(record.pop("pid"))
                except (KeyError, ValueError, TypeError):
                    continue
                regions[pid] = record
            self.integrity.note(
                f"{REGIONS_NAME}: recovered {len(regions)} region(s) from "
                f"{REGIONS_JOURNAL_NAME}"
            )
        else:
            self.integrity.note(
                f"{REGIONS_NAME}: missing and no journal; intervals of "
                f"unknown regions will be skipped"
            )
        return regions

    def _load_mutexsets(self, salvage: bool) -> MutexSetTable:
        mutex_path = self.path / MUTEXSETS_NAME
        try:
            table = MutexSetTable.load(mutex_path)
        except (OSError, ValueError) as exc:
            if not salvage:
                raise TraceFormatError(
                    f"{mutex_path}: missing or corrupt mutex-set table: {exc}"
                ) from exc
            self.integrity.missing_files.append(MUTEXSETS_NAME)
            self.integrity.note(
                f"{MUTEXSETS_NAME}: missing/corrupt; unknown mutex sets are "
                f"treated as overlapping (may under-report races)"
            )
            return _TolerantMutexSetTable()
        if salvage:
            # The snapshot may predate the kill; tolerate stale ids.
            return _TolerantMutexSetTable.wrap(table)
        return table

    def _load_thread_gids(self, salvage: bool) -> list[int]:
        listed = self.manifest.get("thread_gids")
        if listed is not None and not salvage:
            return list(listed)
        on_disk = self._glob_thread_gids()
        if listed is None:
            return on_disk
        # Salvage: trust only gids whose log actually exists, and pick up
        # logs the (possibly stale in-progress) manifest missed.
        merged = sorted(set(int(g) for g in listed) | set(on_disk))
        present = [gid for gid in merged if (self.path / log_name(gid)).exists()]
        missing = sorted(set(merged) - set(present))
        for gid in missing:
            self.integrity.thread(gid).errors.append(
                f"{log_name(gid)}: listed in manifest but missing on disk"
            )
            self.integrity.missing_files.append(log_name(gid))
        return present

    # -- readers ---------------------------------------------------------------

    def reader(self, gid: int) -> ThreadTraceReader:
        """Open one thread's log/meta pair (inherits the integrity mode)."""
        report = (
            self.integrity.thread(gid)
            if self.integrity_mode == "salvage"
            else None
        )
        return ThreadTraceReader(
            self.path, gid, integrity=self.integrity_mode, report=report
        )

    def frames_in(
        self, interval, *, reader: ThreadTraceReader | None = None
    ) -> Iterator[FrameView]:
        """Lazy views of an interval's chunks.

        ``interval`` is anything with ``key.gid`` and ``chunks``
        (``[(data_begin, size), ...]``) — the offline engine's
        ``IntervalData`` shape.  Pass an open ``reader`` to reuse its
        block cache; otherwise one is opened (and closed) here.
        """
        own = reader is None
        if reader is None:
            reader = self.reader(interval.key.gid)
        try:
            for begin, size in interval.chunks:
                yield reader.frame_at(begin, size)
        finally:
            if own:
                reader.close()

    def region_span(self, pid: int) -> int:
        return int(self.regions[pid]["span"])

    def interval_label(self, pid: int, slot: int, bid: int) -> IntervalLabel:
        """Reconstruct the barrier-interval label from the regions table.

        This is the offline recovery of the concurrency structure: the chain
        of fork positions (ppid / parent slot / parent bid) up to a top-level
        region, terminated by the interval's own leaf pair.
        """
        return build_interval_label(self.regions, pid, slot, bid)
