"""Streaming readers for SWORD trace directories.

The offline phase must handle log files much larger than memory (the paper:
"the size of a single log file can be dozens of gigabytes ... we employ a
streaming algorithm that reads access information from log files in small
chunks").  The reader therefore:

* builds a block index by scanning the 24-byte frames (seeking over
  payloads — no decompression);
* serves byte ranges in *uncompressed stream coordinates* (what Table-I
  ``data_begin``/``size`` reference) by decompressing only the overlapping
  blocks, one at a time, yielding record batches.
"""

from __future__ import annotations

import bisect
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from ..common.errors import TraceFormatError
from ..common.events import EVENT_BYTES, EVENT_DTYPE
from ..omp.mutexset import MutexSetTable
from ..osl.concurrency import IntervalLabel, IntervalPair
from .compression import by_id
from ..tasking.graph import TaskGraph
from .traceformat import (
    BLOCK_HEADER_BYTES,
    MANIFEST_NAME,
    MUTEXSETS_NAME,
    REGIONS_NAME,
    TASKS_NAME,
    MetaRow,
    log_name,
    meta_name,
    parse_meta_file,
    unpack_block_header,
)


@dataclass(frozen=True, slots=True)
class _BlockRef:
    """Index entry: where one compressed block lives."""

    uncompressed_offset: int
    file_offset: int  # of the payload (past the header)
    compressed_size: int
    uncompressed_size: int
    codec_id: int


class ThreadTraceReader:
    """Random/streaming access to one thread's log + meta files.

    In ``live`` mode the log is still being appended to by the online
    logger: the meta file may not exist yet (chunk rows arrive over the
    flush-event bus instead), an incomplete trailing block is tolerated,
    and :meth:`refresh` re-scans the tail to index newly flushed blocks.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        gid: int,
        *,
        live: bool = False,
    ) -> None:
        directory = Path(directory)
        self.gid = gid
        self.live = live
        self.log_path = directory / log_name(gid)
        self.meta_path = directory / meta_name(gid)
        if live and not self.meta_path.exists():
            self.rows: list[MetaRow] = []
        else:
            self.rows = parse_meta_file(self.meta_path.read_text())
        self._blocks: list[_BlockRef] = []
        self._offsets: list[int] = []
        self._scan_pos = 0
        self._index()
        self._file = open(self.log_path, "rb")
        # One-block decompression cache (ranges are read in ascending order).
        self._cached_block: int = -1
        self._cached_data: bytes = b""

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "ThreadTraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _index(self) -> None:
        """Scan block frames from the last indexed position to the file end."""
        pos = self._scan_pos
        size = self.log_path.stat().st_size
        with open(self.log_path, "rb") as fh:
            while pos + BLOCK_HEADER_BYTES <= size:
                fh.seek(pos)
                header = unpack_block_header(fh.read(BLOCK_HEADER_BYTES))
                end = pos + BLOCK_HEADER_BYTES + header.compressed_size
                if end > size:
                    break  # payload not fully written yet
                ref = _BlockRef(
                    uncompressed_offset=header.uncompressed_offset,
                    file_offset=pos + BLOCK_HEADER_BYTES,
                    compressed_size=header.compressed_size,
                    uncompressed_size=header.uncompressed_size,
                    codec_id=header.codec_id,
                )
                self._blocks.append(ref)
                self._offsets.append(ref.uncompressed_offset)
                pos = end
        self._scan_pos = pos
        if pos != size and not self.live:
            raise TraceFormatError(f"{self.log_path}: trailing garbage")

    def refresh(self) -> None:
        """Index blocks appended since construction (live mode)."""
        self._index()

    @property
    def uncompressed_bytes(self) -> int:
        if not self._blocks:
            return 0
        last = self._blocks[-1]
        return last.uncompressed_offset + last.uncompressed_size

    def _block_bytes(self, i: int) -> bytes:
        if i == self._cached_block:
            return self._cached_data
        ref = self._blocks[i]
        self._file.seek(ref.file_offset)
        payload = self._file.read(ref.compressed_size)
        data = by_id(ref.codec_id).decompress(payload, ref.uncompressed_size)
        self._cached_block = i
        self._cached_data = data
        return data

    def read_range(self, begin: int, size: int) -> np.ndarray:
        """Materialise one chunk ``[begin, begin+size)`` as a record array."""
        parts = list(self.iter_range(begin, size))
        if not parts:
            return np.empty(0, dtype=EVENT_DTYPE)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def iter_range(self, begin: int, size: int) -> Iterator[np.ndarray]:
        """Stream one chunk block-by-block (bounded memory)."""
        if size == 0:
            return
        if begin % EVENT_BYTES or size % EVENT_BYTES:
            raise TraceFormatError("chunk not record-aligned")
        end = begin + size
        if self.live and end > self.uncompressed_bytes:
            self.refresh()  # the logger may have flushed more blocks
        if end > self.uncompressed_bytes:
            raise TraceFormatError(
                f"chunk [{begin}, {end}) beyond log end {self.uncompressed_bytes}"
            )
        i = bisect.bisect_right(self._offsets, begin) - 1
        pos = begin
        while pos < end:
            ref = self._blocks[i]
            data = self._block_bytes(i)
            lo = pos - ref.uncompressed_offset
            hi = min(end - ref.uncompressed_offset, ref.uncompressed_size)
            chunk = data[lo:hi]
            yield np.frombuffer(chunk, dtype=EVENT_DTYPE)
            pos = ref.uncompressed_offset + hi
            i += 1

    def read_chunk(self, row: MetaRow) -> np.ndarray:
        """Materialise the chunk a meta row points at."""
        return self.read_range(row.data_begin, row.size)


def build_interval_label(
    regions: dict, pid: int, slot: int, bid: int
) -> IntervalLabel:
    """Reconstruct a barrier-interval label from a regions table.

    ``regions`` maps region pid to its fork-position record (``ppid``,
    ``parent_slot``, ``parent_bid``, ``span``) — either the parsed
    ``regions.json`` of a closed trace or the online logger's live table.
    """

    def span_of(p: int) -> int:
        return int(regions[p]["span"])

    pairs = [IntervalPair(region=pid, slot=slot, bid=bid, span=span_of(pid))]
    info = regions[pid]
    # Region ids start at 1; ppid <= 0 marks a top-level region.
    while info["ppid"] > 0:
        ppid = int(info["ppid"])
        pairs.append(
            IntervalPair(
                region=ppid,
                slot=int(info["parent_slot"]),
                bid=int(info["parent_bid"]),
                span=span_of(ppid),
            )
        )
        info = regions[ppid]
    return tuple(reversed(pairs))


class TraceDir:
    """A complete SWORD trace directory (one program run)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        if not manifest_path.exists():
            raise TraceFormatError(f"{self.path}: missing {MANIFEST_NAME}")
        self.manifest = json.loads(manifest_path.read_text())
        self.regions: dict[int, dict] = {
            int(k): v
            for k, v in json.loads((self.path / REGIONS_NAME).read_text()).items()
        }
        self.mutexsets = MutexSetTable.load(self.path / MUTEXSETS_NAME)
        tasks_path = self.path / TASKS_NAME
        if tasks_path.exists():
            self.task_graph = TaskGraph.from_json(json.loads(tasks_path.read_text()))
        else:  # traces from before the tasking extension
            self.task_graph = TaskGraph()
        self.thread_gids: list[int] = list(self.manifest["thread_gids"])

    def reader(self, gid: int) -> ThreadTraceReader:
        """Open one thread's log/meta pair."""
        return ThreadTraceReader(self.path, gid)

    def region_span(self, pid: int) -> int:
        return int(self.regions[pid]["span"])

    def interval_label(self, pid: int, slot: int, bid: int) -> IntervalLabel:
        """Reconstruct the barrier-interval label from the regions table.

        This is the offline recovery of the concurrency structure: the chain
        of fork positions (ppid / parent slot / parent bid) up to a top-level
        region, terminated by the interval's own leaf pair.
        """
        return build_interval_label(self.regions, pid, slot, bid)
