"""Exporters for the metrics snapshot.

Three output shapes, one source of truth (:meth:`MetricsRegistry.snapshot`):

* :func:`write_json` — the snapshot verbatim (``--metrics <path>`` and the
  ``"metrics"`` key of every ``--json`` report);
* :func:`prometheus_text` — Prometheus text exposition (cumulative ``le``
  buckets, ``_total``/``_sum``/``_count`` suffixes, label sets carried
  through, ``_p50``/``_p95``/``_p99`` bucket-resolution percentile lines,
  and OpenMetrics-style ``# {trace_id="..."}`` exemplars on buckets that
  have one) for scrape-style integration;
* :func:`stats_line` — the compact one-line form ``repro watch`` prints
  periodically while a run is in flight.

Snapshot keys may carry a label suffix (``serve.ttfr_seconds{tenant="a"}``,
see :func:`repro.obs.registry.format_labels`); exporters split it back off
so labeled series render with proper Prometheus label syntax.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import SUMMARY_QUANTILES, split_labels

__all__ = ["write_json", "prometheus_text", "stats_line"]


def write_json(snapshot: dict, path: str | Path) -> None:
    """Persist one metrics snapshot as indented, key-sorted JSON."""
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True))


def _prom_name(name: str, namespace: str) -> str:
    base = name.replace(".", "_").replace("-", "_")
    return f"{namespace}_{base}" if namespace else base


def _fmt(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _series(prom: str, labels: str, extra: str = "") -> str:
    """One sample name: base + optional label set + optional extra label.

    ``labels`` is the raw ``{k="v"}`` suffix from the snapshot key (or
    ""); ``extra`` is an additional ``k="v"`` pair to merge (``le`` for
    histogram buckets).
    """
    if labels and extra:
        return f"{prom}{{{labels[1:-1]},{extra}}}"
    if labels:
        return f"{prom}{labels}"
    if extra:
        return f"{prom}{{{extra}}}"
    return prom


def _type_line(lines: list[str], seen: set[str], prom: str, kind: str) -> None:
    """Emit ``# TYPE`` once per metric family (labeled series share it)."""
    if prom not in seen:
        seen.add(prom)
        lines.append(f"# TYPE {prom} {kind}")


def prometheus_text(snapshot: dict, namespace: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    seen: set[str] = set()
    for key, value in sorted(snapshot.get("counters", {}).items()):
        name, labels = split_labels(key)
        prom = _prom_name(name, namespace) + "_total"
        _type_line(lines, seen, prom, "counter")
        lines.append(f"{_series(prom, labels)} {_fmt(value)}")
    for key, data in sorted(snapshot.get("gauges", {}).items()):
        name, labels = split_labels(key)
        prom = _prom_name(name, namespace)
        _type_line(lines, seen, prom, "gauge")
        lines.append(f"{_series(prom, labels)} {_fmt(data['value'])}")
        lines.append(f"{_series(prom + '_max', labels)} {_fmt(data['max'])}")
    for key, data in sorted(snapshot.get("histograms", {}).items()):
        name, labels = split_labels(key)
        prom = _prom_name(name, namespace)
        _type_line(lines, seen, prom, "histogram")
        exemplars = data.get("exemplars", {})
        cumulative = 0
        for le, count in data["buckets"]:
            cumulative += count
            label = "+Inf" if le == "+inf" else _fmt(le)
            le_pair = f'le="{label}"'
            line = f"{_series(prom + '_bucket', labels, le_pair)} {cumulative}"
            exemplar = exemplars.get(str(le))
            if exemplar is not None:
                line += (
                    f' # {{trace_id="{exemplar["trace_id"]}"}}'
                    f' {_fmt(exemplar["value"])}'
                )
            lines.append(line)
        lines.append(f"{_series(prom + '_sum', labels)} {_fmt(data['sum'])}")
        lines.append(f"{_series(prom + '_count', labels)} {data['count']}")
        for _q, qlabel in SUMMARY_QUANTILES:
            if qlabel in data:
                lines.append(
                    f"{_series(prom + '_' + qlabel, labels)} "
                    f"{_fmt(data[qlabel])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


#: (label, snapshot section, metric name, value key) for the stats line.
_LINE_FIELDS = (
    ("events", "counters", "sword.events", None),
    ("flushes", "counters", "sword.flushes", None),
    ("kb", "counters", "sword.bytes_compressed", None),
    ("pairs", "counters", "stream.pairs_analyzed", None),
    ("races", "gauges", "stream.races", "value"),
    ("mem", "gauges", "membound.utilisation", "value"),
)


def stats_line(snapshot: dict) -> str:
    """One compact line of live run state (the ``watch`` ticker)."""
    parts: list[str] = []
    for label, section, name, key in _LINE_FIELDS:
        data = snapshot.get(section, {}).get(name)
        if data is None:
            continue
        value = data if key is None else data.get(key, 0)
        if label == "kb":
            parts.append(f"kb={value / 1024:.1f}")
        elif label == "mem":
            parts.append(f"mem={value:.0%}")
        else:
            parts.append(f"{label}={value}")
    return "[stats] " + " ".join(parts) if parts else "[stats] (no metrics)"
