"""Exporters for the metrics snapshot.

Three output shapes, one source of truth (:meth:`MetricsRegistry.snapshot`):

* :func:`write_json` — the snapshot verbatim (``--metrics <path>`` and the
  ``"metrics"`` key of every ``--json`` report);
* :func:`prometheus_text` — Prometheus text exposition (cumulative ``le``
  buckets, ``_total``/``_sum``/``_count`` suffixes) for scrape-style
  integration;
* :func:`stats_line` — the compact one-line form ``repro watch`` prints
  periodically while a run is in flight.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["write_json", "prometheus_text", "stats_line"]


def write_json(snapshot: dict, path: str | Path) -> None:
    """Persist one metrics snapshot as indented, key-sorted JSON."""
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True))


def _prom_name(name: str, namespace: str) -> str:
    base = name.replace(".", "_").replace("-", "_")
    return f"{namespace}_{base}" if namespace else base


def _fmt(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_text(snapshot: dict, namespace: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = _prom_name(name, namespace) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_fmt(value)}")
    for name, data in sorted(snapshot.get("gauges", {}).items()):
        prom = _prom_name(name, namespace)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(data['value'])}")
        lines.append(f"{prom}_max {_fmt(data['max'])}")
    for name, data in sorted(snapshot.get("histograms", {}).items()):
        prom = _prom_name(name, namespace)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for le, count in data["buckets"]:
            cumulative += count
            label = "+Inf" if le == "+inf" else _fmt(le)
            lines.append(f'{prom}_bucket{{le="{label}"}} {cumulative}')
        lines.append(f"{prom}_sum {_fmt(data['sum'])}")
        lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


#: (label, snapshot section, metric name, value key) for the stats line.
_LINE_FIELDS = (
    ("events", "counters", "sword.events", None),
    ("flushes", "counters", "sword.flushes", None),
    ("kb", "counters", "sword.bytes_compressed", None),
    ("pairs", "counters", "stream.pairs_analyzed", None),
    ("races", "gauges", "stream.races", "value"),
    ("mem", "gauges", "membound.utilisation", "value"),
)


def stats_line(snapshot: dict) -> str:
    """One compact line of live run state (the ``watch`` ticker)."""
    parts: list[str] = []
    for label, section, name, key in _LINE_FIELDS:
        data = snapshot.get(section, {}).get(name)
        if data is None:
            continue
        value = data if key is None else data.get(key, 0)
        if label == "kb":
            parts.append(f"kb={value / 1024:.1f}")
        elif label == "mem":
            parts.append(f"mem={value:.0%}")
        else:
            parts.append(f"{label}={value}")
    return "[stats] " + " ".join(parts) if parts else "[stats] (no metrics)"
