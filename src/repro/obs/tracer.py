"""The span-based phase tracer.

A *span* is one timed phase of the pipeline — the whole run, the online
collection, one buffer flush, the offline plan, one tree build.  Spans
nest per OS thread (each simulated worker runs on its own interpreter
thread), and the completed set exports as Chrome trace-event JSON: load
the file at ``chrome://tracing`` / https://ui.perfetto.dev to see the
online log→compress→flush activity and the offline
scan→build→compare→ILP phases on one flamegraph timeline.

Like the registry, the tracer has a null twin whose ``span()`` returns a
shared reusable no-op context manager, so instrumented call sites cost
~nothing when tracing is off.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Span", "PhaseTracer", "NullTracer"]


@dataclass(slots=True)
class Span:
    """One timed phase.  ``start``/``end`` are seconds from tracer epoch."""

    name: str
    category: str
    start: float
    end: float | None = None
    tid: int = 0
    depth: int = 0
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_json(self, wall_epoch: float = 0.0) -> dict:
        """A picklable/JSON-able form of the span.

        ``wall_epoch`` (the tracer's wall-clock epoch, ``time.time()``
        based) converts the relative timestamps into absolute wall
        times, which is how spans recorded in different processes are
        aligned onto one stitched timeline.
        """
        return {
            "name": self.name,
            "cat": self.category,
            "start": wall_epoch + self.start,
            "dur": self.duration,
            "depth": self.depth,
            "args": dict(self.args),
        }


class _SpanContext:
    """Context manager closing one span on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "PhaseTracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> None:
        self._tracer.end(self.span)


class PhaseTracer:
    """Collects nested spans; exports Chrome trace-event JSON.

    Spans nest per interpreter thread (a stack keyed by thread ident);
    completed spans land in :attr:`spans` in *end* order, which is the
    order Chrome's trace viewer expects for complete ("X") events.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        #: Wall-clock time of the epoch: lets relative span times be
        #: re-based to absolute wall times for cross-process stitching.
        self.wall_epoch = time.time()
        self._stacks: dict[int, list[Span]] = {}
        self.spans: list[Span] = []

    # -- recording -------------------------------------------------------------

    def begin(self, name: str, category: str = "phase", **args) -> Span:
        tid = threading.get_ident()
        stack = self._stacks.setdefault(tid, [])
        span = Span(
            name=name,
            category=category,
            start=self._clock() - self._epoch,
            tid=tid,
            depth=len(stack),
            args=dict(args),
        )
        stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        span.end = self._clock() - self._epoch
        stack = self._stacks.get(span.tid)
        if stack and any(s is span for s in stack):
            # Pop through to this span; abandoned children are closed at
            # the same timestamp so the trace stays well-formed.
            while stack:
                top = stack.pop()
                if top is span:
                    break
                if top.end is None:
                    top.end = span.end
                    self.spans.append(top)
        self.spans.append(span)
        return span

    def span(self, name: str, category: str = "phase", **args) -> _SpanContext:
        return _SpanContext(self, self.begin(name, category, **args))

    def reset(self) -> None:
        self._epoch = self._clock()
        self.wall_epoch = time.time()
        self._stacks.clear()
        self.spans.clear()

    def ingest(self, payloads: list, tid: int = 0) -> None:
        """Adopt spans serialized by another process's tracer.

        ``payloads`` are :meth:`Span.to_json` dicts with absolute
        wall-clock starts; they are re-based onto this tracer's epoch so
        coordinator and worker spans share one timeline.
        """
        for payload in payloads:
            start = payload["start"] - self.wall_epoch
            self.spans.append(
                Span(
                    name=payload["name"],
                    category=payload.get("cat", "phase"),
                    start=start,
                    end=start + payload.get("dur", 0.0),
                    tid=tid,
                    depth=payload.get("depth", 0),
                    args=dict(payload.get("args", {})),
                )
            )

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    # -- export ----------------------------------------------------------------

    def to_chrome(self, process_name: str = "repro") -> dict:
        """The Chrome trace-event JSON object format.

        Emits one complete ("X") event per span with microsecond
        timestamps, plus metadata naming the process; dense sequential
        tids keep the viewer's track list readable.
        """
        tid_map: dict[int, int] = {}
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for span in self.spans:
            tid = tid_map.setdefault(span.tid, len(tid_map))
            event = {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
            }
            if span.args:
                event["args"] = span.args
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str | Path, process_name: str = "repro") -> None:
        Path(path).write_text(json.dumps(self.to_chrome(process_name)))


class NullTracer:
    """The disabled tracer: every span is the same reusable no-op."""

    spans: list = []

    def __init__(self) -> None:
        self._null = nullcontext()

    def begin(self, name: str, category: str = "phase", **args) -> None:
        return None

    def end(self, span) -> None:
        return None

    def span(self, name: str, category: str = "phase", **args):
        return self._null

    def reset(self) -> None:
        pass

    def ingest(self, payloads: list, tid: int = 0) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def find(self, name: str) -> list:
        return []

    def to_chrome(self, process_name: str = "repro") -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write_chrome(self, path, process_name: str = "repro") -> None:
        Path(path).write_text(json.dumps(self.to_chrome(process_name)))
