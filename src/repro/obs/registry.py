"""The typed metrics registry (counters, gauges, bucketed histograms).

Every pipeline stage reports through one of three instrument types:

* :class:`Counter` — monotonically increasing totals (events logged,
  buffers flushed, ILP solves);
* :class:`Gauge` — instantaneous values with a tracked maximum (tool
  memory in flight, live race count);
* :class:`Histogram` — bucketed distributions (flush latency,
  compression ratio, tree-node counts).

Instruments are interned by name, so the logger, the analysis engine, and
the drivers all update the *same* instrument when they name the same
metric — that interning is what makes the registry a process-wide schema
rather than another ad-hoc stats dict.

The **null backend** (:class:`NullRegistry`) hands out a shared no-op
instrument: hot paths cache the instrument once and then pay a single
no-op method call per update, so production runs with instrumentation
disabled measure within noise of uninstrumented code (see
``benchmarks/test_extension_obs.py``).
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "SECONDS_BUCKETS",
    "RATIO_BUCKETS",
    "COUNT_BUCKETS",
    "format_labels",
    "split_labels",
]

#: The percentile summaries exporters surface for every histogram.
SUMMARY_QUANTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))


def format_labels(labels: dict | None) -> str:
    """Canonical ``{k="v",...}`` suffix (sorted keys); "" for no labels.

    The suffix doubles as the interning-key discriminator: the same
    metric name with different label values is a different instrument,
    exactly as a Prometheus label set denotes a distinct series.
    """
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


def split_labels(key: str) -> tuple[str, str]:
    """Split an interned key into (base name, label suffix or "")."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]

#: Default latency buckets (seconds): 10 µs .. 10 s, decade-ish spaced.
SECONDS_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0
)
#: Ratio buckets (compressed/uncompressed, overheads): 0..2x.
RATIO_BUCKETS = (0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0, 1.25, 1.5, 2.0)
#: Size-ish buckets (tree nodes per build, events per chunk).
COUNT_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "labels", "_value")
    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += n

    @property
    def value(self) -> int | float:
        return self._value

    def reset(self) -> None:
        self._value = 0

    def to_json(self):
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self._value}>"


class Gauge:
    """An instantaneous value; the high-water mark is kept alongside."""

    __slots__ = ("name", "help", "labels", "_value", "_max")
    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: dict | None = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0
        self._max = 0

    def set(self, value: int | float) -> None:
        self._value = value
        if value > self._max:
            self._max = value

    def inc(self, n: int | float = 1) -> None:
        self.set(self._value + n)

    def dec(self, n: int | float = 1) -> None:
        self._value -= n

    @property
    def value(self) -> int | float:
        return self._value

    @property
    def max(self) -> int | float:
        return self._max

    def reset(self) -> None:
        self._value = 0
        self._max = 0

    def to_json(self) -> dict:
        return {"value": self._value, "max": self._max}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self._value} max={self._max}>"


class Histogram:
    """A bucketed distribution with exact sum/count/min/max.

    ``buckets`` are inclusive upper bounds; an implicit ``+inf`` bucket
    catches everything beyond the last bound (Prometheus semantics, so
    the text exposition can emit cumulative ``le`` buckets directly).

    An observation may carry an *exemplar* — a trace id pinpointing one
    concrete occurrence.  The histogram keeps the most recent exemplar
    per bucket (OpenMetrics semantics), so a p99 spike in the export
    comes with the trace id of an actual slow job to pull up in the
    trace viewer.
    """

    __slots__ = ("name", "help", "labels", "buckets", "counts", "exemplars",
                 "_sum", "_count", "_min", "_max")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = SECONDS_BUCKETS,
        labels: dict | None = None,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(buckets) + 1)  # + the +inf bucket
        self.exemplars: list = [None] * (len(buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = None
        self._max = None

    def observe(self, value: float, exemplar: str | None = None) -> None:
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        if exemplar is not None:
            self.exemplars[index] = {"trace_id": exemplar, "value": value}
        self._sum += value
        self._count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self):
        return self._min

    @property
    def max(self):
        return self._max

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; the exact max for the tail)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self._count == 0:
            return 0.0
        rank = q * self._count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self._max if self._max is not None else 0.0
        return self._max if self._max is not None else 0.0

    def reset(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.exemplars = [None] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = None
        self._max = None

    def to_json(self) -> dict:
        payload = {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "buckets": [
                [le, c] for le, c in zip(self.buckets, self.counts)
            ] + [["+inf", self.counts[-1]]],
        }
        for q, label in SUMMARY_QUANTILES:
            payload[label] = self.quantile(q)
        if any(e is not None for e in self.exemplars):
            bounds = list(self.buckets) + ["+inf"]
            payload["exemplars"] = {
                str(le): ex
                for le, ex in zip(bounds, self.exemplars)
                if ex is not None
            }
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self._count} mean={self.mean:.3g}>"


class MetricsRegistry:
    """Process-wide interning store for typed instruments.

    Asking for an instrument registers it on first use and returns the
    existing one afterwards; asking for the same name with a different
    type is an error (the schema is the point).
    """

    enabled = True

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._instruments: dict[str, object] = {}

    def _intern(self, cls, name: str, help: str, labels=None, **kwargs):
        key = name + format_labels(labels)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, help, labels=labels, **kwargs)
            self._instruments[key] = inst
            return inst
        if not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} is a {inst.kind}, not a {cls.kind}"
            )
        return inst

    def counter(
        self, name: str, help: str = "", *, labels: dict | None = None
    ) -> Counter:
        return self._intern(Counter, name, help, labels=labels)

    def gauge(
        self, name: str, help: str = "", *, labels: dict | None = None
    ) -> Gauge:
        return self._intern(Gauge, name, help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = SECONDS_BUCKETS,
        *,
        labels: dict | None = None,
    ) -> Histogram:
        return self._intern(Histogram, name, help, labels=labels,
                            buckets=buckets)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str):
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        """Zero every instrument, keeping the registrations."""
        for inst in self._instruments.values():
            inst.reset()

    def snapshot(self) -> dict:
        """The shared machine-readable schema (``"metrics"`` in ``--json``)."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            out[inst.kind + "s"][name] = inst.to_json()
        return out


class _NullInstrument:
    """One shared do-nothing instrument for every name and type."""

    __slots__ = ()
    name = "null"
    help = ""
    kind = "null"
    labels: dict = {}
    value = 0
    max = 0
    count = 0
    sum = 0.0
    mean = 0.0
    min = None

    def inc(self, n=1) -> None:
        pass

    def dec(self, n=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value, exemplar=None) -> None:
        pass

    def reset(self) -> None:
        pass

    def quantile(self, q):
        return 0.0

    def to_json(self):
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The zero-overhead backend: every instrument is the shared no-op.

    ``snapshot()`` is empty and falsy so callers can test
    ``if result.metrics:`` to tell an instrumented run from a production
    one.
    """

    enabled = False

    def __init__(self, namespace: str = "repro") -> None:
        super().__init__(namespace)

    def counter(self, name, help="", *, labels=None) -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name, help="", *, labels=None) -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name, help="", buckets=SECONDS_BUCKETS, *, labels=None
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def snapshot(self) -> dict:
        return {}
