"""Schema validation for observability artifacts (no third-party deps).

CI's ``obs-smoke`` job checks that what the service *actually emits* —
stitched per-job Chrome trace JSON and the Prometheus text exposition —
matches what the docs and dashboards assume.  PyPI validators are off
the table for a stdlib-only repo, so this module implements the small
JSON-Schema subset the checked-in schemas need, plus a line-grammar
check for the Prometheus text format:

* :func:`validate` — structural validation against a JSON-Schema-style
  dict supporting ``type``, ``enum``, ``const``, ``required``,
  ``properties``, ``additionalProperties``, ``items``, ``minItems`` /
  ``maxItems``, ``minimum`` / ``maximum``, ``minLength``, ``pattern``,
  ``anyOf`` and ``allOf``.  Unknown keywords raise — a schema using a
  keyword this subset silently ignored would "validate" everything.
* :func:`validate_prometheus_text` — every non-comment line must parse
  as ``name{labels} value`` (with an optional OpenMetrics exemplar
  suffix), and every sample must belong to a family announced by a
  ``# TYPE`` line.

``python -m repro.obs.schema --schema S.json FILE...`` and
``--prometheus FILE`` expose both checks to CI shell steps.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

__all__ = ["SchemaError", "validate", "check", "validate_prometheus_text"]

#: The keywords :func:`validate` implements; anything else is an error.
_SUPPORTED = frozenset(
    {
        "type", "enum", "const", "required", "properties",
        "additionalProperties", "items", "minItems", "maxItems",
        "minimum", "maximum", "minLength", "pattern", "anyOf", "allOf",
        # Annotations carried for humans, never enforced:
        "$schema", "title", "description",
    }
)

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """Raised by :func:`check`; carries every violation found."""

    def __init__(self, errors: list[str]) -> None:
        self.errors = errors
        super().__init__("; ".join(errors))


def _type_ok(value, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, _TYPES[expected])


def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Every violation of ``schema`` in ``instance`` (empty list: valid)."""
    unknown = set(schema) - _SUPPORTED
    if unknown:
        raise ValueError(
            f"{path}: schema uses unsupported keyword(s) {sorted(unknown)}"
        )
    errors: list[str] = []
    if "type" in schema:
        expected = schema["type"]
        allowed = [expected] if isinstance(expected, str) else expected
        if not any(_type_ok(instance, t) for t in allowed):
            return [
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            ]
    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {instance!r}")
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if "maximum" in schema and isinstance(instance, (int, float)):
        if instance > schema["maximum"]:
            errors.append(f"{path}: {instance} > maximum {schema['maximum']}")
    if "minLength" in schema and isinstance(instance, str):
        if len(instance) < schema["minLength"]:
            errors.append(
                f"{path}: length {len(instance)} < "
                f"minLength {schema['minLength']}"
            )
    if "pattern" in schema and isinstance(instance, str):
        if re.search(schema["pattern"], instance) is None:
            errors.append(
                f"{path}: {instance!r} does not match /{schema['pattern']}/"
            )
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required property {name!r}")
        properties = schema.get("properties", {})
        for name, sub in properties.items():
            if name in instance:
                errors.extend(validate(instance[name], sub, f"{path}.{name}"))
        additional = schema.get("additionalProperties")
        if additional is False:
            for name in set(instance) - set(properties):
                errors.append(f"{path}: unexpected property {name!r}")
        elif isinstance(additional, dict):
            for name in set(instance) - set(properties):
                errors.extend(
                    validate(instance[name], additional, f"{path}.{name}")
                )
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(
                f"{path}: {len(instance)} item(s) < "
                f"minItems {schema['minItems']}"
            )
        if "maxItems" in schema and len(instance) > schema["maxItems"]:
            errors.append(
                f"{path}: {len(instance)} item(s) > "
                f"maxItems {schema['maxItems']}"
            )
        if "items" in schema:
            for i, item in enumerate(instance):
                errors.extend(validate(item, schema["items"], f"{path}[{i}]"))
    if "allOf" in schema:
        for sub in schema["allOf"]:
            errors.extend(validate(instance, sub, path))
    if "anyOf" in schema:
        branches = [validate(instance, sub, path) for sub in schema["anyOf"]]
        if all(branches):
            detail = min(branches, key=len)
            errors.append(
                f"{path}: no anyOf branch matched "
                f"(closest: {'; '.join(detail)})"
            )
    return errors


def check(instance, schema: dict) -> None:
    """Raise :class:`SchemaError` unless ``instance`` validates."""
    errors = validate(instance, schema)
    if errors:
        raise SchemaError(errors)


# -- Prometheus text exposition ----------------------------------------------------

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABELS = r"\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\}"
_VALUE = r"[+-]?(\d+(\.\d+)?([eE][+-]?\d+)?|inf|nan)"
_EXEMPLAR = r"( # \{trace_id=\"[0-9a-f]+\"\} " + _VALUE + r")?"
_SAMPLE_RE = re.compile(
    f"^({_METRIC_NAME})({_LABELS})? {_VALUE}{_EXEMPLAR}$"
)
_TYPE_RE = re.compile(
    f"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$"
)

#: Suffixes a sample may add to its family's announced name.
_FAMILY_SUFFIXES = (
    "", "_total", "_bucket", "_sum", "_count", "_max", "_p50", "_p95", "_p99"
)


def validate_prometheus_text(text: str) -> list[str]:
    """Line-grammar violations in one text exposition (empty: valid)."""
    errors: list[str] = []
    families: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# HELP "):
                continue
            if _TYPE_RE.match(line):
                families.add(_TYPE_RE.match(line).group(1))
            else:
                errors.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name = match.group(1)
        if not any(
            name.endswith(suffix) and name[: len(name) - len(suffix)] in families
            for suffix in _FAMILY_SUFFIXES
        ):
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # TYPE line"
            )
    return errors


# -- CLI ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="validate observability artifacts (CI obs-smoke)",
    )
    parser.add_argument(
        "--schema", metavar="PATH", help="JSON schema to validate files against"
    )
    parser.add_argument(
        "--prometheus",
        action="store_true",
        help="treat the files as Prometheus text expositions",
    )
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args(argv)
    if bool(args.schema) == bool(args.prometheus):
        parser.error("exactly one of --schema / --prometheus is required")
    schema = json.loads(Path(args.schema).read_text()) if args.schema else None
    failed = 0
    for name in args.files:
        path = Path(name)
        if args.prometheus:
            errors = validate_prometheus_text(path.read_text())
        else:
            errors = validate(json.loads(path.read_text()), schema)
        if errors:
            failed += 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
