"""The shared run-stats snapshot (one schema for every driver).

Before this module the serial, distributed, and streaming drivers each
hand-copied ``tool.stats`` and ``analysis.stats`` fields into
``result.stats``, so the three modes' schemas could (and did) drift.
:func:`run_stats` is now the only way a driver builds that dict:

* the tool's own counters are the top level (``events``, ``flushes``,
  ``accesses``, ...), exactly as the online tools expose them;
* each analysis phase lands under its mode key (``"offline"``,
  ``"offline_mt"``, ``"streaming"``) as the *full*
  :meth:`~repro.offline.engine.AnalysisStats.to_json` schema;
* driver-specific extras (``evictions``) merge at the top level.
"""

from __future__ import annotations

from .registry import SUMMARY_QUANTILES

__all__ = ["run_stats", "merge_snapshots"]


def run_stats(tool=None, *, extra: dict | None = None,
              analyses: dict | None = None) -> dict:
    """Assemble one driver's ``result.stats`` dict.

    Args:
        tool: an online tool exposing a ``stats`` mapping (or None for
            baseline runs).
        extra: driver-specific top-level fields.
        analyses: mode key -> ``AnalysisStats`` (anything with
            ``to_json()``); each becomes a nested dict under its key.
    """
    stats: dict = {}
    if tool is not None:
        stats.update(getattr(tool, "stats", {}) or {})
    if extra:
        stats.update(extra)
    for key, phase in (analyses or {}).items():
        stats[key] = phase.to_json()
    return stats


def _merge_histogram(total: dict, part: dict) -> dict:
    """Fold one histogram's JSON payload into another (same schema).

    Bucket counts add when the bound lists match (they do for any two
    snapshots of the same interned metric); otherwise the sum/count/
    min/max roll-up still merges and the buckets keep the total's shape.
    Percentile summaries are recomputed from the merged buckets.
    """
    merged = dict(total)
    merged["count"] = total.get("count", 0) + part.get("count", 0)
    merged["sum"] = total.get("sum", 0.0) + part.get("sum", 0.0)
    mins = [v for v in (total.get("min"), part.get("min")) if v is not None]
    maxs = [v for v in (total.get("max"), part.get("max")) if v is not None]
    merged["min"] = min(mins) if mins else None
    merged["max"] = max(maxs) if maxs else None
    merged["mean"] = merged["sum"] / merged["count"] if merged["count"] else 0.0
    tb, pb = total.get("buckets", []), part.get("buckets", [])
    if [b[0] for b in tb] == [b[0] for b in pb]:
        merged["buckets"] = [
            [le, ct + cp] for (le, ct), (_le, cp) in zip(tb, pb)
        ]
    exemplars = dict(total.get("exemplars", {}))
    exemplars.update(part.get("exemplars", {}))
    if exemplars:
        merged["exemplars"] = exemplars
    for q, label in SUMMARY_QUANTILES:
        merged[label] = _bucket_quantile(merged, q)
    return merged


def _bucket_quantile(payload: dict, q: float) -> float:
    """Bucket-resolution quantile from a merged histogram payload
    (mirrors :meth:`repro.obs.registry.Histogram.quantile`)."""
    count = payload.get("count", 0)
    if not count:
        return 0.0
    rank = q * count
    seen = 0
    for le, c in payload.get("buckets", []):
        seen += c
        if seen >= rank and c:
            if le == "+inf":
                return payload.get("max") or 0.0
            return le
    return payload.get("max") or 0.0


def merge_snapshots(total: dict, part: dict) -> dict:
    """Merge one registry snapshot into another (returns ``total``).

    The service uses this to fold per-shard worker registry deltas into
    one job-level snapshot: counters sum, gauges keep the max (shards
    run concurrently, so the peak is the honest roll-up), histograms
    merge bucket-wise.  Both arguments are plain ``snapshot()`` dicts;
    ``total`` may start ``{}``.
    """
    if not part:
        return total
    counters = total.setdefault("counters", {})
    for name, value in part.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = total.setdefault("gauges", {})
    for name, data in part.get("gauges", {}).items():
        seen = gauges.get(name)
        if seen is None:
            gauges[name] = dict(data)
        else:
            seen["value"] = max(seen["value"], data["value"])
            seen["max"] = max(seen["max"], data["max"])
    histograms = total.setdefault("histograms", {})
    for name, data in part.get("histograms", {}).items():
        seen = histograms.get(name)
        histograms[name] = (
            dict(data) if seen is None else _merge_histogram(seen, data)
        )
    return total
