"""The shared run-stats snapshot (one schema for every driver).

Before this module the serial, distributed, and streaming drivers each
hand-copied ``tool.stats`` and ``analysis.stats`` fields into
``result.stats``, so the three modes' schemas could (and did) drift.
:func:`run_stats` is now the only way a driver builds that dict:

* the tool's own counters are the top level (``events``, ``flushes``,
  ``accesses``, ...), exactly as the online tools expose them;
* each analysis phase lands under its mode key (``"offline"``,
  ``"offline_mt"``, ``"streaming"``) as the *full*
  :meth:`~repro.offline.engine.AnalysisStats.to_json` schema;
* driver-specific extras (``evictions``) merge at the top level.
"""

from __future__ import annotations

__all__ = ["run_stats"]


def run_stats(tool=None, *, extra: dict | None = None,
              analyses: dict | None = None) -> dict:
    """Assemble one driver's ``result.stats`` dict.

    Args:
        tool: an online tool exposing a ``stats`` mapping (or None for
            baseline runs).
        extra: driver-specific top-level fields.
        analyses: mode key -> ``AnalysisStats`` (anything with
            ``to_json()``); each becomes a nested dict under its key.
    """
    stats: dict = {}
    if tool is not None:
        stats.update(getattr(tool, "stats", {}) or {})
    if extra:
        stats.update(extra)
    for key, phase in (analyses or {}).items():
        stats[key] = phase.to_json()
    return stats
