"""The structured flight recorder (a bounded ring of wide events).

Metrics aggregate and spans time — neither answers "what exactly
happened to job 42?" after the fact.  The journal does: every
significant service transition (submit, dequeue, shard-start, retry,
steal, cancel, complete, ...) is recorded as one *wide event* — a flat
dict carrying the full correlation context (``trace_id``, ``tenant``,
``job``, ``shard``) plus whatever the site knows (bytes, cache hits,
error strings) — into a bounded in-memory ring.  The ring survives at a
fixed memory cost no matter how long the service runs (the SWORD
discipline: bounded overhead in production); old events fall off the
back and are counted, never silently lost.

Query it live through :meth:`FlightRecorder.events` (filter by kind /
trace / tenant / job), summarise it in ``Service.stats()``, or dump the
slice for one trace as JSONL when a job fails.  Like the registry and
the tracer, the recorder has a null twin (:class:`NullJournal`) so
call sites cost ~nothing when observability is off.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter as _TallyCounter
from collections import deque
from pathlib import Path
from typing import Optional

__all__ = ["FlightRecorder", "NullJournal", "NULL_JOURNAL"]


class FlightRecorder:
    """Thread-safe bounded ring of wide JSON-able events."""

    enabled = True

    def __init__(self, capacity: int = 4096, clock=time.time) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._kinds: _TallyCounter = _TallyCounter()
        self.recorded = 0
        self.dropped = 0

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, **fields) -> dict:
        """Append one wide event; returns the stored dict.

        ``None``-valued fields are elided so events stay narrow where a
        site has nothing to say.
        """
        event = {"ts": self._clock(), "kind": kind}
        event.update((k, v) for k, v in fields.items() if v is not None)
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            self._kinds[kind] += 1
            self.recorded += 1
        return event

    # -- querying --------------------------------------------------------------

    def events(
        self,
        *,
        kind: Optional[str] = None,
        trace_id: Optional[str] = None,
        tenant: Optional[str] = None,
        job: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[dict]:
        """The retained events (oldest first) matching every given filter."""
        with self._lock:
            out = [
                e
                for e in self._events
                if (kind is None or e.get("kind") == kind)
                and (trace_id is None or e.get("trace_id") == trace_id)
                and (tenant is None or e.get("tenant") == tenant)
                and (job is None or e.get("job") == job)
            ]
        if limit is not None:
            out = out[-limit:]
        return out

    def summary(self) -> dict:
        """The ``Service.stats()`` view: totals and per-kind tallies."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._events),
                "recorded": self.recorded,
                "dropped": self.dropped,
                "kinds": dict(sorted(self._kinds.items())),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    # -- export ----------------------------------------------------------------

    def to_jsonl(self, **filters) -> str:
        """The matching events as one JSON object per line."""
        return "".join(
            json.dumps(e, sort_keys=True) + "\n" for e in self.events(**filters)
        )

    def dump(self, path: str | Path, **filters) -> int:
        """Write matching events as JSONL; returns the event count."""
        events = self.events(**filters)
        Path(path).write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
        )
        return len(events)

    def reset(self) -> None:
        with self._lock:
            self._events.clear()
            self._kinds.clear()
            self.recorded = 0
            self.dropped = 0


class NullJournal:
    """The disabled recorder: ``record`` is a no-op returning ``{}``."""

    enabled = False
    capacity = 0
    recorded = 0
    dropped = 0

    def record(self, kind: str, **fields) -> dict:
        return {}

    def events(self, **filters) -> list:
        return []

    def summary(self) -> dict:
        return {}

    def __len__(self) -> int:
        return 0

    def to_jsonl(self, **filters) -> str:
        return ""

    def dump(self, path, **filters) -> int:
        Path(path).write_text("")
        return 0

    def reset(self) -> None:
        pass


#: The shared disabled journal (the ambient default's journal).
NULL_JOURNAL = NullJournal()
