"""Live verification of the paper's ``N x (B + C)`` memory bound.

SWORD's headline property is that tool memory never grows with the
application: every participating thread costs exactly ``B + C`` bytes
(buffer + auxiliary TLS, ~3.3 MB) and nothing else accrues.  The
:class:`MemoryBoundGauge` turns that claim into a *continuously checked
invariant*: it subscribes to the node-memory accountant's charge/release
feed and, on every tool-category movement, compares the category's
current footprint against ``threads x per_thread_bytes``.

Violations are counted (and surfaced in the metrics snapshot) by
default; ``strict=True`` raises :class:`MemoryBoundViolation` at the
offending charge, which is what the test suite uses to prove an
oversized buffer cannot slip through unnoticed.
"""

from __future__ import annotations

__all__ = ["MemoryBoundGauge", "MemoryBoundViolation"]


class MemoryBoundViolation(RuntimeError):
    """Tool memory exceeded the declared ``N x (B + C)`` budget."""

    def __init__(self, current: int, budget: int, threads: int) -> None:
        super().__init__(
            f"tool memory {current} B exceeds the bounded-overhead budget "
            f"{budget} B ({threads} threads)"
        )
        self.current = current
        self.budget = budget
        self.threads = threads


class MemoryBoundGauge:
    """Tracks per-thread ``B + C`` occupancy against the declared budget.

    Works with any registry backend — internal counters keep the verdict
    exact even under the null backend, while a live registry additionally
    exposes ``membound.*`` gauges/counters in the snapshot.

    Args:
        registry: metrics registry (live or null) receiving the gauges.
        per_thread_bytes: the paper's ``B + C`` for one thread.
        category: accountant category holding the tool's footprint.
        slack_bytes: tolerated excess (0 — the bound is exact by design).
        strict: raise :class:`MemoryBoundViolation` instead of counting.
    """

    def __init__(
        self,
        registry,
        per_thread_bytes: int,
        *,
        category: str = "tool",
        slack_bytes: int = 0,
        strict: bool = False,
    ) -> None:
        if per_thread_bytes <= 0:
            raise ValueError("per_thread_bytes must be positive")
        self.per_thread_bytes = per_thread_bytes
        self.category = category
        self.slack_bytes = slack_bytes
        self.strict = strict
        self.threads = 0
        self.current_bytes = 0
        self.violation_count = 0
        self._g_current = registry.gauge(
            "membound.tool_bytes", "current tool-category footprint"
        )
        self._g_budget = registry.gauge(
            "membound.budget_bytes", "N x (B + C) budget for current N"
        )
        self._g_utilisation = registry.gauge(
            "membound.utilisation", "tool bytes over budget bytes"
        )
        self._c_checks = registry.counter(
            "membound.checks", "bound evaluations performed"
        )
        self._c_violations = registry.counter(
            "membound.violations", "charges observed above the budget"
        )

    # -- wiring ---------------------------------------------------------------

    def attach(self, accountant) -> "MemoryBoundGauge":
        """Subscribe to a :class:`~repro.memory.accounting.NodeMemory`."""
        accountant.subscribe(self.on_memory_event)
        return self

    def add_thread(self, n: int = 1) -> None:
        """Another thread joined the run; the budget grows by ``B + C``."""
        self.threads += n
        self._g_budget.set(self.budget_bytes)

    # -- the invariant --------------------------------------------------------

    @property
    def budget_bytes(self) -> int:
        return self.threads * self.per_thread_bytes + self.slack_bytes

    @property
    def ok(self) -> bool:
        return self.violation_count == 0

    def on_memory_event(self, category: str, delta: int, current: int) -> None:
        """Accountant feed: one charge/release landed in ``category``."""
        if category != self.category:
            return
        self.observe(current)

    def observe(self, current: int) -> None:
        """Evaluate the bound against ``current`` tool-category bytes."""
        self.current_bytes = current
        budget = self.budget_bytes
        self._g_current.set(current)
        self._g_utilisation.set(current / budget if budget else 0.0)
        self._c_checks.inc()
        if current > budget:
            self.violation_count += 1
            self._c_violations.inc()
            if self.strict:
                raise MemoryBoundViolation(current, budget, self.threads)
