"""Unified instrumentation layer (the observability subsystem).

The paper's claims are quantitative — bounded ``N x (B + C)`` tool
memory, low online slowdown, offline cost per stage — so the pipeline
reports everything it does through one typed, process-wide layer:

* :mod:`repro.obs.registry` — counters, gauges, bucketed histograms,
  interned by name into one shared schema;
* :mod:`repro.obs.tracer` — nested phase spans exporting Chrome
  trace-event JSON (flamegraphs of online vs. offline time);
* :mod:`repro.obs.membound` — the live ``N x (B + C)`` invariant checker
  riding the node-memory accountant's charge feed;
* :mod:`repro.obs.export` — JSON snapshot, Prometheus text exposition,
  and the ``watch`` ticker line;
* :mod:`repro.obs.snapshot` — the shared ``result.stats`` assembly used
  by every driver.

An :class:`Instrumentation` bundle (registry + tracer) threads through
tools, engines, and drivers.  The process-wide ambient default is
:data:`NULL_OBS` — the null backend — so library users pay ~nothing
unless they install a live bundle with :func:`set_obs` or pass one
explicitly (the CLI does the latter for ``--json`` / ``--metrics`` /
``--trace-events``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .export import prometheus_text, stats_line, write_json
from .journal import NULL_JOURNAL, FlightRecorder, NullJournal
from .membound import MemoryBoundGauge, MemoryBoundViolation
from .registry import (
    COUNT_BUCKETS,
    RATIO_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from .snapshot import merge_snapshots, run_stats
from .tracer import NullTracer, PhaseTracer, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "PhaseTracer",
    "NullTracer",
    "Span",
    "FlightRecorder",
    "NullJournal",
    "NULL_JOURNAL",
    "MemoryBoundGauge",
    "MemoryBoundViolation",
    "Instrumentation",
    "NULL_OBS",
    "live",
    "get_obs",
    "set_obs",
    "run_stats",
    "merge_snapshots",
    "prometheus_text",
    "stats_line",
    "write_json",
    "SECONDS_BUCKETS",
    "RATIO_BUCKETS",
    "COUNT_BUCKETS",
]


@dataclass
class Instrumentation:
    """One registry + one tracer + one journal, threaded together.

    The journal (flight recorder) defaults to the shared null twin even
    in live bundles built directly — :func:`live` opts in, so existing
    registry-only call sites never pay for event recording.
    """

    registry: MetricsRegistry = field(default_factory=NullRegistry)
    tracer: PhaseTracer | NullTracer = field(default_factory=NullTracer)
    journal: FlightRecorder | NullJournal = NULL_JOURNAL

    @property
    def enabled(self) -> bool:
        return self.registry.enabled

    def snapshot(self) -> dict:
        """The registry's machine-readable snapshot (empty when null)."""
        return self.registry.snapshot()


#: The shared disabled bundle — the ambient default.
NULL_OBS = Instrumentation()

_ambient: Instrumentation = NULL_OBS


def live(
    namespace: str = "repro", *, journal_capacity: int = 4096
) -> Instrumentation:
    """A fresh enabled bundle (live registry + tracer + flight recorder).

    ``journal_capacity=0`` keeps the null journal (metrics and spans
    only) — what per-shard worker bundles use, since their events are
    journaled by the coordinator.
    """
    return Instrumentation(
        registry=MetricsRegistry(namespace),
        tracer=PhaseTracer(),
        journal=(
            FlightRecorder(journal_capacity)
            if journal_capacity > 0
            else NULL_JOURNAL
        ),
    )


def get_obs() -> Instrumentation:
    """The ambient process-wide bundle (null unless installed)."""
    return _ambient


def set_obs(obs: Instrumentation | None) -> Instrumentation:
    """Install ``obs`` as the ambient bundle; returns the previous one.

    ``None`` restores the null default.
    """
    global _ambient
    previous = _ambient
    _ambient = obs if obs is not None else NULL_OBS
    return previous
