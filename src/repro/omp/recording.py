"""A recording OMPT tool: the flat, globally ordered event tape.

Used by tests (brute-force race oracle), by the operational-semantics replay
(:mod:`repro.semantics`), and by the harness when it needs ground truth about
an execution.  Every callback is appended to one list with a global sequence
number — legal because the cooperative scheduler runs one thread at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..common.events import Access
from .ompt import OmptTool


@dataclass(frozen=True, slots=True)
class TapeEntry:
    """One globally ordered runtime event.

    ``kind`` is one of ``thread_begin, thread_end, parallel_begin,
    parallel_end, task_begin, task_end, barrier_arrive, barrier_depart,
    mutex_acquired, mutex_released, access``.
    """

    seq: int
    kind: str
    gid: int                 # acting thread (-1 for region-scoped events)
    region: int              # pid of the relevant region (0 if none)
    slot: int                # team slot of the acting thread (-1 if n/a)
    bid: int                 # barrier interval (-1 if n/a)
    level: int               # nesting level of the acting thread
    mutex: int               # mutex id for mutex events (0 otherwise)
    access: Optional[Access] # populated for access events
    chain: tuple             # thread's interval label at event time


class RecordingTool(OmptTool):
    """Record every callback with full structural context."""

    def __init__(self) -> None:
        from ..tasking.graph import TaskGraph

        self.tape: list[TapeEntry] = []
        self.regions: dict[int, Any] = {}
        self.task_graph = TaskGraph()

    def _entry(
        self,
        kind: str,
        thread=None,
        region=None,
        *,
        bid: int = -1,
        mutex: int = 0,
        access: Optional[Access] = None,
    ) -> None:
        gid = thread.gid if thread is not None else -1
        slot = -1
        level = 0
        chain: tuple = ()
        if thread is not None:
            level = thread.level
            chain = thread.interval_chain()
            if thread.frames:
                slot = thread.frames[-1].slot
                if bid < 0:
                    bid = thread.frames[-1].bid
        pid = region.pid if region is not None else (
            thread.frames[-1].team.region.pid
            if thread is not None and thread.frames
            else 0
        )
        self.tape.append(
            TapeEntry(
                seq=len(self.tape),
                kind=kind,
                gid=gid,
                region=pid,
                slot=slot,
                bid=bid,
                level=level,
                mutex=mutex,
                access=access,
                chain=chain,
            )
        )

    # -- callbacks ---------------------------------------------------------

    def on_thread_begin(self, thread):  # noqa: D102
        self._entry("thread_begin", thread)

    def on_thread_end(self, thread):  # noqa: D102
        self._entry("thread_end", thread)

    def on_parallel_begin(self, region):  # noqa: D102
        self.regions[region.pid] = region
        self._entry("parallel_begin", None, region)

    def on_parallel_end(self, region):  # noqa: D102
        self._entry("parallel_end", None, region)

    def on_implicit_task_begin(self, thread, region, slot):  # noqa: D102
        self._entry("task_begin", thread, region)

    def on_implicit_task_end(self, thread, region, slot):  # noqa: D102
        self._entry("task_end", thread, region)

    def on_barrier_arrive(self, thread, region, bid):  # noqa: D102
        self._entry("barrier_arrive", thread, region, bid=bid)

    def on_barrier_depart(self, thread, region, new_bid):  # noqa: D102
        self._entry("barrier_depart", thread, region, bid=new_bid)

    def on_mutex_acquired(self, thread, mutex_id):  # noqa: D102
        self._entry("mutex_acquired", thread, mutex=mutex_id)

    def on_mutex_released(self, thread, mutex_id):  # noqa: D102
        self._entry("mutex_released", thread, mutex=mutex_id)

    def on_access(self, thread, access):  # noqa: D102
        self._entry("access", thread, access=access)

    def on_task_create(self, thread, task):  # noqa: D102
        from ..tasking.graph import TaskInfo

        self.task_graph.add(
            TaskInfo(
                task_id=task.task_id,
                creator=task.creator_entity,
                creator_gid=task.creator_gid,
                pid=task.pid,
                bid=task.bid,
                create_seq=task.create_seq,
            )
        )
        self._entry("task_create", thread, mutex=task.task_id)

    def on_task_begin(self, thread, task):  # noqa: D102
        self._entry("task_begin_exec", thread, mutex=task.task_id)

    def on_task_end(self, thread, task):  # noqa: D102
        self._entry("task_end_exec", thread, mutex=task.task_id)

    def on_taskwait(self, thread, waited, new_seq):  # noqa: D102
        for task in waited:
            self.task_graph.set_wait(task.task_id, new_seq)
        self._entry("taskwait", thread, mutex=new_seq)

    # -- convenience --------------------------------------------------------

    def accesses(self) -> list[TapeEntry]:
        """All access entries in global order."""
        return [e for e in self.tape if e.kind == "access"]
