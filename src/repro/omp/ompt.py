"""OMPT-style tool interface of the simulated OpenMP runtime.

Real SWORD attaches to the OpenMP runtime through OMPT callbacks (thread
begin/end, parallel begin/end, implicit tasks, synchronisation) plus compiler
instrumentation for loads/stores.  This module is the equivalent seam in the
simulator: a tool subclasses :class:`OmptTool` and receives the same stream
of structural events and memory accesses.  The SWORD online logger, the
ARCHER baseline, and the test oracles are all just tools.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..common.events import Access, AccessBatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .runtime import OpenMPRuntime, ParallelRegion, SimThread


class OmptTool:
    """Base tool: every callback defaults to a no-op.

    Callback ordering guarantees (enforced by the runtime):

    * ``on_parallel_begin`` fires on the encountering thread before any team
      member runs; ``on_parallel_end`` fires on the master after every member
      has retired from the region.
    * ``on_implicit_task_begin``/``end`` bracket one member's participation.
    * ``on_barrier_arrive`` fires for every member before any member's
      ``on_barrier_depart`` for that barrier (all-to-all ordering).
    * ``on_access`` fires only for accesses inside parallel regions —
      sequential code is not instrumented, mirroring the paper ("we ignore
      sequential instructions as they cannot race").
    """

    def on_run_begin(self, runtime: "OpenMPRuntime") -> None:
        """The run is starting; the initial thread exists but has not run."""

    def on_run_end(self, runtime: "OpenMPRuntime") -> None:
        """The program finished normally (not called after an abort)."""

    def on_thread_begin(self, thread: "SimThread") -> None:
        """A runtime worker thread came into existence."""

    def on_thread_end(self, thread: "SimThread") -> None:
        """A runtime worker thread retired for good."""

    def on_parallel_begin(self, region: "ParallelRegion") -> None:
        """A parallel region is being forked (encountering thread context)."""

    def on_parallel_end(self, region: "ParallelRegion") -> None:
        """The region joined; the master thread resumes its parent context."""

    def on_implicit_task_begin(
        self, thread: "SimThread", region: "ParallelRegion", slot: int
    ) -> None:
        """``thread`` starts executing the region body as team member ``slot``."""

    def on_implicit_task_end(
        self, thread: "SimThread", region: "ParallelRegion", slot: int
    ) -> None:
        """``thread`` finished the region body (after the implicit barrier)."""

    def on_barrier_arrive(
        self, thread: "SimThread", region: "ParallelRegion", bid: int
    ) -> None:
        """``thread`` arrived at the barrier ending interval ``bid``."""

    def on_barrier_depart(
        self, thread: "SimThread", region: "ParallelRegion", new_bid: int
    ) -> None:
        """``thread`` left the barrier; its interval is now ``new_bid``."""

    def on_mutex_acquired(self, thread: "SimThread", mutex_id: int) -> None:
        """``thread`` now holds ``mutex_id`` (lock or named critical)."""

    def on_mutex_released(self, thread: "SimThread", mutex_id: int) -> None:
        """``thread`` released ``mutex_id``."""

    def on_static_region(self, region: "ParallelRegion", team, spec):
        """Pre-screening hook: the region carries a static RegionSpec.

        Fires after ``on_parallel_begin`` with the fully formed team,
        before any member runs the body.  A tool that consumes verdicts
        returns a :class:`~repro.static.analyzer.RegionVerdicts`; a tool
        that wants full instrumentation (oracles, differential baselines,
        SWORD with ``static_prescreen`` off) returns None — and because
        the runtime only elides sites *every* attached tool agreed to
        drop, one None keeps the whole region instrumented.
        """
        return None

    def on_access_elided(self, thread: "SimThread", count: int) -> None:
        """``count`` accesses at PROVEN_FREE/DEFINITE_RACE sites were
        suppressed before emission (bookkeeping only — no event data)."""

    def on_access(self, thread: "SimThread", access: Access) -> None:
        """Instrumented (parallel-context) memory access."""

    def on_access_batch(self, thread: "SimThread", batch: AccessBatch) -> None:
        """A columnar batch of accesses (the dense-loop fast path).

        Semantically equivalent to one :meth:`on_access` per element, and
        the default implementation delivers exactly that, so tools that
        never override this still observe every access.  Columnar tools
        (the SWORD logger) override it to copy the batch wholesale.
        """
        for access in batch.to_accesses():
            self.on_access(thread, access)

    # -- tasking extension callbacks ----------------------------------------

    def on_task_create(self, thread: "SimThread", task) -> None:
        """``thread`` deferred explicit task ``task`` (a TaskObj)."""

    def on_task_begin(self, thread: "SimThread", task) -> None:
        """``thread`` starts executing deferred task ``task``."""

    def on_task_end(self, thread: "SimThread", task) -> None:
        """``thread`` finished executing ``task``."""

    def on_taskwait(self, thread: "SimThread", waited: list, new_seq: int) -> None:
        """``thread``'s taskwait completed; ``waited`` tasks are now ordered
        before the waiting entity's points at ``seq >= new_seq``."""


class ToolMux(OmptTool):
    """Fan one callback stream out to several tools (fixed order)."""

    def __init__(self, tools: Iterable[OmptTool]) -> None:
        self.tools = list(tools)

    def on_run_begin(self, runtime):  # noqa: D102 - delegation
        for t in self.tools:
            t.on_run_begin(runtime)

    def on_run_end(self, runtime):  # noqa: D102
        for t in self.tools:
            t.on_run_end(runtime)

    def on_thread_begin(self, thread):  # noqa: D102
        for t in self.tools:
            t.on_thread_begin(thread)

    def on_thread_end(self, thread):  # noqa: D102
        for t in self.tools:
            t.on_thread_end(thread)

    def on_parallel_begin(self, region):  # noqa: D102
        for t in self.tools:
            t.on_parallel_begin(region)

    def on_parallel_end(self, region):  # noqa: D102
        for t in self.tools:
            t.on_parallel_end(region)

    def on_implicit_task_begin(self, thread, region, slot):  # noqa: D102
        for t in self.tools:
            t.on_implicit_task_begin(thread, region, slot)

    def on_implicit_task_end(self, thread, region, slot):  # noqa: D102
        for t in self.tools:
            t.on_implicit_task_end(thread, region, slot)

    def on_barrier_arrive(self, thread, region, bid):  # noqa: D102
        for t in self.tools:
            t.on_barrier_arrive(thread, region, bid)

    def on_barrier_depart(self, thread, region, new_bid):  # noqa: D102
        for t in self.tools:
            t.on_barrier_depart(thread, region, new_bid)

    def on_mutex_acquired(self, thread, mutex_id):  # noqa: D102
        for t in self.tools:
            t.on_mutex_acquired(thread, mutex_id)

    def on_mutex_released(self, thread, mutex_id):  # noqa: D102
        for t in self.tools:
            t.on_mutex_released(thread, mutex_id)

    def on_static_region(self, region, team, spec):
        """Unanimity rule: elide only what every child tool elided.

        Each child still records its own verdicts; the runtime-facing
        elide set is the intersection, and a single child declining the
        pass (returning None) pins the region fully instrumented — the
        event stream feeds all children, so dropping a site needs
        everyone's consent.
        """
        from ..static.analyzer import RegionVerdicts  # deferred: cycle

        outcomes = [t.on_static_region(region, team, spec) for t in self.tools]
        if not outcomes or any(o is None for o in outcomes):
            return None
        elide = frozenset.intersection(*[o.elide for o in outcomes])
        merged = RegionVerdicts(
            pid=region.pid,
            verdicts=dict(outcomes[0].verdicts),
            elide=elide,
            reports=list(outcomes[0].reports),
        )
        return merged

    def on_access_elided(self, thread, count):  # noqa: D102
        for t in self.tools:
            t.on_access_elided(thread, count)

    def on_access(self, thread, access):  # noqa: D102
        for t in self.tools:
            t.on_access(thread, access)

    def on_access_batch(self, thread, batch):  # noqa: D102
        for t in self.tools:
            t.on_access_batch(thread, batch)

    def on_task_create(self, thread, task):  # noqa: D102
        for t in self.tools:
            t.on_task_create(thread, task)

    def on_task_begin(self, thread, task):  # noqa: D102
        for t in self.tools:
            t.on_task_begin(thread, task)

    def on_task_end(self, thread, task):  # noqa: D102
        for t in self.tools:
            t.on_task_end(thread, task)

    def on_taskwait(self, thread, waited, new_seq):  # noqa: D102
        for t in self.tools:
            t.on_taskwait(thread, waited, new_seq)
