"""The simulated OpenMP runtime.

This is the substrate standing in for LLVM-instrumented binaries running on a
real OpenMP runtime (see DESIGN.md §2).  Model programs are ordinary Python
functions executed over a pool of simulated threads:

* :class:`OpenMPRuntime` owns the scheduler, the worker pool, the simulated
  address space, lock registries, and the attached OMPT tool;
* :class:`ParallelRegion` / :class:`Team` model one ``#pragma omp parallel``
  instance — the encountering thread becomes team member 0 (exactly as in
  OpenMP) and additional members come from the worker pool, so worker
  identities (and hence per-thread trace files) persist across regions;
* threads carry classic offset-span labels (maintained with the
  Mellor-Crummey fork/join/barrier rules) *and* the structural frame stack
  from which barrier-interval labels are derived.

Everything observable by a race detector flows through the
:class:`~repro.omp.ompt.OmptTool` callbacks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..common.config import RunConfig
from ..common.errors import RuntimeModelError
from ..common.ids import NO_REGION, RuntimeIds
from ..memory.accounting import NodeMemory
from ..memory.address_space import AddressSpace
from ..osl.concurrency import IntervalLabel, IntervalPair
from ..osl.labels import Label, after_barrier, after_join, fork, initial_label
from .mutexset import MutexSetTable
from .ompt import OmptTool
from .scheduler import Scheduler, ThreadHandle, spawn_thread


@dataclass(slots=True)
class ParallelRegion:
    """One dynamic instance of a parallel region.

    ``chain_prefix`` is the encountering thread's barrier-interval chain at
    fork time; member intervals extend it with their own leaf pair.  The
    SWORD tool does *not* read it — it reconstructs the same chain offline
    from the pid/ppid metadata — but the test oracle and ARCHER may.
    """

    pid: int
    ppid: int
    level: int
    span: int
    parent_gid: int
    parent_slot: int
    parent_bid: int
    chain_prefix: IntervalLabel
    parent_classic_label: Label


class Team:
    """The set of threads executing one parallel region."""

    def __init__(self, region: ParallelRegion) -> None:
        self.region = region
        self.size = region.span
        self.members: list["SimThread"] = []
        # Barrier rendezvous state (cleared by the last arriver).
        self.barrier_arrived = 0
        self.barrier_waiting: list[ThreadHandle] = []
        # Join bookkeeping: non-master members retired so far.
        self.retired = 0
        self.join_waiter: Optional[ThreadHandle] = None
        # Worksharing constructs, keyed by per-thread encounter sequence
        # (SPMD programs reach constructs in the same order on all threads).
        self.workshares: dict[int, "WorkShare"] = {}
        self.single_claims: dict[int, int] = {}
        # Deferred explicit tasks awaiting execution (tasking extension).
        self.task_queue: list["TaskObj"] = []
        # Access pcs whose event emission the static pre-screener elided
        # (set at registration when the region carries a RegionSpec and
        # every attached tool consented).
        self.static_elide: frozenset[int] = frozenset()


class TaskObj:
    """One explicit OpenMP task (the tasking extension).

    A task is created at a point on its creator's timeline (``create_seq``)
    and executed later, by any team member, at a task scheduling point
    (``taskwait`` or a barrier).  Its own accesses advance its private
    ``tseq`` timeline so nested creations order correctly.
    """

    __slots__ = (
        "task_id", "fn", "args", "creator_entity", "creator_gid",
        "create_seq", "pid", "bid", "tseq", "children", "done", "waited",
    )

    def __init__(
        self,
        task_id: int,
        fn: Callable[..., Any],
        args: tuple,
        creator_entity: int,
        creator_gid: int,
        create_seq: int,
        pid: int,
        bid: int,
    ) -> None:
        self.task_id = task_id
        self.fn = fn
        self.args = args
        self.creator_entity = creator_entity
        self.creator_gid = creator_gid
        self.create_seq = create_seq
        self.pid = pid
        self.bid = bid
        self.tseq = 0
        self.children: list["TaskObj"] = []
        self.done = False
        self.waited = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TaskObj {self.task_id} by ent {self.creator_entity}>"


class WorkShare:
    """Shared iteration dispenser for dynamic/guided loop schedules."""

    __slots__ = ("total", "next")

    def __init__(self, total: int) -> None:
        self.total = total
        self.next = 0

    def grab(self, chunk: int) -> tuple[int, int] | None:
        """Take the next chunk of iterations, or None when exhausted."""
        if self.next >= self.total:
            return None
        lo = self.next
        hi = min(self.total, lo + chunk)
        self.next = hi
        return lo, hi


@dataclass(slots=True)
class TaskFrame:
    """One thread's membership in one team (stacked for nesting)."""

    team: Team
    slot: int
    bid: int = 0
    ws_seq: int = 0
    #: Implicit-task timeline: advances at task creations and taskwaits.
    tseq: int = 0
    #: Pending explicit children of this implicit task.
    children: list = field(default_factory=list)


class SimLock:
    """A cooperative mutex (``omp_lock_t`` / named critical section)."""

    __slots__ = ("lock_id", "name", "owner", "waiters")

    def __init__(self, lock_id: int, name: str = "") -> None:
        self.lock_id = lock_id
        self.name = name or f"lock-{lock_id}"
        self.owner: Optional["SimThread"] = None
        self.waiters: list[ThreadHandle] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimLock {self.name} id={self.lock_id}>"


class SimThread:
    """One simulated OpenMP runtime thread (a pooled worker or the initial
    thread).  Its identity — and so its SWORD log file — persists across the
    parallel regions it participates in."""

    def __init__(self, gid: int, name: str, runtime: "OpenMPRuntime") -> None:
        self.gid = gid
        self.name = name
        self.runtime = runtime
        self.handle = ThreadHandle(gid, name)
        self.frames: list[TaskFrame] = []
        self.classic_label: Label = initial_label()
        self.held: list[int] = []
        self._msid: Optional[int] = 0  # cached; empty set is msid 0
        self._ops = 0
        # Worker-pool assignment slot, consumed by the worker loop.
        self.assignment: Optional[tuple] = None
        # Explicit tasks this thread is currently executing (innermost last).
        self.task_stack: list[TaskObj] = []

    # -- structural queries --------------------------------------------------

    @property
    def in_parallel(self) -> bool:
        return bool(self.frames)

    @property
    def frame(self) -> TaskFrame:
        if not self.frames:
            raise RuntimeModelError(
                f"{self.name}: operation requires a parallel region context"
            )
        return self.frames[-1]

    @property
    def level(self) -> int:
        """Nesting level: 0 outside regions, 1 in a top-level region, ...

        Uses the region's level, not the frame-stack depth: a pooled worker
        recruited straight into a nested team has one frame but executes at
        the region's depth.
        """
        return self.frames[-1].team.region.level if self.frames else 0

    def interval_chain(self) -> IntervalLabel:
        """Barrier-interval label of the thread's current interval.

        The ancestor part comes from the region (its encountering thread's
        chain at fork time); only the leaf pair is this thread's own.
        """
        if not self.frames:
            return ()
        f = self.frames[-1]
        region = f.team.region
        return region.chain_prefix + (
            IntervalPair(region.pid, f.slot, f.bid, f.team.size),
        )

    def current_msid(self) -> int:
        """Interned id of the currently held mutex set."""
        if self._msid is None:
            self._msid = self.runtime.mutexsets.intern(frozenset(self.held))
        return self._msid

    def current_point(self) -> int:
        """Encoded execution point ``(entity, seq)`` for access tagging."""
        from ..tasking.graph import encode_point

        if self.task_stack:
            task = self.task_stack[-1]
            return encode_point(task.task_id, task.tseq)
        if self.frames:
            return encode_point(0, self.frames[-1].tseq)
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimThread {self.name} gid={self.gid} level={self.level}>"


class OpenMPRuntime:
    """Owner of one simulated program execution.

    Typical use::

        rt = OpenMPRuntime(RunConfig(nthreads=8), tool=my_tool)
        rt.run(program)          # program(master: MasterContext)

    A runtime instance executes exactly one program run; create a fresh one
    per run (tools usually keep per-run state too).
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        tool: OmptTool | None = None,
        accountant: NodeMemory | None = None,
        address_space: AddressSpace | None = None,
    ) -> None:
        self.config = config or RunConfig()
        self.config.validate()
        self.ids = RuntimeIds()
        self.scheduler = Scheduler(self.config.scheduler)
        self.tool = tool or OmptTool()
        self.accountant = accountant
        self.space = address_space or AddressSpace(accountant)
        self.mutexsets = MutexSetTable()
        self._locks: dict[int, SimLock] = {}
        self._critical: dict[str, SimLock] = {}
        self._idle_workers: list[SimThread] = []
        self._all_threads: list[SimThread] = []
        self._ran = False
        self.initial_thread: Optional[SimThread] = None

    # -- top-level run --------------------------------------------------------

    def run(self, program: Callable[..., Any], *args: Any) -> Any:
        """Execute ``program(master, *args)`` to completion.

        Returns the program's return value; re-raises the first failure of
        any simulated thread (including :class:`SimulatedOOMError` from tool
        memory charges).
        """
        from .context import MasterContext  # local import: cycle with context

        if self._ran:
            raise RuntimeModelError("an OpenMPRuntime instance runs only once")
        self._ran = True

        init = SimThread(self.ids.thread.next(), "initial", self)
        self.initial_thread = init
        self._all_threads.append(init)
        self.scheduler.register(init.handle)
        self.tool.on_run_begin(self)

        result: dict[str, Any] = {}

        def _main() -> None:
            result["value"] = program(MasterContext(self, init), *args)

        spawn_thread(self.scheduler, init.handle, _main)
        self.scheduler.start_initial(init.handle)
        self.scheduler.completed.wait()
        self.scheduler.request_shutdown()
        for th in self._all_threads:
            py = th.handle.py_thread
            if py is not None and py is not threading.current_thread():
                py.join(timeout=30.0)
        if self.scheduler.failure is not None:
            raise self.scheduler.failure
        self.tool.on_run_end(self)
        return result.get("value")

    # -- allocation (delegates; sequential code is not instrumented) ----------

    def alloc_array(self, name, shape, dtype=None, **kw):
        import numpy as np

        return self.space.alloc_array(name, shape, dtype or np.float64, **kw)

    # -- locks -----------------------------------------------------------------

    def new_lock(self, name: str = "") -> SimLock:
        """Create a fresh mutex (``omp_init_lock``)."""
        lock = SimLock(self.ids.lock.next(), name)
        self._locks[lock.lock_id] = lock
        return lock

    def critical_lock(self, name: str) -> SimLock:
        """The process-wide lock backing a named critical section."""
        lock = self._critical.get(name)
        if lock is None:
            lock = self.new_lock(f"critical:{name}")
            self._critical[name] = lock
        return lock

    def lock_acquire(self, th: SimThread, lock: SimLock) -> None:
        """Blocking acquire with an arrival-order switch point.

        The pre-acquire yield is what makes lock-acquisition order depend on
        the scheduler seed — the ingredient of the Figure-1 masking pair.
        """
        self.scheduler.switch(th.handle)
        while lock.owner is not None:
            if lock.owner is th:
                raise RuntimeModelError(
                    f"{th.name}: relock of non-recursive {lock.name}"
                )
            lock.waiters.append(th.handle)
            self.scheduler.switch(th.handle, block=True)
        lock.owner = th
        th.held.append(lock.lock_id)
        th._msid = None
        self.tool.on_mutex_acquired(th, lock.lock_id)

    def lock_release(self, th: SimThread, lock: SimLock) -> None:
        if lock.owner is not th:
            raise RuntimeModelError(
                f"{th.name}: releasing {lock.name} it does not hold"
            )
        self.tool.on_mutex_released(th, lock.lock_id)
        lock.owner = None
        th.held.remove(lock.lock_id)
        th._msid = None
        waiters, lock.waiters = lock.waiters, []
        for h in waiters:
            self.scheduler.make_runnable(h)
        self.scheduler.switch(th.handle)

    # -- explicit tasks (tasking extension) --------------------------------------

    def create_task(
        self, th: SimThread, fn: Callable[..., Any], args: tuple
    ) -> "TaskObj":
        """``#pragma omp task``: defer ``fn(ctx, *args)`` for later execution.

        The creation advances the creator entity's timeline, so accesses
        before and after the creation are distinguishable by the offline
        task-ordering judgment.
        """
        frame = th.frame
        if th.task_stack:
            creator = th.task_stack[-1]
            creator_entity = creator.task_id
            create_seq = creator.tseq
            creator.tseq += 1
            children = creator.children
        else:
            creator_entity = 0
            create_seq = frame.tseq
            frame.tseq += 1
            children = frame.children
        task = TaskObj(
            task_id=self.ids.task.next(),
            fn=fn,
            args=args,
            creator_entity=creator_entity,
            creator_gid=th.gid,
            create_seq=create_seq,
            pid=frame.team.region.pid,
            bid=frame.bid,
        )
        children.append(task)
        frame.team.task_queue.append(task)
        self.tool.on_task_create(th, task)
        self.scheduler.switch(th.handle)  # task creation is a scheduling point
        return task

    def taskwait(self, th: SimThread) -> None:
        """``#pragma omp taskwait``: complete the current entity's children.

        Pending children still in the queue are executed inline by the
        waiting thread (our cooperative stand-in for "the thread schedules
        tasks while it waits"); the wait then stamps every child with the
        creator's post-wait sequence so later accesses are ordered after
        them.
        """
        frame = th.frame
        if th.task_stack:
            entity = th.task_stack[-1]
            children = entity.children
        else:
            entity = None
            children = frame.children
        while True:
            pending = [t for t in children if not t.done]
            if not pending:
                break
            ran_one = False
            for task in pending:
                if task in frame.team.task_queue:
                    frame.team.task_queue.remove(task)
                    self._execute_task(th, task)
                    ran_one = True
            if not ran_one:
                # A child is mid-execution on another member: yield until
                # its executor finishes it.
                self.scheduler.switch(th.handle)
        # Advance the waiting entity's timeline past the wait.
        if entity is not None:
            entity.tseq += 1
            new_seq = entity.tseq
        else:
            frame.tseq += 1
            new_seq = frame.tseq
        waited = [t for t in children if t.done and not t.waited]
        for task in waited:
            task.waited = True
        self.tool.on_taskwait(th, waited, new_seq)
        children.clear()
        self.scheduler.switch(th.handle)

    def _execute_task(self, th: SimThread, task: TaskObj) -> None:
        """Run one deferred task inline on ``th`` (any team member)."""
        from .context import ThreadContext

        self.tool.on_task_begin(th, task)
        th.task_stack.append(task)
        try:
            task.fn(ThreadContext(self, th), *task.args)
        finally:
            th.task_stack.pop()
        # A task's children must complete before the task itself does
        # (implicit taskwait at task end would be `final`; OpenMP only
        # guarantees completion at barriers — leave children queued).
        task.done = True
        self.tool.on_task_end(th, task)

    def _drain_tasks(self, th: SimThread, team: Team) -> None:
        """Execute queued tasks until none remain (barriers do this)."""
        while team.task_queue:
            task = team.task_queue.pop(0)
            self._execute_task(th, task)
            self.scheduler.switch(th.handle)

    # -- barriers ---------------------------------------------------------------

    def barrier(self, th: SimThread) -> None:
        """Team barrier: ends the thread's current barrier interval.

        Arriving threads first drain the team's task queue: OpenMP
        guarantees all explicit tasks complete at a barrier.
        """
        frame = th.frame
        team = frame.team
        self._drain_tasks(th, team)
        self.tool.on_barrier_arrive(th, team.region, frame.bid)
        team.barrier_arrived += 1
        if team.barrier_arrived == team.size:
            team.barrier_arrived = 0
            waiters, team.barrier_waiting = team.barrier_waiting, []
            for h in waiters:
                self.scheduler.make_runnable(h)
            self._depart_barrier(th)
            self.scheduler.switch(th.handle)
        else:
            team.barrier_waiting.append(th.handle)
            self.scheduler.switch(th.handle, block=True)
            self._depart_barrier(th)

    def _depart_barrier(self, th: SimThread) -> None:
        frame = th.frame
        frame.bid += 1
        th.classic_label = after_barrier(th.classic_label)
        self.tool.on_barrier_depart(th, frame.team.region, frame.bid)

    # -- parallel regions ---------------------------------------------------------

    def parallel(
        self,
        me: SimThread,
        nthreads: Optional[int],
        body: Callable[..., Any],
        args: tuple = (),
        static=None,
    ) -> None:
        """Fork a team, run ``body(ctx, *args)`` on every member, and join.

        The encountering thread becomes member 0 and runs the body inline;
        the other members come from the worker pool (created on demand and
        reused across regions, like real OpenMP workers).

        ``static`` is an optional :class:`~repro.static.model.RegionSpec`
        describing the region's access sites.  It is offered to the tool
        (:meth:`~repro.omp.ompt.OmptTool.on_static_region`) before any
        member runs; sites the tool proves race-free have their event
        emission elided for the region's whole execution.
        """
        span = nthreads if nthreads is not None else self.config.nthreads
        if span <= 0:
            raise RuntimeModelError("team size must be positive")
        parent_frame = me.frames[-1] if me.frames else None
        region = ParallelRegion(
            pid=self.ids.parallel.next(),
            ppid=parent_frame.team.region.pid if parent_frame else NO_REGION,
            level=me.level + 1,
            span=span,
            parent_gid=me.gid,
            parent_slot=parent_frame.slot if parent_frame else 0,
            parent_bid=parent_frame.bid if parent_frame else 0,
            chain_prefix=me.interval_chain(),
            parent_classic_label=me.classic_label,
        )
        self.tool.on_parallel_begin(region)
        team = Team(region)
        workers = self._take_workers(span - 1)
        team.members = [me] + workers
        if static is not None:
            # Pre-screening happens with the team formed (verdicts need
            # the real member gids) but before any member executes, so
            # elision is in force for the region's very first access.
            verdicts = self.tool.on_static_region(region, team, static)
            if verdicts is not None:
                team.static_elide = verdicts.elide
        for slot, worker in enumerate(workers, start=1):
            worker.assignment = (team, slot, body, args)
            self.scheduler.make_runnable(worker.handle)

        prefork_label = me.classic_label
        self._run_member(me, team, 0, body, args)

        # Join: wait for every pooled member to retire from the region.
        team.join_waiter = me.handle
        while team.retired < span - 1:
            self.scheduler.switch(me.handle, block=True)
        team.join_waiter = None

        me.classic_label = after_join(prefork_label)
        self.tool.on_parallel_end(region)

    def _run_member(
        self,
        th: SimThread,
        team: Team,
        slot: int,
        body: Callable[..., Any],
        args: tuple,
    ) -> None:
        from .context import ThreadContext  # local import: cycle with context

        region = team.region
        th.frames.append(TaskFrame(team=team, slot=slot))
        th.classic_label = fork(region.parent_classic_label, slot, team.size)
        self.tool.on_implicit_task_begin(th, region, slot)
        if slot > 0:
            # Scheduling point before a worker's body: worker wake-up order
            # is seed-dependent.  The encountering thread (slot 0) continues
            # without yielding, exactly like a real runtime — the "master
            # got a head start" behaviour the paper's §II eviction example
            # builds on.
            self.scheduler.switch(th.handle)
        try:
            body(ThreadContext(self, th), *args)
        except BaseException:
            # Unwind without the implicit barrier: the scheduler aborts the
            # whole run, so teammates blocked at the barrier are woken.
            th.frames.pop()
            raise
        self.barrier(th)  # implicit region-end barrier
        self.tool.on_implicit_task_end(th, region, slot)
        th.frames.pop()

    # -- worker pool -----------------------------------------------------------

    def _take_workers(self, k: int) -> list[SimThread]:
        taken: list[SimThread] = []
        # Deterministic reuse: lowest-gid idle workers first.
        self._idle_workers.sort(key=lambda w: w.gid)
        while self._idle_workers and len(taken) < k:
            taken.append(self._idle_workers.pop(0))
        while len(taken) < k:
            taken.append(self._spawn_worker())
        return taken

    def _spawn_worker(self) -> SimThread:
        gid = self.ids.thread.next()
        worker = SimThread(gid, f"worker-{gid}", self)
        self._all_threads.append(worker)
        self.scheduler.register(worker.handle)
        spawn_thread(self.scheduler, worker.handle, lambda: self._worker_main(worker))
        return worker

    def _worker_main(self, worker: SimThread) -> None:
        self.tool.on_thread_begin(worker)
        try:
            while True:
                assignment = worker.assignment
                worker.assignment = None
                if assignment is None:
                    break
                team, slot, body, args = assignment
                self._run_member(worker, team, slot, body, args)
                self._retire_member(worker, team)
                self._idle_workers.append(worker)
                self.scheduler.park_idle(worker.handle)
        finally:
            if not self.scheduler.aborting:
                self.tool.on_thread_end(worker)

    def _retire_member(self, worker: SimThread, team: Team) -> None:
        team.retired += 1
        if team.retired == team.size - 1 and team.join_waiter is not None:
            self.scheduler.make_runnable(team.join_waiter)

    # -- access emission ---------------------------------------------------------

    def emit_access(self, th: SimThread, access) -> None:
        """Forward an instrumented access to the tool, with periodic yields."""
        self.tool.on_access(th, access)
        every = self.config.scheduler.yield_every
        if every > 0:
            th._ops += 1
            if th._ops >= every:
                th._ops = 0
                self.scheduler.switch(th.handle)

    def emit_access_batch(self, th: SimThread, batch) -> None:
        """Forward a columnar access batch to the tool.

        Yield accounting charges the full batch size so schedules with
        ``yield_every`` still switch at the same access-count cadence; the
        switch lands at the batch boundary (batches are emitted at loop-
        nest granularity, where a scheduling point is natural).
        """
        self.tool.on_access_batch(th, batch)
        every = self.config.scheduler.yield_every
        if every > 0:
            th._ops += len(batch)
            if th._ops >= every:
                th._ops = 0
                self.scheduler.switch(th.handle)

    def elide_access(self, th: SimThread, count: int = 1) -> None:
        """Suppress ``count`` accesses at a statically proven site.

        The tool sees only a counter tick (no event data), but the yield
        accounting is byte-for-byte the accounting :meth:`emit_access` /
        :meth:`emit_access_batch` would have charged — interleavings under
        ``yield_every`` are identical with the pre-screener on or off,
        which is what keeps race sets byte-identical across the two.
        """
        self.tool.on_access_elided(th, count)
        every = self.config.scheduler.yield_every
        if every > 0:
            th._ops += count
            if th._ops >= every:
                th._ops = 0
                self.scheduler.switch(th.handle)

    def yield_point(self, th: SimThread) -> None:
        """Explicit scheduling point (used between dynamic-schedule chunks)."""
        self.scheduler.switch(th.handle)
