"""Interning of mutex sets.

Every access event carries the set of mutexes its thread held at the time —
SWORD's interval-tree nodes need it for the lockset part of the race check.
Sets are interned to small integers (``msid``) so that fixed-width trace
records can refer to them; the table is serialised alongside the logs.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

#: msid of the empty mutex set (never written to the table explicitly).
EMPTY_MSID = 0


class MutexSetTable:
    """Bidirectional intern table ``frozenset[int] <-> msid``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_set: dict[frozenset[int], int] = {frozenset(): EMPTY_MSID}
        self._by_id: dict[int, frozenset[int]] = {EMPTY_MSID: frozenset()}
        self._next = 1

    def intern(self, mutexes: frozenset[int]) -> int:
        """Return the msid for ``mutexes``, interning on first use."""
        with self._lock:
            existing = self._by_set.get(mutexes)
            if existing is not None:
                return existing
            msid = self._next
            self._next += 1
            self._by_set[mutexes] = msid
            self._by_id[msid] = mutexes
            return msid

    def get(self, msid: int) -> frozenset[int]:
        """Return the mutex set interned as ``msid``."""
        with self._lock:
            try:
                return self._by_id[msid]
            except KeyError:
                raise KeyError(f"unknown mutex-set id {msid}") from None

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_id)

    def disjoint(self, msid_a: int, msid_b: int) -> bool:
        """True when the two interned sets share no mutex.

        This is the lockset half of SWORD's race condition: two concurrent
        conflicting accesses race only if their mutex sets are disjoint.
        """
        if msid_a == EMPTY_MSID or msid_b == EMPTY_MSID:
            return True
        if msid_a == msid_b:
            return False
        return self.get(msid_a).isdisjoint(self.get(msid_b))

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise the table as JSON (part of the trace directory)."""
        with self._lock:
            payload = {str(k): sorted(v) for k, v in self._by_id.items()}
        Path(path).write_text(json.dumps(payload, indent=0, sort_keys=True))

    @classmethod
    def load(cls, path: str | Path) -> "MutexSetTable":
        """Rebuild a table saved by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        table = cls()
        with table._lock:
            for key, members in payload.items():
                msid = int(key)
                fs = frozenset(int(m) for m in members)
                table._by_id[msid] = fs
                table._by_set[fs] = msid
                table._next = max(table._next, msid + 1)
        return table
