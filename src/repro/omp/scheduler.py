"""Cooperative scheduler for the simulated OpenMP runtime.

Model threads are real Python threads, but exactly **one** runs at a time:
control is handed over explicitly at *switch points* (synchronisation
operations and optional periodic yields).  This gives the runtime full,
seed-deterministic control over the interleaving — which is what lets the
experiments reproduce schedule-dependent effects such as the Figure-1
happens-before race masking — while letting model programs be written as
ordinary imperative code with blocking barriers and locks.

The design is classic baton passing: each thread owns a private
:class:`threading.Event`; a thread giving up control picks the next runnable
thread under the scheduler lock, sets that thread's event, and waits on its
own.  Because only the baton holder ever mutates shared runtime state, the
runtime internals need no further locking.
"""

from __future__ import annotations

import random
import threading
from typing import Callable, Optional

from ..common.config import SchedulerConfig
from ..common.errors import DeadlockError

# Thread lifecycle states.
CREATED = "created"
RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
IDLE = "idle"  # pool worker parked between team assignments
DONE = "done"


class AbortRun(BaseException):
    """Internal unwind signal: the run failed elsewhere; exit quietly.

    Derives from ``BaseException`` so model-program ``except Exception``
    handlers cannot swallow it.
    """


class ThreadHandle:
    """Scheduler-facing identity of one simulated thread."""

    __slots__ = ("gid", "name", "state", "event", "py_thread")

    def __init__(self, gid: int, name: str) -> None:
        self.gid = gid
        self.name = name
        self.state = CREATED
        self.event = threading.Event()
        self.py_thread: Optional[threading.Thread] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ThreadHandle {self.name} gid={self.gid} {self.state}>"


class Scheduler:
    """Seed-deterministic cooperative scheduler.

    Policies:
        ``random``: at every switch point, pick uniformly among runnable
        threads using the configured seed.
        ``round-robin``: cycle through runnable threads by gid.
    """

    def __init__(self, config: SchedulerConfig) -> None:
        config.validate()
        self.config = config
        self._rng = random.Random(config.seed)
        self._lock = threading.Lock()
        self._handles: list[ThreadHandle] = []
        self._last_gid = -1
        self.aborting = False
        self.failure: Optional[BaseException] = None
        self.completed = threading.Event()
        self._live = 0  # threads not DONE

    # -- registration ------------------------------------------------------

    def register(self, handle: ThreadHandle) -> None:
        """Add a thread in CREATED state; it runs only once made runnable."""
        with self._lock:
            self._handles.append(handle)
            self._live += 1

    def make_runnable(self, handle: ThreadHandle) -> None:
        """CREATED/IDLE/BLOCKED -> RUNNABLE (does not transfer the baton)."""
        with self._lock:
            if handle.state in (DONE, RUNNING):
                raise RuntimeError(
                    f"cannot make {handle!r} runnable from state {handle.state}"
                )
            handle.state = RUNNABLE

    # -- baton passing -----------------------------------------------------

    def start_initial(self, handle: ThreadHandle) -> None:
        """Hand the baton to the very first thread of the run."""
        with self._lock:
            handle.state = RUNNING
        handle.event.set()

    def switch(self, me: ThreadHandle, *, block: bool = False) -> None:
        """Give up the baton.

        With ``block=True`` the caller must have arranged for somebody to
        call :meth:`make_runnable` on it later (barrier release, lock
        release, team join); with ``block=False`` the caller stays runnable
        and may be re-picked immediately.
        """
        with self._lock:
            me.state = BLOCKED if block else RUNNABLE
            nxt = self._pick_locked()
            if nxt is None:
                self._no_runnable_locked(me)
                # _no_runnable_locked either raised or aborted; if aborted we
                # fall through to wait and promptly raise AbortRun below.
            elif nxt is me:
                me.state = RUNNING
                return
            else:
                nxt.state = RUNNING
                nxt.event.set()
        me.event.wait()
        me.event.clear()
        if self.aborting:
            raise AbortRun()

    def park_idle(self, me: ThreadHandle) -> None:
        """Pool worker finished its assignment: hand off and wait for work.

        Returns when the worker has been assigned again (made runnable and
        scheduled) or raises :class:`AbortRun` on teardown.
        """
        with self._lock:
            me.state = IDLE
            nxt = self._pick_locked()
            if nxt is None:
                self._no_runnable_locked(me)
            else:
                nxt.state = RUNNING
                nxt.event.set()
        me.event.wait()
        me.event.clear()
        if self.aborting:
            raise AbortRun()

    def finish(self, me: ThreadHandle) -> None:
        """The calling thread is done for good; pass the baton on."""
        with self._lock:
            if me.state != DONE:
                me.state = DONE
                self._live -= 1
            nxt = self._pick_locked()
            if nxt is not None:
                nxt.state = RUNNING
                nxt.event.set()
            elif self._live == 0 or self.aborting or self._only_idle_locked():
                # Idle pool workers do not block completion: the run driver
                # shuts them down after the program finishes.
                self.completed.set()
            else:
                self._begin_abort_locked(
                    DeadlockError(
                        "no runnable thread remains; blocked threads: "
                        + ", ".join(
                            h.name for h in self._handles if h.state == BLOCKED
                        )
                    )
                )

    def fail(self, exc: BaseException) -> None:
        """Record a failure and abort every other thread."""
        with self._lock:
            self._begin_abort_locked(exc)

    def request_shutdown(self) -> None:
        """Wake idle pool workers for teardown at the end of a run."""
        with self._lock:
            self.aborting = True
            for h in self._handles:
                if h.state not in (DONE,):
                    h.event.set()

    # -- internals ----------------------------------------------------------

    def _begin_abort_locked(self, exc: BaseException) -> None:
        if self.failure is None:
            self.failure = exc
        self.aborting = True
        for h in self._handles:
            if h.state not in (DONE, RUNNING):
                h.event.set()
        self.completed.set()

    def _only_idle_locked(self) -> bool:
        return all(h.state in (DONE, IDLE) for h in self._handles)

    def _no_runnable_locked(self, me: ThreadHandle) -> None:
        """Called with the lock held when no thread can be picked."""
        if self.aborting:
            return
        live_blocked = [
            h for h in self._handles if h.state in (BLOCKED,) and h is not me
        ]
        if me.state == BLOCKED:
            live_blocked.append(me)
        self._begin_abort_locked(
            DeadlockError(
                "deadlock: all live threads are blocked: "
                + ", ".join(h.name for h in live_blocked)
            )
        )

    def _pick_locked(self) -> Optional[ThreadHandle]:
        runnable = [h for h in self._handles if h.state == RUNNABLE]
        if not runnable:
            return None
        if self.config.policy == "round-robin":
            runnable.sort(key=lambda h: h.gid)
            for h in runnable:
                if h.gid > self._last_gid:
                    self._last_gid = h.gid
                    return h
            chosen = runnable[0]
            self._last_gid = chosen.gid
            return chosen
        chosen = self._rng.choice(sorted(runnable, key=lambda h: h.gid))
        self._last_gid = chosen.gid
        return chosen


def spawn_thread(
    scheduler: Scheduler, handle: ThreadHandle, main: Callable[[], None]
) -> None:
    """Start the Python thread backing ``handle``.

    The thread waits for its first baton handoff, runs ``main``, reports any
    failure to the scheduler, and retires.
    """

    def _runner() -> None:
        handle.event.wait()
        handle.event.clear()
        if scheduler.aborting:
            scheduler.finish(handle)
            return
        try:
            main()
        except AbortRun:
            pass
        except BaseException as exc:  # noqa: BLE001 - must capture all
            scheduler.fail(exc)
        finally:
            scheduler.finish(handle)

    t = threading.Thread(target=_runner, name=handle.name, daemon=True)
    handle.py_thread = t
    t.start()
