"""Simulated OpenMP runtime: the substrate under both race detectors."""

from .context import MasterContext, ThreadContext
from .mutexset import EMPTY_MSID, MutexSetTable
from .ompt import OmptTool, ToolMux
from .recording import RecordingTool, TapeEntry
from .runtime import (
    OpenMPRuntime,
    ParallelRegion,
    SimLock,
    SimThread,
    TaskFrame,
    Team,
    WorkShare,
)
from .scheduler import Scheduler, ThreadHandle

__all__ = [
    "EMPTY_MSID",
    "MasterContext",
    "MutexSetTable",
    "OmptTool",
    "OpenMPRuntime",
    "ParallelRegion",
    "RecordingTool",
    "Scheduler",
    "SimLock",
    "SimThread",
    "TapeEntry",
    "TaskFrame",
    "Team",
    "ThreadContext",
    "ThreadHandle",
    "ToolMux",
    "WorkShare",
]
