"""User-facing contexts for model programs.

A model workload is a function ``program(master: MasterContext)``.  The
master context allocates shared arrays and forks parallel regions; inside a
region each team member receives a :class:`ThreadContext` offering the
OpenMP-shaped surface: thread ids, worksharing loops with OpenMP schedules
(including ``nowait``), barriers, critical sections and locks, atomics, and
``single``/``master``/``sections`` — plus the *instrumented* memory-access
API that both performs the real NumPy operation and emits the access event
race detectors consume.

Accesses in sequential context (the master outside any region) touch the
arrays directly and are **not** instrumented, matching the paper ("we ignore
sequential instructions as they cannot race").
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from ..common.errors import RuntimeModelError
from ..common.events import Access, AccessBatch
from ..common.sourceloc import pc_of
from ..memory.address_space import SharedArray
from .runtime import OpenMPRuntime, SimLock, SimThread, WorkShare


def _auto_pc(depth: int = 2) -> int:
    """Derive a program counter from the caller's source position.

    Hot workload loops should pass an explicit ``pc`` (interned once via
    :func:`repro.common.sourceloc.pc_of`); this fallback keeps casual code
    and tests readable.
    """
    frame = sys._getframe(depth)
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    return pc_of(filename, frame.f_lineno, code.co_name)


class MasterContext:
    """Sequential (non-instrumented) context of the initial thread."""

    def __init__(self, runtime: OpenMPRuntime, thread: SimThread) -> None:
        self.runtime = runtime
        self.thread = thread

    # -- allocation ------------------------------------------------------------

    def alloc_array(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: Any = np.float64,
        *,
        fill: float | int | None = 0,
        sim_scale: int = 1,
    ) -> SharedArray:
        """Allocate a shared array in the simulated address space."""
        return self.runtime.space.alloc_array(
            name, shape, dtype, fill=fill, sim_scale=sim_scale
        )

    def alloc_scalar(
        self, name: str, dtype: Any = np.float64, *, fill: float | int = 0
    ) -> SharedArray:
        """Allocate a shared scalar."""
        return self.runtime.space.alloc_scalar(name, dtype, fill=fill)

    # -- locks -------------------------------------------------------------------

    def new_lock(self, name: str = "") -> SimLock:
        """Create a mutex usable from any region of this run."""
        return self.runtime.new_lock(name)

    # -- regions -------------------------------------------------------------------

    def parallel(
        self,
        body: Callable[..., Any],
        *args: Any,
        nthreads: Optional[int] = None,
        static: Optional[Any] = None,
    ) -> None:
        """Fork a parallel region (``#pragma omp parallel``).

        ``static`` optionally carries a
        :class:`~repro.static.model.RegionSpec` describing the region's
        affine access sites; the attached tool pre-screens them before
        the body runs and proven-free sites skip event emission.
        """
        self.runtime.parallel(self.thread, nthreads, body, args, static=static)

    def parallel_for(
        self,
        n: int,
        body: Callable[..., Any],
        *args: Any,
        nthreads: Optional[int] = None,
        schedule: str = "static",
        chunk: Optional[int] = None,
        static: Optional[Any] = None,
    ) -> None:
        """``#pragma omp parallel for``: fork a team and distribute ``n``
        iterations, calling ``body(ctx, i, *args)`` per iteration."""

        def _region(ctx: "ThreadContext") -> None:
            for i in ctx.for_range(n, schedule=schedule, chunk=chunk):
                body(ctx, i, *args)

        self.runtime.parallel(self.thread, nthreads, _region, (), static=static)

    # -- direct (uninstrumented) data helpers ---------------------------------------

    @staticmethod
    def data(arr: SharedArray) -> np.ndarray:
        """Raw backing array for sequential setup/verification code."""
        return arr.data


class ThreadContext:
    """API surface available to a team member inside a parallel region."""

    def __init__(self, runtime: OpenMPRuntime, thread: SimThread) -> None:
        self.runtime = runtime
        self.thread = thread
        self._frame = thread.frame
        # Sites the static pre-screener proved race-free (or reported
        # without running): their events are suppressed before emission.
        self._elide = self._frame.team.static_elide

    # -- identity -------------------------------------------------------------------

    @property
    def tid(self) -> int:
        """``omp_get_thread_num()``: slot within the current team."""
        return self._frame.slot

    @property
    def nthreads(self) -> int:
        """``omp_get_num_threads()``: current team size."""
        return self._frame.team.size

    @property
    def level(self) -> int:
        """``omp_get_level()``: nesting depth of the current region."""
        return self.thread.level

    @property
    def gid(self) -> int:
        """Global simulated-thread id (identifies the per-thread log file)."""
        return self.thread.gid

    # -- instrumented memory accesses -------------------------------------------------

    def _emit(
        self,
        addr: int,
        size: int,
        count: int,
        stride: int,
        is_write: bool,
        is_atomic: bool,
        pc: Optional[int],
    ) -> None:
        if self._elide and pc is not None and pc in self._elide:
            # Data movement already happened in the caller; only the
            # event is suppressed (yield accounting still charged).
            self.runtime.elide_access(self.thread, 1)
            return
        access = Access(
            addr=addr,
            size=size,
            count=count,
            stride=stride,
            is_write=is_write,
            is_atomic=is_atomic,
            pc=pc if pc is not None else _auto_pc(3),
            msid=self.thread.current_msid(),
            task_point=self.thread.current_point(),
        )
        self.runtime.emit_access(self.thread, access)

    def record_batch(
        self,
        addrs: np.ndarray,
        *,
        size: int,
        is_write: bool,
        is_atomic: bool = False,
        pc: "np.ndarray | int | None" = None,
        count: "np.ndarray | int" = 1,
        stride: "np.ndarray | int" = 0,
    ) -> None:
        """Emit one columnar batch of access events (the fast path).

        ``addrs`` are simulated byte addresses; mutex set and task point
        are taken from the current thread state (one batch therefore must
        not straddle a lock acquire/release or task boundary — emit per
        loop nest, where those are constant).  Semantically equivalent to
        one scalar event per element.
        """
        addrs = np.ascontiguousarray(addrs, dtype=np.uint64)
        if addrs.shape[0] == 0:
            return
        if self._elide and isinstance(pc, int) and pc in self._elide:
            # One charge per element: AccessBatch length == len(addrs),
            # so yield accounting matches the instrumented path exactly.
            self.runtime.elide_access(self.thread, addrs.shape[0])
            return
        batch = AccessBatch.make(
            addrs,
            size=size,
            is_write=is_write,
            is_atomic=is_atomic,
            pc=pc if pc is not None else _auto_pc(2),
            msid=self.thread.current_msid(),
            count=count,
            stride=stride,
            task_point=self.thread.current_point(),
        )
        self.runtime.emit_access_batch(self.thread, batch)

    def touch_range(
        self,
        arr: SharedArray,
        lo: int,
        hi: int,
        *,
        is_write: bool,
        step: int = 1,
        pc: Optional[int] = None,
    ) -> None:
        """Record per-element accesses to ``arr[lo:hi:step]`` as one batch.

        Unlike :meth:`read_slice`/:meth:`write_slice` (a single range
        event), this emits the event stream a per-iteration scalar loop
        would — ``(hi-lo+step-1)//step`` scalar records — but hands them to
        the tool as one columnar batch.  Use it to vectorise dense loop
        nests without changing the recorded trace.  Data movement is the
        caller's business (do it with NumPy on ``m.data(arr)``).
        """
        if step <= 0:
            raise RuntimeModelError("touch_range step must be positive")
        n = arr.data.size
        if not (0 <= lo <= hi <= n):
            raise IndexError(
                f"range [{lo}, {hi}) out of bounds for {arr.name!r} of size {n}"
            )
        if lo == hi:
            return
        item = arr.itemsize
        addrs = arr.addr(lo) + np.arange(0, hi - lo, step, dtype=np.uint64) * np.uint64(item)
        self.record_batch(
            addrs,
            size=item,
            is_write=is_write,
            pc=pc if pc is not None else _auto_pc(2),
        )

    def read(self, arr: SharedArray, index: int, pc: Optional[int] = None):
        """Instrumented scalar load of ``arr[index]``."""
        value = arr.data.reshape(-1)[index]
        self._emit(arr.addr(index), arr.itemsize, 1, 0, False, False, pc)
        return value

    def write(
        self, arr: SharedArray, index: int, value, pc: Optional[int] = None
    ) -> None:
        """Instrumented scalar store ``arr[index] = value``."""
        arr.data.reshape(-1)[index] = value
        self._emit(arr.addr(index), arr.itemsize, 1, 0, True, False, pc)

    def read_slice(
        self,
        arr: SharedArray,
        lo: int,
        hi: int,
        step: int = 1,
        pc: Optional[int] = None,
    ) -> np.ndarray:
        """Instrumented bulk load of ``arr[lo:hi:step]`` (one range event)."""
        if step <= 0:
            raise RuntimeModelError("slice step must be positive")
        view = arr.data.reshape(-1)[lo:hi:step]
        n = view.shape[0]
        if n > 0:
            self._emit(
                arr.addr(lo), arr.itemsize, n, step * arr.itemsize, False, False, pc
            )
        return view

    def write_slice(
        self,
        arr: SharedArray,
        lo: int,
        hi: int,
        values,
        step: int = 1,
        pc: Optional[int] = None,
    ) -> None:
        """Instrumented bulk store into ``arr[lo:hi:step]`` (one range event)."""
        if step <= 0:
            raise RuntimeModelError("slice step must be positive")
        flat = arr.data.reshape(-1)
        flat[lo:hi:step] = values
        n = flat[lo:hi:step].shape[0]
        if n > 0:
            self._emit(
                arr.addr(lo), arr.itemsize, n, step * arr.itemsize, True, False, pc
            )

    def read_elems(
        self, arr: SharedArray, indices: Sequence[int], pc: Optional[int] = None
    ) -> np.ndarray:
        """Instrumented gather: one scalar access event per index.

        This models indirect accesses (``a[idx[i]]``), the pattern behind the
        DataRaceBench ``indirectaccess`` benchmarks.
        """
        flat = arr.data.reshape(-1)
        idx = np.asarray(indices, dtype=np.intp)
        out = flat[idx]
        resolved = pc if pc is not None else _auto_pc(2)
        self.record_batch(
            self._elem_addrs(arr, idx), size=arr.itemsize,
            is_write=False, pc=resolved,
        )
        return out

    def write_elems(
        self,
        arr: SharedArray,
        indices: Sequence[int],
        values,
        pc: Optional[int] = None,
    ) -> None:
        """Instrumented scatter: one scalar access event per index."""
        flat = arr.data.reshape(-1)
        idx = np.asarray(indices, dtype=np.intp)
        flat[idx] = values
        resolved = pc if pc is not None else _auto_pc(2)
        self.record_batch(
            self._elem_addrs(arr, idx), size=arr.itemsize,
            is_write=True, pc=resolved,
        )

    @staticmethod
    def _elem_addrs(arr: SharedArray, idx: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`SharedArray.addr` over an index array."""
        n = arr.data.size
        if idx.size and (idx.min() < -n or idx.max() >= n):
            raise IndexError(f"index out of range for {arr.name!r} of size {n}")
        idx = np.where(idx < 0, idx + n, idx).astype(np.int64)
        return (arr.addr(0) + idx * arr.itemsize).astype(np.uint64)

    # -- atomics -----------------------------------------------------------------------

    def atomic_add(
        self, arr: SharedArray, index: int, value, pc: Optional[int] = None
    ):
        """``#pragma omp atomic`` read-modify-write; returns the new value."""
        flat = arr.data.reshape(-1)
        flat[index] += value
        self._emit(arr.addr(index), arr.itemsize, 1, 0, True, True, pc)
        return flat[index]

    def atomic_read(self, arr: SharedArray, index: int, pc: Optional[int] = None):
        """``#pragma omp atomic read``."""
        value = arr.data.reshape(-1)[index]
        self._emit(arr.addr(index), arr.itemsize, 1, 0, False, True, pc)
        return value

    def atomic_write(
        self, arr: SharedArray, index: int, value, pc: Optional[int] = None
    ) -> None:
        """``#pragma omp atomic write``."""
        arr.data.reshape(-1)[index] = value
        self._emit(arr.addr(index), arr.itemsize, 1, 0, True, True, pc)

    # -- synchronisation -----------------------------------------------------------------

    def barrier(self) -> None:
        """``#pragma omp barrier`` — ends the current barrier interval."""
        if self.thread.task_stack:
            raise RuntimeModelError(
                "barriers inside explicit tasks are illegal OpenMP"
            )
        self.runtime.barrier(self.thread)

    @contextmanager
    def critical(self, name: str = "<default>") -> Iterator[None]:
        """``#pragma omp critical [name]``."""
        lock = self.runtime.critical_lock(name)
        self.runtime.lock_acquire(self.thread, lock)
        try:
            yield
        finally:
            self.runtime.lock_release(self.thread, lock)

    @contextmanager
    def locked(self, lock: SimLock) -> Iterator[None]:
        """``omp_set_lock`` / ``omp_unset_lock`` as a context manager."""
        self.runtime.lock_acquire(self.thread, lock)
        try:
            yield
        finally:
            self.runtime.lock_release(self.thread, lock)

    def acquire(self, lock: SimLock) -> None:
        """``omp_set_lock``."""
        self.runtime.lock_acquire(self.thread, lock)

    def release(self, lock: SimLock) -> None:
        """``omp_unset_lock``."""
        self.runtime.lock_release(self.thread, lock)

    def yield_point(self) -> None:
        """Voluntary scheduling point (interleaving diversity in models)."""
        self.runtime.yield_point(self.thread)

    # -- worksharing ------------------------------------------------------------------------

    def _next_workshare(self, total: int) -> WorkShare:
        frame = self._frame
        seq = frame.ws_seq
        frame.ws_seq += 1
        team = frame.team
        ws = team.workshares.get(seq)
        if ws is None:
            ws = WorkShare(total)
            team.workshares[seq] = ws
        elif ws.total != total:
            raise RuntimeModelError(
                "worksharing construct mismatch across team members "
                f"(expected {ws.total} iterations, got {total})"
            )
        return ws

    def for_range(
        self,
        n: int,
        schedule: str = "static",
        chunk: Optional[int] = None,
        nowait: bool = False,
    ) -> Iterator[int]:
        """``#pragma omp for`` over ``range(n)``.

        Yields this thread's iterations according to the OpenMP schedule;
        runs the implicit end-of-loop barrier unless ``nowait``.
        """
        if schedule == "static":
            yield from self._static_iters(n, chunk)
        elif schedule in ("dynamic", "guided"):
            ws = self._next_workshare(n)
            size = self.nthreads
            while True:
                if schedule == "dynamic":
                    c = chunk or 1
                else:  # guided: decreasing chunks, at least `chunk or 1`
                    remaining = ws.total - ws.next
                    c = max(chunk or 1, remaining // (2 * size) or 1)
                grabbed = ws.grab(c)
                if grabbed is None:
                    break
                lo, hi = grabbed
                yield from range(lo, hi)
                self.runtime.yield_point(self.thread)
        else:
            raise RuntimeModelError(f"unknown schedule {schedule!r}")
        if not nowait:
            self.barrier()

    def _static_iters(self, n: int, chunk: Optional[int]) -> Iterator[int]:
        size = self.nthreads
        slot = self.tid
        if chunk is None:
            # Default static: one contiguous chunk per thread.
            lo = slot * n // size
            hi = (slot + 1) * n // size
            yield from range(lo, hi)
        else:
            # static,chunk: round-robin blocks of `chunk`.
            for start in range(slot * chunk, n, size * chunk):
                yield from range(start, min(start + chunk, n))

    def static_chunk(self, n: int) -> tuple[int, int]:
        """This thread's contiguous ``[lo, hi)`` under the default static
        schedule — the idiomatic bounds for vectorised bulk accesses."""
        size = self.nthreads
        slot = self.tid
        return slot * n // size, (slot + 1) * n // size

    @contextmanager
    def single(self, nowait: bool = False) -> Iterator[bool]:
        """``#pragma omp single``: yields True on the claiming thread.

        Usage::

            with ctx.single() as mine:
                if mine:
                    ...
        """
        frame = self._frame
        seq = frame.ws_seq
        frame.ws_seq += 1
        claims = frame.team.single_claims
        mine = False
        if seq not in claims:
            claims[seq] = self.thread.gid
            mine = True
        yield mine
        if not nowait:
            self.barrier()

    def master(self) -> bool:
        """``#pragma omp master``: True on team member 0 (no barrier)."""
        return self.tid == 0

    def sections(
        self, section_bodies: Iterable[Callable[["ThreadContext"], Any]],
        nowait: bool = False,
    ) -> None:
        """``#pragma omp sections``: distribute bodies across the team."""
        bodies = list(section_bodies)
        ws = self._next_workshare(len(bodies))
        while True:
            grabbed = ws.grab(1)
            if grabbed is None:
                break
            lo, _ = grabbed
            bodies[lo](self)
            self.runtime.yield_point(self.thread)
        if not nowait:
            self.barrier()

    # -- explicit tasks (tasking extension) ----------------------------------------------

    def task(self, fn: Callable[..., Any], *args: Any):
        """``#pragma omp task``: defer ``fn(ctx, *args)``.

        The task may later execute on *any* team member (at a ``taskwait``
        or barrier), so its accesses are concurrent with everything its
        creator did after the creation point — including the executing
        thread's own surrounding code.
        """
        return self.runtime.create_task(self.thread, fn, args)

    def taskwait(self) -> None:
        """``#pragma omp taskwait``: wait for the current entity's children."""
        self.runtime.taskwait(self.thread)

    # -- nested parallelism -----------------------------------------------------------------

    def parallel(
        self,
        body: Callable[..., Any],
        *args: Any,
        nthreads: Optional[int] = None,
    ) -> None:
        """Nested ``#pragma omp parallel`` from inside a region."""
        if self.thread.task_stack:
            raise RuntimeModelError(
                "nested parallel regions inside explicit tasks are not modelled"
            )
        self.runtime.parallel(self.thread, nthreads, body, args)

    # -- reductions ----------------------------------------------------------------------------

    def reduce_add(
        self,
        arr: SharedArray,
        index: int,
        value,
        pc: Optional[int] = None,
    ) -> None:
        """Race-free reduction contribution: critical-protected accumulate.

        Models the combine step the OpenMP runtime performs for
        ``reduction(+: x)`` clauses.
        """
        lock = self.runtime.critical_lock(f"__reduction_{arr.name}_{index}")
        self.runtime.lock_acquire(self.thread, lock)
        try:
            flat = arr.data.reshape(-1)
            flat[index] += value
            self._emit(arr.addr(index), arr.itemsize, 1, 0, True, False, pc)
        finally:
            self.runtime.lock_release(self.thread, lock)
