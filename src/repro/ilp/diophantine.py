"""Exact solver for bounded two-variable linear Diophantine equations.

The paper detects conflicting strided accesses with an integer-linear
constraint system solved by GLPK.  The system (paper §III-B) asks whether

    Δ_0·x_0 + b_0 + s_0  =  a  =  Δ_1·x_1 + b_1 + s_1
    0 <= x_i <= (e_i - b_i)/Δ_i,   0 <= s_i < size_i

has an integer solution.  Fixing the byte offsets ``s_0, s_1`` reduces it to

    Δ_0·x - Δ_1·y = c,   x in [0, n_0),  y in [0, n_1)

which this module solves *exactly* with the extended Euclidean algorithm:
feasible iff gcd(Δ_0, Δ_1) divides c and the one-parameter solution family
intersects the variable boxes.  This is a faithful stand-in for GLPK on this
problem class (and unlike floating-point LP it cannot mis-round); the
branch-free brute-force checker in :mod:`repro.ilp.bruteforce` cross-checks
it in the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import SolverError


def ext_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: returns ``(g, u, v)`` with ``a*u + b*v == g == gcd(a, b)``.

    Works for any integers, including negatives and zero (``gcd(0, 0) == 0``).
    """
    old_r, r = a, b
    old_u, u = 1, 0
    old_v, v = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_u, u = u, old_u - q * u
        old_v, v = v, old_v - q * v
    if old_r < 0:
        old_r, old_u, old_v = -old_r, -old_u, -old_v
    return old_r, old_u, old_v


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    return a // b


@dataclass(frozen=True, slots=True)
class DiophantineSolution:
    """A witness for ``p*x - q*y == c`` within the boxes."""

    x: int
    y: int


def solve_bounded(
    p: int,
    q: int,
    c: int,
    x_max: int,
    y_max: int,
) -> Optional[DiophantineSolution]:
    """Find integers ``x in [0, x_max], y in [0, y_max]`` with ``p*x - q*y == c``.

    ``p`` and ``q`` must be positive (normalised strides).  Returns a witness
    or None when infeasible.
    """
    if p <= 0 or q <= 0:
        raise SolverError("strides must be positive (normalise first)")
    if x_max < 0 or y_max < 0:
        raise SolverError("variable bounds must be non-negative")

    g, u, _v = ext_gcd(p, q)
    if c % g != 0:
        return None

    # Particular solution of p*x - q*y = c:  x0 = u*(c/g), since
    # p*u + q*v = g  =>  p*(u*c/g) - q*(-v*c/g) = c.
    scale = c // g
    x0 = u * scale
    # General family: x = x0 + (q/g)*t,  y = (p*x - c)/q = y0 + (p/g)*t.
    qg = q // g
    pg = p // g

    # t range from 0 <= x <= x_max.
    t_lo = _ceil_div(0 - x0, qg)
    t_hi = _floor_div(x_max - x0, qg)
    if t_lo > t_hi:
        return None

    # y(t) = (p*(x0 + qg*t) - c) / q  — increasing in t (pg > 0).
    def y_of(t: int) -> int:
        return (p * (x0 + qg * t) - c) // q

    # Constrain 0 <= y <= y_max:  y0 + pg*t in [0, y_max].
    y_base = (p * x0 - c) // q  # exact: p*x0 - c is divisible by q*g/g? verify below
    if (p * x0 - c) % q != 0:
        # Should never happen: p*x0 ≡ c (mod q) by construction.
        raise SolverError("internal solver inconsistency")
    t_lo = max(t_lo, _ceil_div(0 - y_base, pg))
    t_hi = min(t_hi, _floor_div(y_max - y_base, pg))
    if t_lo > t_hi:
        return None

    t = t_lo
    x = x0 + qg * t
    y = y_of(t)
    if not (0 <= x <= x_max and 0 <= y <= y_max):
        raise SolverError("witness escaped its box (solver bug)")
    if p * x - q * y != c:
        raise SolverError("witness does not satisfy the equation (solver bug)")
    return DiophantineSolution(x=x, y=y)


def progressions_intersect(
    base_a: int,
    stride_a: int,
    count_a: int,
    base_b: int,
    stride_b: int,
    count_b: int,
) -> Optional[tuple[int, int, int]]:
    """Common *element start* of two arithmetic progressions.

    Returns ``(value, i, j)`` with
    ``value == base_a + stride_a*i == base_b + stride_b*j`` or None.
    Degenerate single-element progressions are handled by treating the
    stride as irrelevant (bound 0 on the index).
    """
    if count_a < 1 or count_b < 1:
        raise SolverError("progression counts must be >= 1")
    sa = stride_a if count_a > 1 else 1
    sb = stride_b if count_b > 1 else 1
    sol = solve_bounded(sa, sb, base_b - base_a, count_a - 1, count_b - 1)
    if sol is None:
        return None
    return (base_a + sa * sol.x, sol.x, sol.y)
