"""Exact integer constraint solving for strided-interval overlap."""

from .bruteforce import bruteforce_addresses, bruteforce_overlap
from .diophantine import (
    DiophantineSolution,
    ext_gcd,
    progressions_intersect,
    solve_bounded,
)
from .memo import SolverMemo
from .model import IntervalConstraint, OverlapSystem, OverlapWitness
from .overlap import OverlapResult, constraint_of, intervals_share_address

__all__ = [
    "DiophantineSolution",
    "IntervalConstraint",
    "OverlapResult",
    "OverlapSystem",
    "OverlapWitness",
    "SolverMemo",
    "bruteforce_addresses",
    "bruteforce_overlap",
    "constraint_of",
    "ext_gcd",
    "intervals_share_address",
    "progressions_intersect",
    "solve_bounded",
]
