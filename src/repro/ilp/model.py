"""The paper's integer-linear constraint model for interval overlap.

§III-B represents every byte address of an interval of thread ``T_i`` as

    Δ_i · x_i + b_i + s_i = a
    0 <= x_i <= (e_i - b_i) / Δ_i
    0 <= s_i < size_i

and reports a common address when the conjunction of two such systems is
satisfiable (the paper feeds it to GLPK).  :class:`OverlapSystem` builds that
system explicitly — so tests and docs can show the same formulation as the
paper, e.g. the Figure-4 example — and solves it exactly by enumerating the
bounded byte-offset difference and delegating each case to the Diophantine
solver.  The search space is ``size_0 + size_1 - 1`` cases (at most 15 for
8-byte accesses), each solved in O(log stride) — no LP relaxation needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.errors import SolverError
from .diophantine import solve_bounded


@dataclass(frozen=True, slots=True)
class IntervalConstraint:
    """One thread's interval as the paper's constraint triple.

    Attributes:
        base: starting byte address ``b``.
        stride: ``Δ`` (positive; normalise descending accesses first).
        count: number of elements (so ``x in [0, count - 1]``, equivalently
            the paper's ``x <= (e - b)/Δ``).
        size: bytes per element (``0 <= s < size``).
    """

    base: int
    stride: int
    count: int
    size: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SolverError("count must be >= 1")
        if self.size < 1:
            raise SolverError("size must be >= 1")
        if self.count > 1 and self.stride < 1:
            raise SolverError("stride must be positive for count > 1")

    @property
    def end(self) -> int:
        """The paper's ``e``: start of the last element."""
        return self.base + (self.count - 1) * self.stride

    def contains(self, addr: int) -> bool:
        """Membership test (used to validate witnesses).

        ``addr`` belongs to the interval iff some element index ``x`` in
        ``[0, count)`` satisfies ``0 <= addr - (base + x*stride) < size``.
        When ``size > stride`` elements overlap, so a whole range of ``x``
        may cover the byte; intersecting that range with the index box
        decides membership in O(1).
        """
        off = addr - self.base
        if off < 0:
            return False
        stride = self.stride if self.count > 1 else 1
        x_hi = off // stride                       # largest x with start <= off
        x_lo = -((-(off - self.size + 1)) // stride)  # ceil((off-size+1)/stride)
        return max(x_lo, 0) <= min(x_hi, self.count - 1)

    def pretty(self, var: str = "x", off: str = "s") -> str:
        """The constraint rendered like the paper's §III-B display."""
        return (
            f"{self.stride}·{var} + {self.base} + {off} = a  ∧  "
            f"0 ≤ {var} ≤ {self.count - 1}  ∧  0 ≤ {off} < {self.size}"
        )


@dataclass(frozen=True, slots=True)
class OverlapWitness:
    """A satisfying assignment of the conjoined system."""

    address: int
    x0: int
    s0: int
    x1: int
    s1: int


class OverlapSystem:
    """Conjunction of two interval constraints over a shared address ``a``."""

    def __init__(self, c0: IntervalConstraint, c1: IntervalConstraint) -> None:
        self.c0 = c0
        self.c1 = c1

    def pretty(self) -> str:
        """Both systems rendered for display (cf. the Figure-4 example)."""
        return (
            "T_0: " + self.c0.pretty("x_0", "s_0") + "\n"
            "T_1: " + self.c1.pretty("x_1", "s_1")
        )

    def solve(self) -> Optional[OverlapWitness]:
        """Find a shared byte address, or None when the system is infeasible.

        Feasibility requires ``Δ0·x0 + b0 + s0 == Δ1·x1 + b1 + s1``; for each
        value of ``d = s1 - s0`` (in ``[-(size0 - 1), size1 - 1]``) this is a
        bounded two-variable Diophantine equation.
        """
        c0, c1 = self.c0, self.c1
        p = c0.stride if c0.count > 1 else 1
        q = c1.stride if c1.count > 1 else 1
        for d in range(-(c0.size - 1), c1.size):
            # Δ0·x0 - Δ1·x1 = (b1 - b0) + d
            sol = solve_bounded(p, q, (c1.base - c0.base) + d, c0.count - 1, c1.count - 1)
            if sol is None:
                continue
            # Reconstruct concrete byte offsets: pick s0 maximal overlap-free.
            if d >= 0:
                s0, s1 = 0, d
            else:
                s0, s1 = -d, 0
            addr = c0.base + p * sol.x + s0
            witness = OverlapWitness(address=addr, x0=sol.x, s0=s0, x1=sol.y, s1=s1)
            if not (c0.contains(addr) and c1.contains(addr)):
                raise SolverError("overlap witness failed validation (solver bug)")
            return witness
        return None

    def feasible(self) -> bool:
        """Does a common byte address exist?"""
        return self.solve() is not None
