"""Brute-force feasibility oracle for the overlap constraint system.

Enumerates every byte address of the smaller interval and tests membership
in the other — exponential-free but O(count * size), so strictly a test
oracle for the exact Diophantine solver (hypothesis drives both on random
systems and asserts agreement).
"""

from __future__ import annotations

from typing import Optional

from .model import IntervalConstraint


def bruteforce_overlap(
    c0: IntervalConstraint, c1: IntervalConstraint
) -> Optional[int]:
    """Return any shared byte address, or None (exhaustive search)."""
    # Enumerate the interval with fewer touched bytes.
    if c0.count * c0.size > c1.count * c1.size:
        c0, c1 = c1, c0
    stride = c0.stride if c0.count > 1 else 1
    for x in range(c0.count):
        start = c0.base + x * stride
        for s in range(c0.size):
            addr = start + s
            if c1.contains(addr):
                return addr
    return None


def bruteforce_addresses(c: IntervalConstraint) -> set[int]:
    """The full byte-address set of one interval (small cases only)."""
    stride = c.stride if c.count > 1 else 1
    out: set[int] = set()
    for x in range(c.count):
        start = c.base + x * stride
        out.update(range(start, start + c.size))
    return out
