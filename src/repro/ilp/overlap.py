"""Race-oriented overlap checking between strided intervals.

Glue between the interval-tree layer and the constraint solver: converts
:class:`~repro.itree.interval.StridedInterval` pairs into the paper's
constraint systems, applies the cheap byte-extent rejection first, and
returns a witness address for race reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..itree.interval import StridedInterval
from .model import IntervalConstraint, OverlapSystem


@dataclass(frozen=True, slots=True)
class OverlapResult:
    """Outcome of an exact overlap check."""

    address: int  # a shared byte address (witness)


def constraint_of(si: StridedInterval) -> IntervalConstraint:
    """The paper's constraint triple for one tree node."""
    return IntervalConstraint(
        base=si.low,
        stride=si.stride if si.count > 1 else si.size,
        count=si.count,
        size=si.size,
    )


def intervals_share_address(
    a: StridedInterval, b: StridedInterval
) -> Optional[OverlapResult]:
    """Exact check: do the two progressions touch a common byte?

    Fast paths:

    * disjoint byte extents -> no;
    * both dense (stride <= size) -> extent overlap alone is the answer —
      no constraint solving needed (the overwhelmingly common unit-stride
      case).

    Otherwise the Diophantine-backed :class:`OverlapSystem` decides.
    """
    if not a.extent_overlaps(b):
        return None
    if a.dense and b.dense:
        return OverlapResult(address=max(a.low, b.low))
    system = OverlapSystem(constraint_of(a), constraint_of(b))
    witness = system.solve()
    if witness is None:
        return None
    return OverlapResult(address=witness.address)
