"""Memoized strided-interval overlap solving.

Strided loops re-emit the same constraint *shapes* thousands of times:
two threads sweeping disjoint residue classes of one array produce, pair
after pair, systems that differ only by a translation.  The Diophantine
system is translation-invariant — :class:`~repro.ilp.model.OverlapSystem`
depends only on the base *delta* and the (stride, count, size) triples,
and its witness address is ``c0.base`` plus a relative offset — so one
solve serves every translated copy.

The memo key is the *ordered* canonical tuple
``(b.low - a.low, stride_a, count_a, size_a, stride_b, count_b, size_b)``
with the same singleton-stride normalisation as
:func:`~repro.ilp.overlap.constraint_of`.  The key is deliberately NOT
orientation-canonicalised (no argument swapping): the solver's witness
depends on argument order, and the engine's canonical-witness guarantee
requires the memoized path to return exactly the address the direct path
would.  The cheap fast paths (disjoint extents, both dense) are answered
inline without touching the table — they are already O(1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..itree.interval import StridedInterval
from .model import OverlapSystem
from .overlap import OverlapResult, constraint_of

_MISS = object()


class SolverMemo:
    """Bounded-LRU memo over :func:`~repro.ilp.overlap.intervals_share_address`.

    ``share_address(a, b)`` is a drop-in replacement returning the exact
    same :class:`OverlapResult` (or None); ``hits``/``misses`` count only
    the non-trivial solves that reach the Diophantine system.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = max(1, capacity)
        self._cache: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._cache)

    def share_address(
        self, a: StridedInterval, b: StridedInterval
    ) -> Optional[OverlapResult]:
        """Exact overlap check, memoized on the translated constraint shape."""
        if not a.extent_overlaps(b):
            return None
        if a.dense and b.dense:
            return OverlapResult(address=max(a.low, b.low))
        stride_a = a.stride if a.count > 1 else a.size
        stride_b = b.stride if b.count > 1 else b.size
        key = (
            b.low - a.low,
            stride_a, a.count, a.size,
            stride_b, b.count, b.size,
        )
        offset = self._cache.get(key, _MISS)
        if offset is not _MISS:
            self.hits += 1
            self._cache.move_to_end(key)
        else:
            self.misses += 1
            witness = OverlapSystem(constraint_of(a), constraint_of(b)).solve()
            offset = None if witness is None else witness.address - a.low
            self._cache[key] = offset
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
        if offset is None:
            return None
        return OverlapResult(address=a.low + offset)
