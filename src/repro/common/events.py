"""Event records exchanged between the runtime, the tools, and the logs.

One :class:`Access` describes a (possibly strided, bulk) memory operation:
the compiler instrumentation of real SWORD emits one record per executed
load/store, but a vectorised model program performs whole-array operations,
so an access natively carries ``(addr, size, count, stride)`` — an arithmetic
progression of byte addresses.  A scalar access is simply ``count == 1``.

Records are serialised as a fixed-width NumPy structured array (40 bytes per
event) so that the bounded buffer, the compressors, and the streaming reader
can all operate on contiguous memory without per-event Python objects — the
idiom the HPC guides call "vectorise the hot loop".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

# --- event kinds -----------------------------------------------------------

KIND_ACCESS = 1
KIND_PARALLEL_BEGIN = 2
KIND_PARALLEL_END = 3
KIND_BARRIER = 4
KIND_MUTEX_ACQUIRED = 5
KIND_MUTEX_RELEASED = 6
KIND_THREAD_BEGIN = 7
KIND_THREAD_END = 8

KIND_NAMES = {
    KIND_ACCESS: "access",
    KIND_PARALLEL_BEGIN: "parallel_begin",
    KIND_PARALLEL_END: "parallel_end",
    KIND_BARRIER: "barrier",
    KIND_MUTEX_ACQUIRED: "mutex_acquired",
    KIND_MUTEX_RELEASED: "mutex_released",
    KIND_THREAD_BEGIN: "thread_begin",
    KIND_THREAD_END: "thread_end",
}

# --- access flags ----------------------------------------------------------

FLAG_WRITE = 0x1
FLAG_ATOMIC = 0x2

#: Fixed-width on-disk/in-buffer record layout (40 bytes).
EVENT_DTYPE = np.dtype(
    [
        ("kind", "u1"),
        ("flags", "u1"),
        ("size", "u2"),      # bytes per element (access) / unused otherwise
        ("msid", "u4"),      # mutex-set id (access) / mutex id (mutex events)
        ("addr", "u8"),      # start address (access) / region id (ompt)
        ("count", "u4"),     # number of elements in the progression
        ("stride", "i4"),    # byte distance between consecutive elements
        ("pc", "u8"),        # program counter of the access site
        ("aux", "u8"),       # kind-specific payload (e.g. barrier id)
    ]
)

EVENT_BYTES = EVENT_DTYPE.itemsize
assert EVENT_BYTES == 40


@dataclass(frozen=True, slots=True)
class Access:
    """A bulk memory access: ``count`` elements of ``size`` bytes starting at
    ``addr`` with ``stride`` bytes between element starts.

    ``mutexset`` is the (interned id of the) set of mutexes the thread held
    when it performed the access; SWORD's interval-tree nodes carry the same
    information for the lockset part of the race condition.
    """

    addr: int
    size: int
    count: int
    stride: int
    is_write: bool
    is_atomic: bool
    pc: int
    msid: int = 0
    #: Execution point for the tasking extension: ``(entity, seq)`` packed
    #: by :func:`repro.tasking.graph.encode_point`.  0 = implicit task at
    #: sequence 0 (every pre-tasking access).
    task_point: int = 0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("access count must be positive")
        if self.size <= 0:
            raise ValueError("access size must be positive")
        if self.count > 1 and self.stride == 0:
            raise ValueError("bulk access requires a non-zero stride")

    @property
    def last_addr(self) -> int:
        """First byte of the final element in the progression."""
        return self.addr + (self.count - 1) * self.stride

    @property
    def low(self) -> int:
        """Lowest byte address touched."""
        return min(self.addr, self.last_addr)

    @property
    def high(self) -> int:
        """Highest byte address touched (inclusive)."""
        return max(self.addr, self.last_addr) + self.size - 1

    def addresses(self) -> np.ndarray:
        """All byte addresses touched, expanded (test/oracle use only)."""
        starts = self.addr + self.stride * np.arange(self.count, dtype=np.int64)
        offs = np.arange(self.size, dtype=np.int64)
        return (starts[:, None] + offs[None, :]).ravel()

    def normalized(self) -> "Access":
        """Return an equivalent access with a non-negative stride."""
        if self.stride >= 0 or self.count == 1:
            return self
        return Access(
            addr=self.last_addr,
            size=self.size,
            count=self.count,
            stride=-self.stride,
            is_write=self.is_write,
            is_atomic=self.is_atomic,
            pc=self.pc,
            msid=self.msid,
            task_point=self.task_point,
        )


@dataclass(frozen=True, slots=True)
class AccessBatch:
    """A columnar batch of access events (the online fast path).

    ``addr`` is always an array; every other column is either a parallel
    array of the same length or a scalar that broadcasts over the batch
    (NumPy assignment semantics).  Dense loop nests emit one batch per
    nest instead of thousands of :class:`Access` objects; the scalar
    :class:`Access` path remains for irregular accesses.
    """

    addr: np.ndarray
    pc: "np.ndarray | int"
    size: "np.ndarray | int"
    flags: "np.ndarray | int"
    msid: "np.ndarray | int" = 0
    count: "np.ndarray | int" = 1
    stride: "np.ndarray | int" = 0
    task_point: "np.ndarray | int" = 0

    def __len__(self) -> int:
        return len(self.addr)

    @classmethod
    def make(
        cls,
        addr: np.ndarray,
        *,
        size: "np.ndarray | int",
        is_write: bool,
        pc: "np.ndarray | int",
        is_atomic: bool = False,
        msid: "np.ndarray | int" = 0,
        count: "np.ndarray | int" = 1,
        stride: "np.ndarray | int" = 0,
        task_point: "np.ndarray | int" = 0,
    ) -> "AccessBatch":
        """Build a batch from semantic fields (flags packed here once)."""
        flags = (FLAG_WRITE if is_write else 0) | (FLAG_ATOMIC if is_atomic else 0)
        return cls(
            addr=np.asarray(addr, dtype=np.uint64),
            pc=pc,
            size=size,
            flags=flags,
            msid=msid,
            count=count,
            stride=stride,
            task_point=task_point,
        )

    def _col(self, value, i: int) -> int:
        return int(value[i]) if isinstance(value, np.ndarray) else int(value)

    def to_accesses(self) -> "list[Access]":
        """Expand into scalar :class:`Access` objects (slow path / tests)."""
        out = []
        for i in range(len(self.addr)):
            flags = self._col(self.flags, i)
            count = self._col(self.count, i)
            out.append(
                Access(
                    addr=int(self.addr[i]),
                    size=self._col(self.size, i),
                    count=count,
                    stride=self._col(self.stride, i) if count > 1 else 0,
                    is_write=bool(flags & FLAG_WRITE),
                    is_atomic=bool(flags & FLAG_ATOMIC),
                    pc=self._col(self.pc, i),
                    msid=self._col(self.msid, i),
                    task_point=self._col(self.task_point, i),
                )
            )
        return out

    def to_records(self) -> np.ndarray:
        """Pack the whole batch into an :data:`EVENT_DTYPE` array."""
        rec = np.zeros(len(self.addr), dtype=EVENT_DTYPE)
        rec["kind"] = KIND_ACCESS
        rec["flags"] = self.flags
        rec["size"] = self.size
        rec["msid"] = self.msid
        rec["addr"] = self.addr
        rec["count"] = self.count
        rec["stride"] = self.stride
        rec["pc"] = self.pc
        rec["aux"] = self.task_point
        return rec


def access_to_record(a: Access) -> np.void:
    """Pack one :class:`Access` into an :data:`EVENT_DTYPE` scalar."""
    rec = np.zeros((), dtype=EVENT_DTYPE)
    rec["kind"] = KIND_ACCESS
    rec["flags"] = (FLAG_WRITE if a.is_write else 0) | (
        FLAG_ATOMIC if a.is_atomic else 0
    )
    rec["size"] = a.size
    rec["msid"] = a.msid
    rec["addr"] = a.addr
    rec["count"] = a.count
    rec["stride"] = a.stride
    rec["pc"] = a.pc
    rec["aux"] = a.task_point
    return rec[()]


def record_to_access(rec: np.void) -> Access:
    """Unpack an :data:`EVENT_DTYPE` scalar of kind ``ACCESS``."""
    if int(rec["kind"]) != KIND_ACCESS:
        raise ValueError(f"record kind {int(rec['kind'])} is not an access")
    flags = int(rec["flags"])
    return Access(
        addr=int(rec["addr"]),
        size=int(rec["size"]),
        count=int(rec["count"]),
        stride=int(rec["stride"]),
        is_write=bool(flags & FLAG_WRITE),
        is_atomic=bool(flags & FLAG_ATOMIC),
        pc=int(rec["pc"]),
        msid=int(rec["msid"]),
        task_point=int(rec["aux"]),
    )


def make_event(kind: int, *, addr: int = 0, aux: int = 0, msid: int = 0) -> np.void:
    """Pack a non-access runtime event (barrier, region, mutex, thread)."""
    rec = np.zeros((), dtype=EVENT_DTYPE)
    rec["kind"] = kind
    rec["addr"] = addr
    rec["aux"] = aux
    rec["msid"] = msid
    return rec[()]


def records_to_bytes(records: np.ndarray) -> bytes:
    """Serialise a contiguous record array to raw bytes."""
    if records.dtype != EVENT_DTYPE:
        raise ValueError("records must use EVENT_DTYPE")
    return np.ascontiguousarray(records).tobytes()


def bytes_to_records(data: bytes | memoryview) -> np.ndarray:
    """Deserialise raw bytes back into a record array (zero-copy view)."""
    if len(data) % EVENT_BYTES != 0:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of {EVENT_BYTES}"
        )
    return np.frombuffer(data, dtype=EVENT_DTYPE)


def accesses_to_records(accesses: Iterable[Access]) -> np.ndarray:
    """Pack many accesses at once (convenience for tests and builders)."""
    accesses = list(accesses)
    out = np.zeros(len(accesses), dtype=EVENT_DTYPE)
    for i, a in enumerate(accesses):
        out[i] = access_to_record(a)
    return out
