"""Normalized CLI exit codes.

Every ``repro`` subcommand that inspects a program or trace reports
through the same three codes, so shell pipelines and CI gates can branch
without parsing output:

* ``0`` — ran to completion, no races found (clean);
* ``1`` — ran to completion, data races found;
* ``2`` — the run itself failed: out of memory, unreadable or torn
  trace in strict mode, bad arguments, or a violated sweep property.

``--json`` payloads carry the code (and its meaning) under
``"exit_code"`` / ``"exit_meaning"`` so a consumer never has to keep the
mapping in its head.
"""

from __future__ import annotations

EXIT_CLEAN = 0
EXIT_RACES = 1
EXIT_ERROR = 2

_MEANINGS = {
    EXIT_CLEAN: "clean",
    EXIT_RACES: "races found",
    EXIT_ERROR: "error",
}


def exit_meaning(code: int) -> str:
    return _MEANINGS.get(code, "unknown")


def race_exit_code(race_count: int) -> int:
    """The code for a successful analysis that found ``race_count`` races."""
    return EXIT_RACES if race_count else EXIT_CLEAN
