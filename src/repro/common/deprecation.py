"""Warn-once deprecation plumbing.

The legacy analyzer names are instantiated in loops by old harnesses
(one per workload, per seed); warning on every construction buries the
signal.  Each deprecated name warns once per process; :func:`reset`
re-arms everything (tests use it to assert the warning fires at all).
"""

from __future__ import annotations

import warnings

_WARNED: set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> bool:
    """Emit ``DeprecationWarning`` the first time ``key`` is seen.

    Returns True when the warning was actually emitted.
    """
    if key in _WARNED:
        return False
    _WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True


def reset() -> None:
    """Re-arm every deprecation warning (test hook)."""
    _WARNED.clear()
