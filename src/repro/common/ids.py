"""Monotonic identifier generators for runtime entities.

The simulated OpenMP runtime hands out unique IDs for parallel regions,
barriers, locks, and threads.  The OMPT interface of the real SWORD stores
such IDs in per-callback data fields; we reproduce that by generating them
centrally so that log records can refer to entities compactly.
"""

from __future__ import annotations

import itertools
import threading


class IdGenerator:
    """Thread-safe monotonic integer ID source.

    The simulated runtime executes model threads as real Python threads (one
    at a time under the cooperative scheduler), so generators must tolerate
    being called from any of them.
    """

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next(self) -> int:
        """Return the next identifier."""
        with self._lock:
            return next(self._counter)


class RuntimeIds:
    """ID namespaces used by one simulated runtime instance.

    Attributes:
        parallel: parallel-region instance IDs (``pid`` in Table I).
        thread: global simulated-thread IDs (log files are per thread).
        lock: mutex IDs; OpenMP ``critical`` sections and ``omp_lock_t``
            objects both draw from this namespace.
        sync: generic synchronisation-object IDs (reductions, atomics).
    """

    def __init__(self) -> None:
        self.parallel = IdGenerator(start=1)  # 0 is reserved for "no region"
        self.thread = IdGenerator()
        self.lock = IdGenerator(start=1)
        self.sync = IdGenerator(start=1)
        self.task = IdGenerator(start=1)  # 0 is reserved for implicit tasks


#: Sentinel parallel-region id meaning "no enclosing region" (sequential code).
NO_REGION = 0

#: Sentinel parent id used in meta-data rows for top-level regions.
NO_PARENT = -1
