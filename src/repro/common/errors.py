"""Exception hierarchy for the SWORD reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class SimulatedOOMError(ReproError):
    """The simulated compute node ran out of memory.

    Raised by :class:`repro.memory.accounting.NodeMemory` when the combined
    application + tool footprint exceeds the configured node limit.  This is
    the mechanism that reproduces the paper's Table IV / Figure 8 behaviour
    where ARCHER cannot finish AMG2013 at the largest problem size.
    """

    def __init__(self, requested: int, in_use: int, limit: int) -> None:
        super().__init__(
            f"simulated OOM: requested {requested} B with {in_use} B in use "
            f"exceeds node limit of {limit} B"
        )
        self.requested = requested
        self.in_use = in_use
        self.limit = limit


class RuntimeModelError(ReproError):
    """A model program misused the simulated OpenMP runtime.

    Examples: releasing a lock the thread does not hold, calling a
    worksharing construct from outside a parallel region, or mismatched
    barrier participation.
    """


class DeadlockError(RuntimeModelError):
    """The cooperative scheduler found no runnable thread."""


class TraceFormatError(ReproError):
    """A SWORD log or meta-data file is malformed or truncated."""


class FlushError(ReproError):
    """The online logger could not persist a trace chunk.

    Raised after the bounded retry/backoff policy is exhausted (disk
    full, sink gone) when the degradation mode is ``"raise"``; with
    ``"drop-oldest"`` the chunk is discarded and recorded instead.
    """

    def __init__(self, gid: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"thread {gid}: flush failed after {attempts} attempt(s): {cause}"
        )
        self.gid = gid
        self.attempts = attempts
        self.cause = cause


class CodecError(ReproError):
    """Compression or decompression of a trace block failed."""


class AnalysisError(ReproError):
    """The offline analysis encountered an internal inconsistency."""


class DigestVersionError(ReproError):
    """A serialized access digest was written by a newer format version.

    Raised instead of silently mis-reading fields the current code does
    not know about; the persistent result cache treats it as a counted
    miss and evicts the entry.
    """


class SolverError(ReproError):
    """The ILP / Diophantine overlap solver was given an invalid system."""
