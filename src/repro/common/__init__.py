"""Shared building blocks: errors, configuration, IDs, events, locations."""

from .errors import (
    AnalysisError,
    CodecError,
    ConfigError,
    DeadlockError,
    ReproError,
    RuntimeModelError,
    SimulatedOOMError,
    SolverError,
    TraceFormatError,
)
from .config import (
    ArcherConfig,
    NodeConfig,
    OfflineConfig,
    RunConfig,
    SchedulerConfig,
    SwordConfig,
    KiB,
    MiB,
    GiB,
)
from .events import Access
from .ids import IdGenerator, RuntimeIds, NO_PARENT, NO_REGION
from .sourceloc import GLOBAL_PCS, PCRegistry, SourceLoc, pc_of

__all__ = [
    "Access",
    "AnalysisError",
    "ArcherConfig",
    "CodecError",
    "ConfigError",
    "DeadlockError",
    "GLOBAL_PCS",
    "GiB",
    "IdGenerator",
    "KiB",
    "MiB",
    "NO_PARENT",
    "NO_REGION",
    "NodeConfig",
    "OfflineConfig",
    "PCRegistry",
    "ReproError",
    "RunConfig",
    "RuntimeIds",
    "RuntimeModelError",
    "SchedulerConfig",
    "SimulatedOOMError",
    "SolverError",
    "SourceLoc",
    "SwordConfig",
    "TraceFormatError",
    "pc_of",
]
