"""Synthetic program counters and source locations.

Real SWORD stores the program counter of every instrumented load/store and
maps it back to source lines when reporting races.  Model programs in this
reproduction label each access site with a :class:`SourceLoc`; a process-wide
:class:`PCRegistry` interns locations to stable integer "program counters" so
that trace records stay fixed width and race reports remain human readable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLoc:
    """A source location of an access site in a model program.

    Attributes:
        file: pseudo source file name, e.g. ``"hpccg.c"``.
        line: line number within that file.
        func: enclosing function name (informational only).
    """

    file: str
    line: int
    func: str = ""

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.func:
            return f"{self.file}:{self.line} ({self.func})"
        return f"{self.file}:{self.line}"


class PCRegistry:
    """Bidirectional intern table between :class:`SourceLoc` and integer PCs.

    PCs start at 0x1000 so that 0 can serve as "unknown"; the registry is
    append-only and thread safe.
    """

    _UNKNOWN = SourceLoc("<unknown>", 0)

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_loc: dict[SourceLoc, int] = {}
        self._by_pc: dict[int, SourceLoc] = {}
        self._next = 0x1000

    def pc(self, loc: SourceLoc) -> int:
        """Return the stable PC for ``loc``, interning it on first use."""
        with self._lock:
            existing = self._by_loc.get(loc)
            if existing is not None:
                return existing
            value = self._next
            self._next += 1
            self._by_loc[loc] = value
            self._by_pc[value] = loc
            return value

    def loc(self, pc: int) -> SourceLoc:
        """Return the location interned for ``pc`` (or an unknown marker)."""
        with self._lock:
            return self._by_pc.get(pc, self._UNKNOWN)

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_loc)


#: Process-wide default registry.  Workload modules intern their access-site
#: labels here; tools resolve PCs through it when formatting reports.
GLOBAL_PCS = PCRegistry()


def pc_of(file: str, line: int, func: str = "") -> int:
    """Convenience wrapper: intern ``file:line`` in the global registry."""
    return GLOBAL_PCS.pc(SourceLoc(file, line, func))
