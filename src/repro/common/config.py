"""Configuration objects for the runtime, the tools, and the simulated node.

All sizes are bytes.  Defaults mirror the paper's reported constants:

* SWORD's per-thread event buffer holds 25,000 events (~2 MB) and the OMPT +
  auxiliary thread-local storage adds ~1.3 MB, for ~3.3 MB/thread total
  (paper §III-A, "Bounded Dynamic Analysis Overhead").
* ARCHER keeps 4 shadow cells per 8-byte application word; with per-thread
  overhead this lands in the paper's observed 5-7x region (§I, §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError

KiB = 1024
MiB = 1024 * 1024
GiB = 1024 * 1024 * 1024

#: Paper constant: events per SWORD buffer before a flush.
SWORD_BUFFER_EVENTS = 25_000
#: Paper constant: nominal buffer footprint ("around 2 MB total").
SWORD_BUFFER_BYTES = 2 * MiB
#: Paper constant: OMPT + auxiliary TLS per thread ("around 1.3 MB").
SWORD_AUX_BYTES = int(1.3 * MiB)


@dataclass(slots=True)
class SchedulerConfig:
    """Cooperative-scheduler behaviour for the simulated OpenMP runtime.

    Attributes:
        seed: RNG seed selecting the interleaving.  Two different seeds can
            produce the Figure-1 pair of schedules (one masks the race under
            happens-before analysis, the other exposes it).
        policy: ``"random"`` picks a random runnable thread at each switch
            point; ``"round-robin"`` cycles deterministically.
        yield_every: a running thread voluntarily yields after this many
            bulk memory operations (0 disables periodic yields; threads then
            switch only at synchronisation points).
    """

    seed: int = 0
    policy: str = "random"
    yield_every: int = 0

    def validate(self) -> None:
        if self.policy not in ("random", "round-robin"):
            raise ConfigError(f"unknown scheduler policy: {self.policy!r}")
        if self.yield_every < 0:
            raise ConfigError("yield_every must be >= 0")


@dataclass(slots=True)
class SwordConfig:
    """Online-phase knobs for the SWORD tool.

    Attributes:
        buffer_events: capacity of the per-thread event buffer; the paper
            found 25,000 (~2 MB) optimal because it fits in L3.
        buffer_bytes: nominal buffer footprint charged to the memory
            accountant (user-adjustable bound in the paper).
        aux_bytes: OMPT + thread-local auxiliary storage charged per thread.
        codec: trace compression codec name (see
            :mod:`repro.sword.compression.registry`); the paper compared LZO,
            Snappy and LZ4 and found them equivalent, settling on LZO.
        delta_filter: precondition flushed blocks with the per-column delta
            filter (:mod:`repro.sword.compression.filters`) before the
            codec.  The filter id travels in each v2 frame header, so
            readers mix filtered and unfiltered blocks freely; v1 traces
            are unaffected.
        log_dir: directory receiving ``thread_<tid>.log`` / ``.meta`` files.
        durable: production-hardening mode — meta rows are appended (with
            per-row CRCs) the moment they are emitted and the run-wide
            tables (regions journal, mutex sets, an in-progress manifest)
            are kept on disk throughout the run, so a kill at any point
            leaves a salvageable trace instead of only log bytes.
        fsync_on_flush: fsync the log file after every flushed chunk (and
            the meta file after every durable row).  Off by default: the
            paper's overhead numbers assume buffered writes.
        flush_retries: additional write attempts after a failed flush
            before the degradation policy applies.
        flush_backoff_seconds: base of the exponential backoff between
            flush retries (attempt ``n`` waits ``base * 2**n`` seconds).
        flush_degraded: what to do when retries are exhausted —
            ``"raise"`` propagates :class:`~repro.common.errors.FlushError`;
            ``"drop-oldest"`` discards the failing chunk, records exactly
            what was lost in the manifest, and keeps the run alive.
        static_prescreen: act on static region pre-screening
            (:mod:`repro.static`): elide event emission at proven-free
            sites and persist the verdict table into the manifest.  Off,
            regions run fully instrumented even when the workload
            declares specs (the ``--no-static`` escape hatch).
    """

    buffer_events: int = SWORD_BUFFER_EVENTS
    buffer_bytes: int = SWORD_BUFFER_BYTES
    aux_bytes: int = SWORD_AUX_BYTES
    codec: str = "lzrle"
    delta_filter: bool = False
    log_dir: str = ""
    durable: bool = False
    fsync_on_flush: bool = False
    flush_retries: int = 3
    flush_backoff_seconds: float = 0.01
    flush_degraded: str = "raise"
    static_prescreen: bool = True

    def validate(self) -> None:
        if self.buffer_events <= 0:
            raise ConfigError("buffer_events must be positive")
        if self.buffer_bytes <= 0 or self.aux_bytes < 0:
            raise ConfigError("buffer_bytes/aux_bytes must be positive")
        if not self.log_dir:
            raise ConfigError("SwordConfig.log_dir must be set")
        if self.flush_retries < 0:
            raise ConfigError("flush_retries must be >= 0")
        if self.flush_backoff_seconds < 0:
            raise ConfigError("flush_backoff_seconds must be >= 0")
        if self.flush_degraded not in ("raise", "drop-oldest"):
            raise ConfigError(
                f"flush_degraded must be 'raise' or 'drop-oldest', "
                f"got {self.flush_degraded!r}"
            )

    @property
    def per_thread_bytes(self) -> int:
        """Total bounded overhead per thread (paper: ~3.3 MB)."""
        return self.buffer_bytes + self.aux_bytes


@dataclass(slots=True)
class ArcherConfig:
    """Baseline happens-before tool knobs.

    Attributes:
        shadow_cells: access records retained per 8-byte application word
            (TSan/ARCHER default is 4; the 5th access evicts one -> the
            paper's missed-race mechanism).
        flush_shadow: the paper's "archer-low" mode -- release shadow memory
            between independent parallel regions, trading extra runtime for
            a ~30% smaller footprint.
        shadow_word_bytes: granularity of one shadow line (8 in TSan).
        per_thread_bytes: fixed per-thread bookkeeping charged to the
            accountant (vector clocks, TLS).
        misc_overhead_factor: additional footprint proportional to the
            application (allocator metadata etc.); together with
            ``shadow_cells`` this yields the observed 5-7x overhead.
    """

    shadow_cells: int = 4
    flush_shadow: bool = False
    shadow_word_bytes: int = 8
    per_thread_bytes: int = 4 * MiB
    misc_overhead_factor: float = 1.0

    def validate(self) -> None:
        if self.shadow_cells <= 0:
            raise ConfigError("shadow_cells must be positive")
        if self.shadow_word_bytes not in (4, 8, 16):
            raise ConfigError("shadow_word_bytes must be 4, 8, or 16")
        if self.misc_overhead_factor < 0:
            raise ConfigError("misc_overhead_factor must be >= 0")


@dataclass(slots=True)
class NodeConfig:
    """The simulated compute node.

    The paper's testbed is a 2x12-core Xeon node with 32 GB RAM.  Experiments
    scale ``memory_limit`` down alongside the scaled-down workloads so that
    the OOM crossover (Table IV, Figure 8) falls in the same relative place.
    """

    memory_limit: int = 32 * GiB
    cores: int = 24

    def validate(self) -> None:
        if self.memory_limit <= 0:
            raise ConfigError("memory_limit must be positive")
        if self.cores <= 0:
            raise ConfigError("cores must be positive")


@dataclass(slots=True)
class OfflineConfig:
    """Offline-analysis knobs.

    Attributes:
        chunk_events: streaming granularity -- how many decoded events the
            reader hands to the tree builder at a time (paper: "reads access
            information from log files in small chunks").
        workers: worker processes for the "cluster" mode (Table III's MT
            column distributes interval-tree comparison across nodes).
        use_ilp_crosscheck: additionally verify each Diophantine overlap
            verdict with the branch-and-bound ILP (slow; for tests).
    """

    chunk_events: int = 65_536
    workers: int = 1
    use_ilp_crosscheck: bool = False

    def validate(self) -> None:
        if self.chunk_events <= 0:
            raise ConfigError("chunk_events must be positive")
        if self.workers <= 0:
            raise ConfigError("workers must be positive")


@dataclass(slots=True)
class RunConfig:
    """Everything needed to execute one workload under one tool."""

    nthreads: int = 8
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    node: NodeConfig = field(default_factory=NodeConfig)

    def validate(self) -> None:
        if self.nthreads <= 0:
            raise ConfigError("nthreads must be positive")
        self.scheduler.validate()
        self.node.validate()
