"""Pytest fixtures over the fault-injection machinery.

Import-star these from a ``conftest.py`` to use them::

    from repro.faults.fixtures import *  # noqa: F401,F403

Fixtures:

* ``fault_plan`` — factory: generate-and-apply a seeded
  :class:`~repro.faults.plan.FaultPlan` against a trace directory;
* ``faulty_sink_factory`` — factory: a
  :class:`~repro.faults.sink.FaultySinkFactory` for ``SwordTool``'s
  ``sink_factory`` seam;
* ``collected_trace`` — factory: run a (small, racy by default)
  workload and leave a durable trace in a temp directory.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from .harness import collect_trace
from .plan import FaultPlan
from .sink import FaultySinkFactory, SinkFaultSpec

__all__ = ["collected_trace", "fault_plan", "faulty_sink_factory"]


@pytest.fixture
def fault_plan():
    """Factory: build a seeded plan and apply it to a trace directory."""

    def make(trace_dir, *, seed: int = 0, actions: int = 3) -> FaultPlan:
        plan = FaultPlan.random(trace_dir, seed=seed, actions=actions)
        plan.apply(trace_dir)
        return plan

    return make


@pytest.fixture
def faulty_sink_factory():
    """Factory: a sink factory whose Nth write raises ``OSError``."""

    def make(
        fail_at: int = 1,
        *,
        fail_count: int = 1,
        permanent: bool = False,
    ) -> FaultySinkFactory:
        return FaultySinkFactory(
            SinkFaultSpec(
                fail_at=fail_at, fail_count=fail_count, permanent=permanent
            )
        )

    return make


@pytest.fixture
def collected_trace(tmp_path):
    """Factory: a durable trace of one workload under SWORD."""

    def make(
        workload: str = "antidep1-orig-yes",
        *,
        nthreads: int = 2,
        seed: int = 0,
        buffer_events: int = 64,
        **params,
    ) -> Path:
        trace_dir = tmp_path / f"trace-{workload}-{seed}"
        collect_trace(
            workload,
            trace_dir,
            nthreads=nthreads,
            seed=seed,
            buffer_events=buffer_events,
            **params,
        )
        return trace_dir

    return make
