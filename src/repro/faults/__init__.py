"""Deterministic fault injection for the trace pipeline.

The durability claims of the logger/reader pair (CRC-framed chunks,
salvage-mode analysis) are only as good as the faults they were tested
against.  This package makes those faults reproducible first-class
objects:

* :class:`~repro.faults.plan.FaultPlan` — a seedable, serialisable list
  of mutations to a closed trace directory (truncate a log, flip payload
  or header bytes, delete or duplicate meta rows);
* :class:`~repro.faults.sink.FaultySinkFactory` — a drop-in
  ``sink_factory`` for :class:`~repro.sword.logger.SwordTool` whose
  sinks raise transient or permanent ``OSError`` on the Nth write,
  exercising the retry/backoff/degradation policy online;
* :mod:`~repro.faults.harness` — the kill-point sweep: truncate a clean
  trace at every frame boundary (and mid-frame) and assert that salvage
  analysis always completes with a race set that is a subset of the
  clean run's;
* :mod:`~repro.faults.chaos` — the service chaos harness: restart the
  durable service at every WAL boundary (resume sweep) and poison
  shards to verify graceful degradation;
* :mod:`~repro.faults.fixtures` — the same machinery as pytest fixtures.

CLI: ``python -m repro faults inject <trace-dir> --seed N``,
``python -m repro faults sweep <workload> --out report.json``, and
``python -m repro faults chaos --out artifacts/``.
"""

from .plan import FaultAction, FaultPlan
from .sink import FaultySink, FaultySinkFactory, SinkFaultSpec
from .harness import KillPoint, SweepPointResult, SweepResult, frame_kill_points, kill_sweep
from .chaos import (
    DegradationScenarioResult,
    ResumePointResult,
    ResumeSweepResult,
    poison_degradation,
    resume_sweep,
    sabotage,
)

__all__ = [
    "DegradationScenarioResult",
    "FaultAction",
    "FaultPlan",
    "FaultySink",
    "FaultySinkFactory",
    "KillPoint",
    "ResumePointResult",
    "ResumeSweepResult",
    "SinkFaultSpec",
    "SweepPointResult",
    "SweepResult",
    "frame_kill_points",
    "kill_sweep",
    "poison_degradation",
    "resume_sweep",
    "sabotage",
]
