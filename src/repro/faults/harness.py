"""The kill-point sweep: SWORD's crash-tolerance property test.

The headline durability guarantee is *kill-anywhere*: truncate a trace at
any byte — a frame boundary, mid-header, mid-payload, before the commit
marker — and salvage analysis still completes, reporting a race set that
is a **subset** of what the undamaged trace yields (never a crash, never
an invented race), with the loss itemised in an
:class:`~repro.sword.integrity.IntegrityReport`.

This module enumerates those kill points from a clean trace's actual
frame layout, replays each one against a pristine copy, and checks the
property.  It backs both the ``tests/faults`` property test and the CI
``faults-smoke`` step (``python -m repro faults sweep``).
"""

from __future__ import annotations

import re
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Union

from ..common.config import RunConfig, SchedulerConfig, SwordConfig
from ..common.errors import TraceFormatError
from ..obs import get_obs
from ..omp.runtime import OpenMPRuntime
from ..sword.logger import SwordTool
from ..sword.reader import ThreadTraceReader, TraceDir
from ..workloads import REGISTRY
from ..workloads.base import Workload


@dataclass(frozen=True, slots=True)
class KillPoint:
    """One simulated kill: truncate ``target`` at ``offset`` bytes."""

    target: str  # log file name relative to the trace directory
    offset: int
    kind: str  # "clean-end" | "boundary" | "mid-header" | "mid-payload" | "pre-commit"

    def describe(self) -> str:
        return f"{self.target}@{self.offset} ({self.kind})"


def _resolve(workload: Union[str, Workload]) -> Workload:
    if isinstance(workload, str):
        return REGISTRY.get(workload)
    return workload


def collect_trace(
    workload: Union[str, Workload],
    trace_dir: str | Path,
    *,
    nthreads: int = 2,
    seed: int = 0,
    buffer_events: int = 64,
    durable: bool = True,
    delta_filter: bool = False,
    **params,
) -> None:
    """Run one workload under SWORD, leaving the trace in ``trace_dir``.

    A small ``buffer_events`` forces many flushes so the logs contain
    enough frames to make the kill-point sweep meaningful.  Durable mode
    is the default: the sweep models kills, and only durable traces keep
    their meta rows on disk at kill time.  ``delta_filter`` collects the
    trace with delta-preconditioned frames, so the sweep exercises the
    filtered decode path too.
    """
    w = _resolve(workload)
    config = SwordConfig(
        log_dir=str(trace_dir),
        buffer_events=buffer_events,
        durable=durable,
        delta_filter=delta_filter,
    )
    tool = SwordTool(config)
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
        tool=tool,
    )
    rt.run(lambda master: w.run_program(master, **params))


_LOG_NAME_RE = re.compile(r"^thread_(\d+)\.log$")


def frame_kill_points(trace_dir: str | Path) -> list[KillPoint]:
    """Enumerate kill points from the actual frame layout of each log.

    Per frame: the boundary after it, a mid-header cut, a mid-payload
    cut, and a cut just before the commit marker; plus the file end
    itself (``clean-end`` — the no-fault control point, which salvage
    must analyze byte-identically to strict).  The layout comes from the
    reader's own :meth:`~repro.sword.reader.ThreadTraceReader.
    frame_spans` index — the sweep cuts exactly where the reader says
    frames live, with no second frame parser to drift out of sync.
    """
    trace_dir = Path(trace_dir)
    points: list[KillPoint] = []
    for log_path in sorted(trace_dir.glob("thread_*.log")):
        name = log_path.name
        gid = int(_LOG_NAME_RE.match(name).group(1))
        size = log_path.stat().st_size
        try:
            with ThreadTraceReader(trace_dir, gid) as reader:
                spans = reader.frame_spans()
        except TraceFormatError as exc:
            raise TraceFormatError(
                f"{exc} (sweep requires a clean trace)"
            ) from exc
        covered = spans[-1].end if spans else 0
        if covered != size:
            raise TraceFormatError(
                f"{log_path}: trailing bytes past frame {len(spans) - 1} at "
                f"byte {covered} (sweep requires a clean trace)"
            )
        for span in spans:
            points.append(
                KillPoint(name, span.start + span.header_bytes // 2, "mid-header")
            )
            if span.version >= 2:
                points.append(
                    KillPoint(
                        name,
                        span.start + span.header_bytes + span.payload_bytes // 2,
                        "mid-payload",
                    )
                )
                points.append(KillPoint(name, span.end - 4, "pre-commit"))
            points.append(
                KillPoint(
                    name,
                    span.end,
                    "clean-end" if span.end == size else "boundary",
                )
            )
    return points


@dataclass(slots=True)
class SweepPointResult:
    """Outcome of salvage analysis after one kill."""

    point: KillPoint
    completed: bool
    subset_ok: bool
    identical: bool  # race set byte-identical to the clean run's
    races: int = 0
    error: str = ""
    integrity: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        if self.point.kind == "clean-end":
            return self.completed and self.identical
        return self.completed and self.subset_ok

    def to_json(self) -> dict:
        return {
            "target": self.point.target,
            "offset": self.point.offset,
            "kind": self.point.kind,
            "completed": self.completed,
            "subset_ok": self.subset_ok,
            "identical": self.identical,
            "races": self.races,
            "ok": self.ok,
            "error": self.error,
            "integrity": self.integrity,
        }


@dataclass(slots=True)
class SweepResult:
    """All kill points of one workload, checked against the clean run."""

    workload: str
    seed: int
    nthreads: int
    clean_races: int
    points: list[SweepPointResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.points)

    @property
    def failures(self) -> list[SweepPointResult]:
        return [p for p in self.points if not p.ok]

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "nthreads": self.nthreads,
            "clean_races": self.clean_races,
            "kill_points": len(self.points),
            "ok": self.ok,
            "points": [p.to_json() for p in self.points],
        }

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} point(s))"
        return (
            f"kill-sweep {self.workload}: {len(self.points)} kill point(s), "
            f"clean races={self.clean_races} -> {status}"
        )


def _truncate_copy(clean: Path, work: Path, point: KillPoint) -> None:
    if work.exists():
        shutil.rmtree(work)
    shutil.copytree(clean, work)
    target = work / point.target
    target.write_bytes(target.read_bytes()[: point.offset])


def kill_sweep(
    workload: Union[str, Workload],
    *,
    nthreads: int = 2,
    seed: int = 0,
    buffer_events: int = 64,
    max_points: int | None = None,
    keep_root: str | Path | None = None,
    delta_filter: bool = False,
    **params,
) -> SweepResult:
    """Run the full kill-anywhere property check for one workload.

    Collects one clean durable trace, analyses it strictly (the
    reference race set), then for every enumerated kill point truncates
    a pristine copy and salvage-analyses it.  ``max_points`` subsamples
    evenly for smoke runs; ``keep_root`` keeps the working directory
    (for debugging) instead of a self-cleaning temp dir.
    """
    from .. import api  # deferred: api imports the harness driver stack

    w = _resolve(workload)
    root = Path(keep_root) if keep_root else Path(
        tempfile.mkdtemp(prefix="sword-faults-")
    )
    root.mkdir(parents=True, exist_ok=True)
    clean = root / "clean"
    try:
        collect_trace(
            w, clean, nthreads=nthreads, seed=seed,
            buffer_events=buffer_events, delta_filter=delta_filter, **params,
        )
        reference = api.analyze(TraceDir(clean))
        ref_pairs = reference.races.pc_pairs()
        ref_json = reference.races.to_json()
        points = frame_kill_points(clean)
        if max_points is not None and len(points) > max_points:
            step = len(points) / max_points
            points = [points[int(i * step)] for i in range(max_points)]
        result = SweepResult(
            workload=w.name,
            seed=seed,
            nthreads=nthreads,
            clean_races=len(ref_pairs),
        )
        work = root / "work"
        journal = get_obs().journal
        for point in points:
            _truncate_copy(clean, work, point)
            try:
                analysis = api.analyze(work, integrity="salvage")
            except Exception as exc:  # the property forbids ANY crash
                result.points.append(
                    SweepPointResult(
                        point=point,
                        completed=False,
                        subset_ok=False,
                        identical=False,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )
                journal.record(
                    "kill-point",
                    workload=w.name,
                    target=point.target,
                    offset=point.offset,
                    kill_kind=point.kind,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            pairs = analysis.races.pc_pairs()
            outcome = SweepPointResult(
                point=point,
                completed=True,
                subset_ok=pairs <= ref_pairs,
                identical=analysis.races.to_json() == ref_json,
                races=len(pairs),
                integrity=(
                    analysis.integrity.to_json()
                    if analysis.integrity is not None
                    else {}
                ),
            )
            result.points.append(outcome)
            journal.record(
                "kill-point",
                workload=w.name,
                target=point.target,
                offset=point.offset,
                kill_kind=point.kind,
                ok=outcome.ok,
                races=len(pairs),
            )
        return result
    finally:
        if keep_root is None:
            shutil.rmtree(root, ignore_errors=True)
