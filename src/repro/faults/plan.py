"""Seedable, serialisable mutation plans for closed trace directories.

A :class:`FaultPlan` is the unit of reproducibility: the same seed
against the same trace directory always generates (and applies) the
same mutations, and a plan can round-trip through JSON so a CI artifact
is enough to replay a failure locally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path

ACTION_KINDS = (
    "truncate",        # cut the target file at `offset`
    "flip",            # XOR `length` bytes at `offset` with 0xFF
    "delete_line",     # remove 0-based line `index` (meta/journal files)
    "duplicate_line",  # duplicate 0-based line `index`
    "delete_file",     # remove the target file entirely
)


@dataclass(frozen=True, slots=True)
class FaultAction:
    """One mutation of one file inside a trace directory."""

    kind: str
    target: str  # file name relative to the trace directory
    offset: int = 0
    length: int = 0
    index: int = 0

    def describe(self) -> str:
        if self.kind == "truncate":
            return f"truncate {self.target} at byte {self.offset}"
        if self.kind == "flip":
            return f"flip {self.length} byte(s) of {self.target} at {self.offset}"
        if self.kind == "delete_line":
            return f"delete line {self.index} of {self.target}"
        if self.kind == "duplicate_line":
            return f"duplicate line {self.index} of {self.target}"
        if self.kind == "delete_file":
            return f"delete {self.target}"
        return f"{self.kind} {self.target}"

    def apply(self, trace_dir: Path) -> bool:
        """Mutate the file in place; False when the target is unusable."""
        path = trace_dir / self.target
        if not path.exists():
            return False
        if self.kind == "delete_file":
            path.unlink()
            return True
        if self.kind == "truncate":
            data = path.read_bytes()
            if self.offset >= len(data):
                return False
            path.write_bytes(data[: self.offset])
            return True
        if self.kind == "flip":
            data = bytearray(path.read_bytes())
            if self.offset >= len(data) or self.length <= 0:
                return False
            for i in range(self.offset, min(self.offset + self.length, len(data))):
                data[i] ^= 0xFF
            path.write_bytes(bytes(data))
            return True
        if self.kind in ("delete_line", "duplicate_line"):
            lines = path.read_text().splitlines(keepends=True)
            if not 0 <= self.index < len(lines):
                return False
            if self.kind == "delete_line":
                del lines[self.index]
            else:
                lines.insert(self.index, lines[self.index])
            path.write_text("".join(lines))
            return True
        raise ValueError(f"unknown fault kind {self.kind!r}")

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "offset": self.offset,
            "length": self.length,
            "index": self.index,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FaultAction":
        return cls(
            kind=str(payload["kind"]),
            target=str(payload["target"]),
            offset=int(payload.get("offset", 0)),
            length=int(payload.get("length", 0)),
            index=int(payload.get("index", 0)),
        )


@dataclass(slots=True)
class FaultPlan:
    """A reproducible list of :class:`FaultAction` for one trace."""

    seed: int = 0
    actions: list[FaultAction] = field(default_factory=list)
    #: Filled by :meth:`apply`: one description per action that took effect.
    applied: list[str] = field(default_factory=list)

    @classmethod
    def random(
        cls,
        trace_dir: str | Path,
        *,
        seed: int = 0,
        actions: int = 3,
    ) -> "FaultPlan":
        """Generate a deterministic plan from the directory's current state.

        File lists are sorted and every random draw comes from one
        ``random.Random(seed)`` stream, so (directory contents, seed)
        fully determine the plan.
        """
        trace_dir = Path(trace_dir)
        rng = random.Random(seed)
        logs = sorted(p.name for p in trace_dir.glob("thread_*.log"))
        metas = sorted(p.name for p in trace_dir.glob("thread_*.meta"))
        texts = metas + sorted(
            p.name
            for p in trace_dir.iterdir()
            if p.suffix in (".json", ".jsonl") and p.is_file()
        )
        plan = cls(seed=seed)
        for _ in range(actions):
            kind = rng.choice(ACTION_KINDS)
            if kind in ("truncate", "flip") and logs:
                target = rng.choice(logs)
                size = (trace_dir / target).stat().st_size
                if size == 0:
                    continue
                offset = rng.randrange(size)
                plan.actions.append(
                    FaultAction(
                        kind=kind,
                        target=target,
                        offset=offset,
                        length=rng.randint(1, 8) if kind == "flip" else 0,
                    )
                )
            elif kind in ("delete_line", "duplicate_line") and texts:
                target = rng.choice(texts)
                n_lines = len((trace_dir / target).read_text().splitlines())
                if n_lines == 0:
                    continue
                plan.actions.append(
                    FaultAction(
                        kind=kind, target=target, index=rng.randrange(n_lines)
                    )
                )
            elif kind == "delete_file" and metas:
                plan.actions.append(
                    FaultAction(kind=kind, target=rng.choice(metas))
                )
        return plan

    def apply(self, trace_dir: str | Path) -> list[str]:
        """Mutate the trace in place; returns descriptions of what stuck."""
        trace_dir = Path(trace_dir)
        self.applied = [
            action.describe()
            for action in self.actions
            if action.apply(trace_dir)
        ]
        return self.applied

    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "actions": [a.to_json() for a in self.actions],
            "applied": list(self.applied),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        return cls(
            seed=int(payload.get("seed", 0)),
            actions=[
                FaultAction.from_json(a) for a in payload.get("actions", [])
            ],
            applied=list(payload.get("applied", [])),
        )
