"""IO-error injection for the online logger's write path.

:class:`FaultySinkFactory` is a drop-in ``sink_factory`` for
:class:`~repro.sword.logger.SwordTool`: it opens real files but wraps
them so the *Nth write across the whole run* raises ``OSError`` —
transiently (the logger's retry succeeds) or permanently (retries
exhaust and the degradation policy decides).  Write counting is global
to the factory, matching how a disk fills up: whichever thread writes
next hits the error.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(slots=True)
class SinkFaultSpec:
    """When and how sink writes fail.

    ``fail_at`` is 1-based over all writes through one factory.  A
    transient fault fails ``fail_count`` consecutive writes and then
    recovers (a logger retry is itself a write, so ``fail_count=1``
    means the first retry succeeds); ``permanent=True`` fails every
    write from ``fail_at`` on (disk full / volume gone).
    """

    fail_at: int = 1
    fail_count: int = 1
    permanent: bool = False
    message: str = "injected I/O error"

    def should_fail(self, nth_write: int) -> bool:
        if nth_write < self.fail_at:
            return False
        if self.permanent:
            return True
        return nth_write < self.fail_at + self.fail_count


class FaultySink:
    """A binary file wrapper that fails writes on the factory's schedule."""

    def __init__(self, file, factory: "FaultySinkFactory") -> None:
        self._file = file
        self._factory = factory

    def write(self, data: bytes) -> int:
        self._factory.writes += 1
        if self._factory.spec.should_fail(self._factory.writes):
            self._factory.failures += 1
            raise OSError(self._factory.spec.message)
        return self._file.write(data)

    # The logger uses tell/seek/truncate for partial-write rollback and
    # flush/fileno for durability; delegate them all.
    def flush(self) -> None:
        self._file.flush()

    def tell(self) -> int:
        return self._file.tell()

    def seek(self, pos: int, whence: int = 0) -> int:
        return self._file.seek(pos, whence)

    def truncate(self, size: int | None = None) -> int:
        return self._file.truncate(size)

    def fileno(self) -> int:
        return self._file.fileno()

    def close(self) -> None:
        self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed


class FaultySinkFactory:
    """``sink_factory`` injecting :class:`SinkFaultSpec` faults.

    Usage::

        factory = FaultySinkFactory(SinkFaultSpec(fail_at=3))
        tool = SwordTool(config, sink_factory=factory)
    """

    def __init__(self, spec: SinkFaultSpec | None = None) -> None:
        self.spec = spec or SinkFaultSpec()
        self.writes = 0
        self.failures = 0
        self.opened: list[Path] = []

    def __call__(self, path) -> FaultySink:
        path = Path(path)
        self.opened.append(path)
        return FaultySink(open(path, "wb"), self)
