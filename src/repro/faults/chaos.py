"""Service chaos harness: kill-anywhere, lifted to the analysis service.

PR 4's kill sweep proved the *trace* tier crash-tolerant: truncate the
bytes anywhere and salvage analysis yields a clean subset.  This module
proves the same discipline for the *service* tier's durable-recovery
layer:

* :func:`resume_sweep` — the SIGKILL-between-WAL-records property.  Run
  a reference service to completion, then for every prefix of its WAL
  (including torn-tail variants that cut a record mid-line) reconstruct
  the state directory exactly as a kill at that boundary would leave it
  — the WAL prefix plus only the shard checkpoints that prefix proves
  durable — and boot a fresh service on it.  Every unfinished job must
  complete with a race set byte-identical to the uninterrupted run, and
  every checkpointed shard must be *loaded*, never re-executed.

* :func:`poison_degradation` — the graceful-degradation scenario.
  Poison chosen shards (non-retryable failure, or a stall past the
  shard timeout) and verify the job finishes ``DEGRADED``: the merged
  race set is a subset of the clean answer, the
  :class:`~repro.serve.job.DegradationReport` names exactly the poison
  shards, and its pair-coverage fraction is arithmetically exact.

Both run the service with thread workers — deterministic, cheap, and
the substrate where a "kill" can be simulated faithfully by
construction instead of an actual SIGKILL racing the filesystem.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..serve import DEGRADED, ServeConfig, Service, TenantQuota
from ..serve.wal import WAL_NAME, replay_wal
from ..sword.traceformat import parse_journal
from ..workloads.base import Workload
from .harness import collect_trace

#: Workloads the chaos scenarios run by default: racy (a non-empty race
#: set makes byte-identity a real check) and small enough for smoke CI.
DEFAULT_WORKLOAD = "plusplus-orig-yes"


def _service_config(
    state_dir: Path,
    *,
    shard_pairs: int,
    quarantine: bool = True,
    shard_timeout_s: Optional[float] = None,
) -> ServeConfig:
    return ServeConfig(
        workers=2,
        use_processes=False,
        shard_pairs=shard_pairs,
        state_dir=str(state_dir),
        quota=TenantQuota(max_pending=16),
        shard_timeout_s=shard_timeout_s,
        quarantine=quarantine,
        shard_backoff_jitter_seed=0,
    )


def _wait_all(service: Service, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    for snapshot in service.jobs():
        job = service._job(snapshot["job_id"])
        if not job.done.wait(timeout=max(0.0, deadline - time.monotonic())):
            raise TimeoutError(f"job {job.job_id} never reached a terminal state")


# -- the resume sweep ----------------------------------------------------------


@dataclass(slots=True)
class ResumePointResult:
    """One restart: WAL truncated to ``records`` lines (``torn`` cuts
    the next line mid-byte instead of dropping it cleanly)."""

    records: int
    torn: bool
    jobs_resumed: int = 0
    jobs_checked: int = 0
    identical: bool = True
    #: Checkpointed shards the resumed run re-executed (must stay 0).
    reexecuted: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return not self.error and self.identical and self.reexecuted == 0

    def to_json(self) -> dict:
        return {
            "records": self.records,
            "torn": self.torn,
            "jobs_resumed": self.jobs_resumed,
            "jobs_checked": self.jobs_checked,
            "identical": self.identical,
            "reexecuted": self.reexecuted,
            "ok": self.ok,
            "error": self.error,
        }


@dataclass(slots=True)
class ResumeSweepResult:
    """Every WAL boundary of one reference run, restarted and checked."""

    workload: str
    seed: int
    jobs: int
    wal_records: int
    clean_races: int
    points: list[ResumePointResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.points) and all(p.ok for p in self.points)

    @property
    def failures(self) -> list[ResumePointResult]:
        return [p for p in self.points if not p.ok]

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "jobs": self.jobs,
            "wal_records": self.wal_records,
            "clean_races": self.clean_races,
            "restart_points": len(self.points),
            "ok": self.ok,
            "points": [p.to_json() for p in self.points],
        }

    def summary(self) -> str:
        status = "PASS" if self.ok else f"FAIL ({len(self.failures)} point(s))"
        return (
            f"resume-sweep {self.workload}: {len(self.points)} restart "
            f"point(s) over {self.wal_records} WAL record(s), "
            f"clean races={self.clean_races} -> {status}"
        )


def _reference_run(
    root: Path,
    traces: list[Path],
    *,
    shard_pairs: int,
) -> tuple[dict[str, dict], Path]:
    """Run every trace through one durable service to completion.

    Returns the per-job reference facts (race-set JSON, trace path,
    checkpoint tokens actually completed) and the reference state dir.
    """
    state = root / "ref-state"
    reference: dict[str, dict] = {}
    with Service(_service_config(state, shard_pairs=shard_pairs)) as svc:
        ids = [svc.submit(trace) for trace in traces]
        for job_id, trace in zip(ids, traces):
            result = svc.result(job_id, timeout=120)
            reference[job_id] = {
                "trace": str(trace),
                "races": result.races.to_json(),
            }
    return reference, state


def _build_killed_state(
    ref_state: Path, dest: Path, lines: list[bytes], torn_next: bool
) -> int:
    """Reconstruct the state dir a kill at this WAL boundary leaves.

    The WAL is the byte-exact prefix (plus, for ``torn_next``, the
    first half of the next record — the torn line a mid-``append`` kill
    leaves, which salvage replay must drop).  Checkpoints are copied
    *only* for shards the prefix proves durable: ``shard-done`` is
    appended after the checkpoint write, so at kill time every logged
    token's file exists — and nothing else is guaranteed.  Returns the
    number of checkpoint files carried over.
    """
    if dest.exists():
        shutil.rmtree(dest)
    dest.mkdir(parents=True)
    kept = len(lines) - (1 if torn_next else 0)
    wal_bytes = b"".join(lines[:kept])
    if torn_next:
        tail = lines[kept]
        wal_bytes += tail[: max(1, len(tail) // 2)]
    (dest / WAL_NAME).write_bytes(wal_bytes)
    carried = 0
    ckpt_src = ref_state / "checkpoints"
    ckpt_dst = dest / "checkpoints"
    ckpt_dst.mkdir()
    for record in parse_journal(wal_bytes.decode("utf-8", "replace"), salvage=True):
        if record.get("kind") != "shard-done":
            continue
        token = record.get("token")
        if not token:
            continue
        src = ckpt_src / f"{token}.json"
        if src.exists():
            shutil.copy2(src, ckpt_dst / src.name)
            carried += 1
    return carried


def resume_sweep(
    workload: Union[str, Workload] = DEFAULT_WORKLOAD,
    *,
    jobs: int = 2,
    nthreads: int = 2,
    seed: int = 0,
    shard_pairs: int = 8,
    max_points: Optional[int] = None,
    keep_root: str | Path | None = None,
) -> ResumeSweepResult:
    """The restart-at-any-WAL-boundary property check.

    ``jobs`` identical submissions of one collected trace give the WAL
    interleaved multi-job structure; ``shard_pairs`` keeps shards small
    so plenty of ``shard-done`` boundaries exist.  ``max_points``
    subsamples the restart points evenly for smoke runs.
    """
    root = Path(keep_root) if keep_root else Path(
        tempfile.mkdtemp(prefix="sword-chaos-")
    )
    root.mkdir(parents=True, exist_ok=True)
    try:
        trace = root / "trace"
        collect_trace(workload, trace, nthreads=nthreads, seed=seed)
        traces = [trace] * jobs
        reference, ref_state = _reference_run(
            root, traces, shard_pairs=shard_pairs
        )
        wal_bytes = (ref_state / WAL_NAME).read_bytes()
        lines = wal_bytes.decode("utf-8").splitlines(keepends=True)
        name = workload if isinstance(workload, str) else workload.name
        result = ResumeSweepResult(
            workload=name,
            seed=seed,
            jobs=jobs,
            wal_records=len(lines),
            clean_races=max(
                len(ref["races"]) for ref in reference.values()
            ),
        )
        # Every clean boundary (0..n records kept), then every torn cut.
        points = [(k, False) for k in range(len(lines) + 1)]
        points += [(k, True) for k in range(1, len(lines) + 1)]
        if max_points is not None and len(points) > max_points:
            step = len(points) / max_points
            points = [points[int(i * step)] for i in range(max_points)]
        raw_lines = [line.encode("utf-8") for line in lines]
        for index, (kept, torn) in enumerate(points):
            point = ResumePointResult(records=kept, torn=torn)
            result.points.append(point)
            state = root / f"restart-{index:03d}"
            try:
                carried = _build_killed_state(
                    ref_state, state, raw_lines[:kept], torn
                )
                point.jobs_checked, point.jobs_resumed = _check_restart(
                    state, reference, carried, point, shard_pairs
                )
            except Exception as exc:  # the property forbids ANY crash
                point.error = f"{type(exc).__name__}: {exc}"
            finally:
                shutil.rmtree(state, ignore_errors=True)
        return result
    finally:
        if keep_root is None:
            shutil.rmtree(root, ignore_errors=True)


def _check_restart(
    state: Path,
    reference: dict[str, dict],
    carried: int,
    point: ResumePointResult,
    shard_pairs: int,
) -> tuple[int, int]:
    """Boot a service on a killed state dir and check the invariants."""
    replay = replay_wal(state / WAL_NAME)
    expected_resume = {j.job_id for j in replay.unfinished}
    with Service(_service_config(state, shard_pairs=shard_pairs)) as svc:
        _wait_all(svc)
        checked = 0
        reexecuted = 0
        for job_id in expected_resume:
            ref = reference.get(job_id)
            if ref is None:
                point.error = f"resumed unknown job {job_id}"
                break
            result = svc.result(job_id, timeout=120)
            checked += 1
            if result.races.to_json() != ref["races"]:
                point.identical = False
            job = svc._job(job_id)
            durable = len(replay.jobs[job_id].shards_done)
            if job.checkpoint_hits < durable:
                # A shard the WAL proved durable was re-executed.
                reexecuted += durable - job.checkpoint_hits
        point.reexecuted = reexecuted
        return checked, len(expected_resume)


# -- poison-shard degradation --------------------------------------------------


@dataclass(slots=True)
class DegradationScenarioResult:
    """One poison-shard run checked against its clean reference."""

    workload: str
    seed: int
    poison_shards: list[int] = field(default_factory=list)
    stalled_shards: list[int] = field(default_factory=list)
    state: str = ""
    clean_races: int = 0
    degraded_races: int = 0
    subset_ok: bool = False
    quarantine_exact: bool = False
    coverage_exact: bool = False
    wal_agrees: bool = False
    report: dict = field(default_factory=dict)
    error: str = ""

    @property
    def ok(self) -> bool:
        return (
            not self.error
            and self.state == DEGRADED
            and self.subset_ok
            and self.quarantine_exact
            and self.coverage_exact
            and self.wal_agrees
        )

    def to_json(self) -> dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "poison_shards": self.poison_shards,
            "stalled_shards": self.stalled_shards,
            "state": self.state,
            "clean_races": self.clean_races,
            "degraded_races": self.degraded_races,
            "subset_ok": self.subset_ok,
            "quarantine_exact": self.quarantine_exact,
            "coverage_exact": self.coverage_exact,
            "wal_agrees": self.wal_agrees,
            "ok": self.ok,
            "report": self.report,
            "error": self.error,
        }

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        coverage = self.report.get("pair_coverage")
        return (
            f"poison-degradation {self.workload}: state={self.state} "
            f"races={self.degraded_races}/{self.clean_races} "
            f"coverage={coverage if coverage is not None else '-'} -> {status}"
        )


def poison_degradation(
    workload: Union[str, Workload] = DEFAULT_WORKLOAD,
    *,
    nthreads: int = 2,
    seed: int = 0,
    shard_pairs: int = 4,
    poison: tuple[int, ...] = (1,),
    stall: tuple[int, ...] = (),
    shard_timeout_s: Optional[float] = None,
    keep_root: str | Path | None = None,
) -> DegradationScenarioResult:
    """Poison chosen shards and verify graceful degradation.

    ``poison`` shards raise a non-retryable error on every attempt (the
    exhausted-retry-budget poison); ``stall`` shards sleep past
    ``shard_timeout_s`` once, exercising the liveness deadline, then
    fail poisoned too.  The job must finish ``DEGRADED`` with an exact
    quarantine list, an exact pair-coverage fraction, a subset race
    set, and a WAL ``finalized`` record that agrees.
    """
    name = workload if isinstance(workload, str) else workload.name
    result = DegradationScenarioResult(
        workload=name,
        seed=seed,
        poison_shards=sorted(poison),
        stalled_shards=sorted(stall),
    )
    root = Path(keep_root) if keep_root else Path(
        tempfile.mkdtemp(prefix="sword-chaos-poison-")
    )
    root.mkdir(parents=True, exist_ok=True)
    try:
        trace = root / "trace"
        collect_trace(workload, trace, nthreads=nthreads, seed=seed)
        # Clean reference: same service shape, nothing poisoned.
        with Service(
            _service_config(root / "clean-state", shard_pairs=shard_pairs)
        ) as svc:
            clean = svc.result(svc.submit(trace), timeout=120)
        clean_json = clean.races.to_json()
        result.clean_races = len(clean_json)
        state = root / "poison-state"
        config = _service_config(
            state,
            shard_pairs=shard_pairs,
            shard_timeout_s=shard_timeout_s,
        )
        with Service(config) as svc:
            sabotage(svc, poison=poison, stall=stall, timeout_s=shard_timeout_s)
            job_id = svc.submit(trace)
            job = svc._job(job_id)
            job.done.wait(timeout=120)
            result.state = job.state
            degraded_json = job.races.to_json()
            result.degraded_races = len(degraded_json)
            result.subset_ok = set(map(str, degraded_json)) <= set(
                map(str, clean_json)
            )
            report = job.degradation.to_json() if job.degradation else {}
            result.report = report
            bad = sorted(set(poison) | set(stall))
            result.quarantine_exact = (
                report.get("shards_quarantined") == bad
            )
            pairs_total = report.get("pairs_total", 0)
            pairs_missing = report.get("pairs_missing", 0)
            result.coverage_exact = bool(pairs_total) and abs(
                report.get("pair_coverage", -1.0)
                - (1.0 - pairs_missing / pairs_total)
            ) < 1e-9
        replay = replay_wal(state / WAL_NAME)
        job_replay = replay.jobs.get(job_id)
        result.wal_agrees = (
            job_replay is not None and job_replay.final_state == result.state
        )
        return result
    except Exception as exc:
        result.error = f"{type(exc).__name__}: {exc}"
        return result
    finally:
        if keep_root is None:
            shutil.rmtree(root, ignore_errors=True)


def sabotage(
    service: Service,
    *,
    poison: tuple[int, ...] = (),
    stall: tuple[int, ...] = (),
    timeout_s: Optional[float] = None,
) -> None:
    """Wrap the service pool's execution seam with injected faults.

    ``poison`` pair-shard indices raise a non-retryable error on every
    attempt; ``stall`` indices run to completion but only after sleeping
    past ``timeout_s``, so the pool's deadline fires (and keeps firing
    on the requeued attempts) until the shard's crash budget is spent.
    Thread-worker services only — the seam does not cross processes.
    """
    original = service.pool._execute

    def chaotic(spec):
        index = getattr(spec, "index", None)
        if index in poison:
            raise RuntimeError(f"chaos: poisoned shard {index}")
        if index in stall and timeout_s is not None:
            time.sleep(timeout_s * 1.5)
        return original(spec)

    service.pool._execute = chaotic
