"""``python -m repro faults`` — the fault-injection CLI.

Two subcommands:

* ``inject <trace-dir>`` — apply a seeded
  :class:`~repro.faults.plan.FaultPlan` to an existing trace directory
  (in place; run it on a copy).  Prints the mutations; ``--plan-out``
  saves the plan JSON for replay.
* ``sweep <workload>`` — the kill-anywhere property check: collect a
  clean durable trace, truncate at every frame kill point, and verify
  that salvage analysis completes with a subset race set.  ``--out``
  writes the full report (per-point integrity reports included) as a
  JSON artifact; exit status 2 when any point violates the property
  (sweep failure is an *error*, not a race verdict — see
  :mod:`repro.common.exitcodes`).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from ..common.exitcodes import EXIT_CLEAN, EXIT_ERROR, exit_meaning
from .harness import kill_sweep
from .plan import FaultPlan


def add_faults_subcommands(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="faults_command", required=True)

    p = sub.add_parser(
        "inject", help="apply a seeded fault plan to a trace directory"
    )
    p.add_argument("trace_dir")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--actions", type=int, default=3, help="mutations to generate"
    )
    p.add_argument(
        "--plan-out", metavar="PATH", help="save the applied plan as JSON"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser(
        "sweep",
        help="kill-point sweep: verify salvage analysis at every truncation",
    )
    p.add_argument("workload", nargs="?", default="antidep1-orig-yes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threads", type=int, default=2)
    p.add_argument(
        "--buffer-events",
        type=int,
        default=64,
        help="small buffers -> many frames -> many kill points",
    )
    p.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="subsample the kill points evenly (smoke runs)",
    )
    p.add_argument(
        "--delta-filter",
        action="store_true",
        help="collect the clean trace with delta-filtered frames",
    )
    p.add_argument(
        "--out", metavar="PATH", help="write the sweep report JSON artifact"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")


def _cmd_inject(args: argparse.Namespace) -> int:
    trace_dir = Path(args.trace_dir)
    if not trace_dir.is_dir():
        print(f"not a trace directory: {trace_dir}")
        return EXIT_ERROR
    plan = FaultPlan.random(trace_dir, seed=args.seed, actions=args.actions)
    applied = plan.apply(trace_dir)
    if args.plan_out:
        Path(args.plan_out).write_text(json.dumps(plan.to_json(), indent=2))
    if args.json:
        payload = plan.to_json()
        payload["exit_code"] = EXIT_CLEAN
        payload["exit_meaning"] = exit_meaning(EXIT_CLEAN)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_CLEAN
    if not applied:
        print("no applicable faults (empty trace?)")
        return 0
    for line in applied:
        print(f"injected: {line}")
    print(
        f"{len(applied)} fault(s) applied (seed {args.seed}); analyze with "
        f"--salvage to see the integrity report"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    result = kill_sweep(
        args.workload,
        nthreads=args.threads,
        seed=args.seed,
        buffer_events=args.buffer_events,
        max_points=args.max_points,
        delta_filter=args.delta_filter,
    )
    code = EXIT_CLEAN if result.ok else EXIT_ERROR
    payload = result.to_json()
    payload["exit_code"] = code
    payload["exit_meaning"] = exit_meaning(code)
    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.summary())
        for point in result.failures:
            print(
                f"  FAILED {point.point.describe()}: "
                f"{point.error or 'race set not a subset'}"
            )
    return code


def run_faults_command(args: argparse.Namespace) -> int:
    if args.faults_command == "inject":
        return _cmd_inject(args)
    if args.faults_command == "sweep":
        return _cmd_sweep(args)
    raise ValueError(f"unknown faults command {args.faults_command!r}")
