"""``python -m repro faults`` — the fault-injection CLI.

Two subcommands:

* ``inject <trace-dir>`` — apply a seeded
  :class:`~repro.faults.plan.FaultPlan` to an existing trace directory
  (in place; run it on a copy).  Prints the mutations; ``--plan-out``
  saves the plan JSON for replay.
* ``sweep <workload>`` — the kill-anywhere property check: collect a
  clean durable trace, truncate at every frame kill point, and verify
  that salvage analysis completes with a subset race set.  ``--out``
  writes the full report (per-point integrity reports included) as a
  JSON artifact; exit status 2 when any point violates the property
  (sweep failure is an *error*, not a race verdict — see
  :mod:`repro.common.exitcodes`).
* ``chaos`` — the service-tier chaos check: the resume sweep (restart
  a durable service at every WAL boundary, require byte-identical
  completion with zero re-executed checkpointed shards) plus the
  poison-shard degradation scenario.  ``--out DIR`` writes the WAL,
  its parsed records (schema-validated against
  ``schemas/wal-record.schema.json``), and both reports as artifacts;
  exit status 2 when either property is violated.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
from pathlib import Path

from ..common.exitcodes import EXIT_CLEAN, EXIT_ERROR, exit_meaning
from .harness import kill_sweep
from .plan import FaultPlan


def add_faults_subcommands(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="faults_command", required=True)

    p = sub.add_parser(
        "inject", help="apply a seeded fault plan to a trace directory"
    )
    p.add_argument("trace_dir")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--actions", type=int, default=3, help="mutations to generate"
    )
    p.add_argument(
        "--plan-out", metavar="PATH", help="save the applied plan as JSON"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser(
        "sweep",
        help="kill-point sweep: verify salvage analysis at every truncation",
    )
    p.add_argument("workload", nargs="?", default="antidep1-orig-yes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threads", type=int, default=2)
    p.add_argument(
        "--buffer-events",
        type=int,
        default=64,
        help="small buffers -> many frames -> many kill points",
    )
    p.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="subsample the kill points evenly (smoke runs)",
    )
    p.add_argument(
        "--delta-filter",
        action="store_true",
        help="collect the clean trace with delta-filtered frames",
    )
    p.add_argument(
        "--out", metavar="PATH", help="write the sweep report JSON artifact"
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")

    p = sub.add_parser(
        "chaos",
        help="service chaos: WAL resume sweep + poison-shard degradation",
    )
    p.add_argument("workload", nargs="?", default="plusplus-orig-yes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--threads", type=int, default=2)
    p.add_argument(
        "--jobs", type=int, default=2, help="submissions in the reference run"
    )
    p.add_argument(
        "--shard-pairs",
        type=int,
        default=8,
        help="small shards -> many WAL boundaries to restart at",
    )
    p.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="subsample the restart points evenly (smoke runs)",
    )
    p.add_argument(
        "--out",
        metavar="DIR",
        help="artifact directory: WAL, parsed records, both reports",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")


def _cmd_inject(args: argparse.Namespace) -> int:
    trace_dir = Path(args.trace_dir)
    if not trace_dir.is_dir():
        print(f"not a trace directory: {trace_dir}")
        return EXIT_ERROR
    plan = FaultPlan.random(trace_dir, seed=args.seed, actions=args.actions)
    applied = plan.apply(trace_dir)
    if args.plan_out:
        Path(args.plan_out).write_text(json.dumps(plan.to_json(), indent=2))
    if args.json:
        payload = plan.to_json()
        payload["exit_code"] = EXIT_CLEAN
        payload["exit_meaning"] = exit_meaning(EXIT_CLEAN)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_CLEAN
    if not applied:
        print("no applicable faults (empty trace?)")
        return 0
    for line in applied:
        print(f"injected: {line}")
    print(
        f"{len(applied)} fault(s) applied (seed {args.seed}); analyze with "
        f"--salvage to see the integrity report"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    result = kill_sweep(
        args.workload,
        nthreads=args.threads,
        seed=args.seed,
        buffer_events=args.buffer_events,
        max_points=args.max_points,
        delta_filter=args.delta_filter,
    )
    code = EXIT_CLEAN if result.ok else EXIT_ERROR
    payload = result.to_json()
    payload["exit_code"] = code
    payload["exit_meaning"] = exit_meaning(code)
    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(result.summary())
        for point in result.failures:
            print(
                f"  FAILED {point.point.describe()}: "
                f"{point.error or 'race set not a subset'}"
            )
    return code


def _cmd_chaos(args: argparse.Namespace) -> int:
    from ..obs.schema import validate
    from ..serve.wal import WAL_NAME, replay_wal
    from ..sword.traceformat import parse_journal
    from .chaos import poison_degradation, resume_sweep

    sweep = resume_sweep(
        args.workload,
        jobs=args.jobs,
        nthreads=args.threads,
        seed=args.seed,
        shard_pairs=args.shard_pairs,
        max_points=args.max_points,
    )
    # Keep the poison run's root so its WAL survives as an artifact.
    poison_root = Path(tempfile.mkdtemp(prefix="sword-chaos-artifacts-"))
    schema_errors: list[str] = []
    try:
        scenario = poison_degradation(
            args.workload,
            nthreads=args.threads,
            seed=args.seed,
            shard_pairs=max(2, args.shard_pairs // 2),
            keep_root=poison_root,
        )
        wal_src = poison_root / "poison-state" / WAL_NAME
        records = []
        if wal_src.exists():
            records = parse_journal(
                wal_src.read_text(encoding="utf-8"), salvage=True
            )
            schema_path = (
                Path(__file__).resolve().parents[3]
                / "schemas"
                / "wal-record.schema.json"
            )
            if schema_path.exists():
                schema_errors = validate(
                    records, json.loads(schema_path.read_text())
                )
        else:
            schema_errors = [f"poison run left no WAL at {wal_src}"]
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            if wal_src.exists():
                shutil.copy2(wal_src, out / WAL_NAME)
            (out / "wal-records.json").write_text(
                json.dumps(records, indent=2, sort_keys=True)
            )
            (out / "resume-sweep.json").write_text(
                json.dumps(sweep.to_json(), indent=2, sort_keys=True)
            )
            (out / "degradation-report.json").write_text(
                json.dumps(scenario.to_json(), indent=2, sort_keys=True)
            )
    finally:
        shutil.rmtree(poison_root, ignore_errors=True)
    ok = sweep.ok and scenario.ok and not schema_errors
    code = EXIT_CLEAN if ok else EXIT_ERROR
    if args.json:
        payload = {
            "resume_sweep": sweep.to_json(),
            "degradation": scenario.to_json(),
            "wal_schema_errors": schema_errors,
            "exit_code": code,
            "exit_meaning": exit_meaning(code),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(sweep.summary())
        for point in sweep.failures:
            print(
                f"  FAILED restart@{point.records}"
                f"{'+torn' if point.torn else ''}: "
                f"{point.error or 'parity/reuse violated'}"
            )
        print(scenario.summary())
        if scenario.error:
            print(f"  ERROR {scenario.error}")
        for err in schema_errors:
            print(f"  WAL SCHEMA {err}")
    return code


def run_faults_command(args: argparse.Namespace) -> int:
    if args.faults_command == "inject":
        return _cmd_inject(args)
    if args.faults_command == "sweep":
        return _cmd_sweep(args)
    if args.faults_command == "chaos":
        return _cmd_chaos(args)
    raise ValueError(f"unknown faults command {args.faults_command!r}")
