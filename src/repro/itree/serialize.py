"""Exact-shape (de)serialisation of summarised interval trees.

The persistent result cache stores per-interval trees across analysis
runs.  A cached tree must behave *identically* to the one built from the
log: the engine's comparison walks ``iter_overlaps`` in a tree-SHAPE-
dependent order and keeps the first witness per site pair within a
comparison, so a structurally different (merely equivalent) tree could
select different — still correct, but not byte-identical — witnesses.

Re-inserting intervals would rebalance and change the shape.  Instead the
tree is stored as a preorder walk with explicit nil markers and node
colors, and reconstructed node-by-node with ``max_high`` recomputed
bottom-up — no rebalancing, same shape, same colors, same probe order.
"""

from __future__ import annotations

from .interval import StridedInterval
from .tree import BLACK, RED, IntervalTree, Node

#: Bump when the row layout changes (invalidates cached trees).
TREE_FORMAT = 1


def tree_to_rows(tree: IntervalTree) -> list:
    """Preorder serialisation: one row per node, ``None`` per nil child."""
    rows: list = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node is tree.nil:
            rows.append(None)
            continue
        si = node.interval
        rows.append(
            [
                1 if node.color == RED else 0,
                si.low,
                si.stride,
                si.size,
                si.count,
                1 if si.is_write else 0,
                1 if si.is_atomic else 0,
                si.pc,
                si.msid,
                si.point,
            ]
        )
        # Preorder: visit left before right, so push right first.
        stack.append(node.right)
        stack.append(node.left)
    return rows


def tree_from_rows(rows: list) -> IntervalTree:
    """Rebuild the exact tree a :func:`tree_to_rows` walk described."""
    tree = IntervalTree()
    it = iter(rows)

    def build(parent: Node) -> Node:
        row = next(it)
        if row is None:
            return tree.nil
        color, low, stride, size, count, write, atomic, pc, msid, point = row
        node = Node(
            StridedInterval(
                low=int(low),
                stride=int(stride),
                size=int(size),
                count=int(count),
                is_write=bool(write),
                is_atomic=bool(atomic),
                pc=int(pc),
                msid=int(msid),
                point=int(point),
            )
        )
        node.color = RED if color else BLACK
        node.parent = parent
        node.left = build(node)
        node.right = build(node)
        high = node.interval.high
        if node.left is not tree.nil:
            high = max(high, node.left.max_high)
        if node.right is not tree.nil:
            high = max(high, node.right.max_high)
        node.max_high = high
        tree._size += 1
        return node

    tree.root = build(tree.nil)
    try:
        next(it)
    except StopIteration:
        return tree
    raise ValueError("trailing rows after tree reconstruction")
