"""Exact-shape (de)serialisation of summarised interval trees.

The persistent result cache stores per-interval trees across analysis
runs.  ``iter_overlaps`` enumerates in in-order (shape-independent), so
witness selection only depends on the stored interval *sequence*; the
preorder-with-colors encoding is kept because it is also a faithful
round-trip of the red-black structure (``validate()`` passes on the
reconstruction) and costs nothing extra.  The tree is stored as a
preorder walk with explicit nil markers and node colors, and
reconstructed node-by-node with ``max_high`` recomputed bottom-up — no
rebalancing, same shape, same colors.
"""

from __future__ import annotations

from .interval import StridedInterval
from .tree import BLACK, RED, IntervalTree, Node

#: Bump when the row layout changes (invalidates cached trees).
#: 2: trees are bulk-built (build_from_sorted) — shapes differ from the
#: incremental-insert shapes version 1 cached.
TREE_FORMAT = 2


def tree_to_rows(tree: IntervalTree) -> list:
    """Preorder serialisation: one row per node, ``None`` per nil child."""
    rows: list = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if node is tree.nil:
            rows.append(None)
            continue
        si = node.interval
        rows.append(
            [
                1 if node.color == RED else 0,
                si.low,
                si.stride,
                si.size,
                si.count,
                1 if si.is_write else 0,
                1 if si.is_atomic else 0,
                si.pc,
                si.msid,
                si.point,
            ]
        )
        # Preorder: visit left before right, so push right first.
        stack.append(node.right)
        stack.append(node.left)
    return rows


def tree_from_rows(rows: list) -> IntervalTree:
    """Rebuild the exact tree a :func:`tree_to_rows` walk described."""
    tree = IntervalTree()
    it = iter(rows)

    def build(parent: Node) -> Node:
        row = next(it)
        if row is None:
            return tree.nil
        color, low, stride, size, count, write, atomic, pc, msid, point = row
        node = Node(
            StridedInterval(
                low=int(low),
                stride=int(stride),
                size=int(size),
                count=int(count),
                is_write=bool(write),
                is_atomic=bool(atomic),
                pc=int(pc),
                msid=int(msid),
                point=int(point),
            )
        )
        node.color = RED if color else BLACK
        node.parent = parent
        node.left = build(node)
        node.right = build(node)
        high = node.interval.high
        if node.left is not tree.nil:
            high = max(high, node.left.max_high)
        if node.right is not tree.nil:
            high = max(high, node.right.max_high)
        node.max_high = high
        tree._size += 1
        return node

    tree.root = build(tree.nil)
    try:
        next(it)
    except StopIteration:
        return tree
    raise ValueError("trailing rows after tree reconstruction")
