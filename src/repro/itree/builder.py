"""Summarising interval-tree builder.

Streams access events (decoded trace records) into an
:class:`~repro.itree.tree.IntervalTree`, coalescing loop access patterns into
strided intervals exactly as the paper describes: "the interval tree approach
allows us to summarize the information about consecutive memory accesses
(e.g., array accesses) in one node".

Coalescing strategy: per access *site* — the ``(pc, op, atomicity, size,
mutex set)`` tuple — the builder keeps the most recent open progression.  A
new access that continues that progression (next element, duplicate, or a
stride-establishing second element) is absorbed in O(1); anything else seals
the old node and opens a fresh progression.  This captures the dominant loop
idioms (unit-stride sweeps, strided sweeps, repeated re-reads of one location
such as ``a[0]``) while remaining a strict streaming pass.

Two ingestion paths share those semantics:

* :meth:`TreeBuilder.add_access` — one event at a time (scalar);
* :meth:`TreeBuilder.add_records` — a whole EVENT_DTYPE chunk, coalesced
  with NumPy: records are grouped by site, consecutive duplicates are
  collapsed, and constant-stride runs are found from the address diffs via
  a precomputed change-point array, so the Python-level cost is
  proportional to the number of *sealed nodes*, not the number of records.

Sealed intervals accumulate in seal order and the final tree is bulk-built
by :meth:`IntervalTree.build_from_sorted` from the stably-sorted sequence —
which is exactly the in-order sequence incremental inserts would have
produced (equal keys descend right), so query results are identical.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..common.events import (
    EVENT_DTYPE,
    FLAG_ATOMIC,
    FLAG_WRITE,
    KIND_ACCESS,
    Access,
)
from .interval import StridedInterval, interval_from_access
from .tree import IntervalTree


class TreeBuilder:
    """Incrementally build a summarised interval tree from an access stream."""

    def __init__(self) -> None:
        self.tree = IntervalTree()
        # Open progressions by site key; sealed into ``_pending`` when broken.
        self._open: dict[tuple, StridedInterval] = {}
        # Sealed intervals in exact seal order (the insertion sequence the
        # per-record path would have used).
        self._pending: list[StridedInterval] = []
        # Monotone record counter ordering seals across batches.
        self._seq = 0
        self.events_in = 0
        #: True once :meth:`finish` built the tree with ``build_from_sorted``
        #: (as opposed to incremental inserts); the engine counts these.
        self.bulk_built = False

    def add_access(self, access: Access) -> None:
        """Absorb one access event."""
        self.events_in += 1
        self._seq += 1
        a = access.normalized()
        key = (a.pc, a.is_write, a.is_atomic, a.size, a.msid, a.task_point)
        cur = self._open.get(key)
        if cur is not None:
            if a.count == 1:
                if cur.try_extend(a.addr):
                    return
            elif cur.try_append_bulk(a.addr, a.count, a.stride):
                return
            self._pending.append(cur)
        self._open[key] = interval_from_access(a)

    def add_records(self, records: np.ndarray) -> None:
        """Absorb a batch of EVENT_DTYPE records (non-access kinds skipped).

        This is the streaming entry point used by the offline analysis: one
        decoded chunk at a time.  Coalescing is vectorised per site; the
        result — open progressions and the seal sequence — is identical to
        feeding every record through :meth:`add_access`.
        """
        if records.dtype != EVENT_DTYPE:
            raise ValueError("records must use EVENT_DTYPE")
        mask = records["kind"] == KIND_ACCESS
        if not mask.any():
            return
        acc = records[mask]
        n = acc.shape[0]
        self.events_in += n
        base = self._seq
        self._seq += n

        addrs = acc["addr"].astype(np.int64)
        sizes = acc["size"].astype(np.int64)
        counts = acc["count"].astype(np.int64)
        strides = acc["stride"].astype(np.int64)
        pcs = acc["pc"].astype(np.int64)
        msids = acc["msid"].astype(np.int64)
        points = acc["aux"].astype(np.int64)
        writes = (acc["flags"] & FLAG_WRITE) != 0
        atomics = (acc["flags"] & FLAG_ATOMIC) != 0

        # Group rows by site key.  lexsort is stable, so each group's rows
        # stay in record order; groups are then visited in first-appearance
        # order to preserve the ``_open`` dict's (site-first-seen) ordering.
        order = np.lexsort((points, msids, sizes, atomics, writes, pcs))
        kp, kw, ka = pcs[order], writes[order], atomics[order]
        ks, km, kt = sizes[order], msids[order], points[order]
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.logical_or.reduce(
            [
                kp[1:] != kp[:-1],
                kw[1:] != kw[:-1],
                ka[1:] != ka[:-1],
                ks[1:] != ks[:-1],
                km[1:] != km[:-1],
                kt[1:] != kt[:-1],
            ],
            out=change[1:],
        )
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], n)
        groups = sorted(
            (order[s:e] for s, e in zip(starts, ends)), key=lambda g: g[0]
        )

        # (seal position, interval) across all site groups of this batch.
        seals: list[tuple[int, StridedInterval]] = []
        for idx in groups:
            j = int(idx[0])
            key = (
                int(pcs[j]), bool(writes[j]), bool(atomics[j]),
                int(sizes[j]), int(msids[j]), int(points[j]),
            )
            if (counts[idx] > 1).any():
                self._coalesce_scalar(
                    key, idx, base, seals,
                    addrs, sizes, counts, strides, writes, atomics,
                    pcs, msids, points,
                )
            else:
                self._coalesce_dense(key, addrs[idx], idx, base, seals)

        seals.sort(key=lambda s: s[0])
        self._pending.extend(iv for _, iv in seals)

    # -- vectorised per-site coalescing ---------------------------------------

    def _coalesce_dense(
        self,
        key: tuple,
        site_addrs: np.ndarray,
        site_idx: np.ndarray,
        base: int,
        seals: list[tuple[int, StridedInterval]],
    ) -> None:
        """Coalesce one site's scalar (count == 1) accesses, vectorised.

        A carried-over open progression participates by prepending its last
        element(s), so the uniform run segmentation below reproduces the
        scalar head-merge rules exactly.
        """
        cur = self._open.get(key)
        if cur is not None:
            if cur.count == 1:
                pre = np.array([cur.low], dtype=np.int64)
            else:
                pre = np.array(
                    [cur.last_start - cur.stride, cur.last_start],
                    dtype=np.int64,
                )
            npre = len(pre)
            a_all = np.concatenate([pre, site_addrs])
            pos_all = np.concatenate(
                [np.full(npre, -1, dtype=np.int64), site_idx]
            )
        else:
            npre = 0
            a_all = site_addrs
            pos_all = site_idx

        # Collapse consecutive duplicates (re-touches of the last element).
        m_all = len(a_all)
        keep = np.empty(m_all, dtype=bool)
        keep[0] = True
        np.not_equal(a_all[1:], a_all[:-1], out=keep[1:])
        a = a_all[keep]
        pos = pos_all[keep]
        m = len(a)

        d = a[1:] - a[:-1]  # all nonzero after the collapse
        # Diff change points: a run starting at element p with stride d[p]
        # ends at the first diff index > p whose value differs — which,
        # because everything in between equals d[p], is the first change
        # point past p (one searchsorted per sealed run).
        cp = np.flatnonzero(d[1:] != d[:-1]) + 1
        ncp = len(cp)

        runs: list[tuple[int, int]] = []  # (first element, last element)
        p = 0
        while p < m:
            if p == m - 1 or d[p] <= 0:
                runs.append((p, p))
                p += 1
                continue
            j = int(np.searchsorted(cp, p, side="right"))
            e = int(cp[j]) if j < ncp else m - 1
            runs.append((p, e))
            p = e + 1

        size = key[3]
        last = len(runs) - 1
        for r, (s, e) in enumerate(runs):
            if r == 0 and cur is not None:
                # The head run extends the carried-over progression.
                extra = e - (npre - 1)
                if extra > 0:
                    if cur.count == 1:
                        cur.stride = int(d[0])
                        cur.count = 1 + extra
                    else:
                        cur.count += extra
                iv = cur
            else:
                count = e - s + 1
                iv = StridedInterval(
                    low=int(a[s]),
                    stride=int(d[s]) if count > 1 else size,
                    size=size,
                    count=count,
                    is_write=key[1],
                    is_atomic=key[2],
                    pc=key[0],
                    msid=key[4],
                    point=key[5],
                )
            if r == last:
                self._open[key] = iv
            else:
                # Sealed by the first record of the next run.
                seals.append((base + int(pos[runs[r + 1][0]]), iv))

    def _coalesce_scalar(
        self,
        key: tuple,
        site_idx: np.ndarray,
        base: int,
        seals: list[tuple[int, StridedInterval]],
        addrs, sizes, counts, strides, writes, atomics, pcs, msids, points,
    ) -> None:
        """Per-record fallback for site groups containing bulk accesses."""
        cur = self._open.get(key)
        for j in site_idx:
            i = int(j)
            a = Access(
                addr=int(addrs[i]),
                size=int(sizes[i]),
                count=int(counts[i]),
                stride=int(strides[i]) if counts[i] > 1 else 0,
                is_write=bool(writes[i]),
                is_atomic=bool(atomics[i]),
                pc=int(pcs[i]),
                msid=int(msids[i]),
                task_point=int(points[i]),
            ).normalized()
            if cur is not None:
                if a.count == 1:
                    if cur.try_extend(a.addr):
                        continue
                elif cur.try_append_bulk(a.addr, a.count, a.stride):
                    continue
                seals.append((base + i, cur))
            cur = interval_from_access(a)
        if cur is not None:
            self._open[key] = cur

    def finish(self) -> IntervalTree:
        """Seal all open progressions and return the tree.

        When nothing was inserted out-of-band the tree is bulk-built in one
        O(n) pass from the stably-sorted seal sequence — in-order-identical
        (hence query-identical) to inserting every seal incrementally.
        """
        self._pending.extend(self._open.values())
        self._open.clear()
        if self._pending:
            if not self.tree:
                self._pending.sort(key=lambda iv: iv.low)  # stable: ties keep seal order
                self.tree = IntervalTree.build_from_sorted(self._pending)
                self.bulk_built = True
            else:
                for interval in self._pending:
                    self.tree.insert(interval)
            self._pending = []
        return self.tree


def build_tree(accesses: Iterable[Access]) -> IntervalTree:
    """One-shot convenience: build a summarised tree from accesses."""
    b = TreeBuilder()
    for a in accesses:
        b.add_access(a)
    return b.finish()
