"""Summarising interval-tree builder.

Streams access events (decoded trace records) into an
:class:`~repro.itree.tree.IntervalTree`, coalescing loop access patterns into
strided intervals exactly as the paper describes: "the interval tree approach
allows us to summarize the information about consecutive memory accesses
(e.g., array accesses) in one node".

Coalescing strategy: per access *site* — the ``(pc, op, atomicity, size,
mutex set)`` tuple — the builder keeps the most recent open progression.  A
new access that continues that progression (next element, duplicate, or a
stride-establishing second element) is absorbed in O(1); anything else seals
the old node into the tree and opens a fresh progression.  This captures the
dominant loop idioms (unit-stride sweeps, strided sweeps, repeated re-reads
of one location such as ``a[0]``) while remaining a strict streaming pass.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..common.events import (
    EVENT_DTYPE,
    FLAG_ATOMIC,
    FLAG_WRITE,
    KIND_ACCESS,
    Access,
)
from .interval import StridedInterval, interval_from_access
from .tree import IntervalTree


class TreeBuilder:
    """Incrementally build a summarised interval tree from an access stream."""

    def __init__(self) -> None:
        self.tree = IntervalTree()
        # Open progressions by site key; flushed into the tree on seal.
        self._open: dict[tuple, StridedInterval] = {}
        self.events_in = 0

    def add_access(self, access: Access) -> None:
        """Absorb one access event."""
        self.events_in += 1
        a = access.normalized()
        key = (a.pc, a.is_write, a.is_atomic, a.size, a.msid, a.task_point)
        cur = self._open.get(key)
        if cur is not None:
            if a.count == 1:
                if cur.try_extend(a.addr):
                    return
            elif cur.try_append_bulk(a.addr, a.count, a.stride):
                return
            self.tree.insert(cur)
        self._open[key] = interval_from_access(a)

    def add_records(self, records: np.ndarray) -> None:
        """Absorb a batch of EVENT_DTYPE records (non-access kinds skipped).

        This is the streaming entry point used by the offline analysis: one
        decoded chunk at a time, no per-event Python object allocation for
        filtering.
        """
        if records.dtype != EVENT_DTYPE:
            raise ValueError("records must use EVENT_DTYPE")
        mask = records["kind"] == KIND_ACCESS
        if not mask.any():
            return
        acc = records[mask]
        addrs = acc["addr"].astype(np.int64)
        sizes = acc["size"].astype(np.int64)
        counts = acc["count"].astype(np.int64)
        strides = acc["stride"].astype(np.int64)
        flags = acc["flags"]
        pcs = acc["pc"].astype(np.int64)
        msids = acc["msid"].astype(np.int64)
        points = acc["aux"].astype(np.int64)
        writes = (flags & FLAG_WRITE) != 0
        atomics = (flags & FLAG_ATOMIC) != 0
        for i in range(acc.shape[0]):
            self.add_access(
                Access(
                    addr=int(addrs[i]),
                    size=int(sizes[i]),
                    count=int(counts[i]),
                    stride=int(strides[i]) if counts[i] > 1 else 0,
                    is_write=bool(writes[i]),
                    is_atomic=bool(atomics[i]),
                    pc=int(pcs[i]),
                    msid=int(msids[i]),
                    task_point=int(points[i]),
                )
            )

    def finish(self) -> IntervalTree:
        """Seal all open progressions and return the tree."""
        for interval in self._open.values():
            self.tree.insert(interval)
        self._open.clear()
        return self.tree


def build_tree(accesses: Iterable[Access]) -> IntervalTree:
    """One-shot convenience: build a summarised tree from accesses."""
    b = TreeBuilder()
    for a in accesses:
        b.add_access(a)
    return b.finish()
