"""Strided intervals: the payload of SWORD's interval-tree nodes.

A node summarises a run of accesses as an arithmetic progression of byte
addresses: ``count`` elements of ``size`` bytes, starting at ``low``, with
``stride`` bytes between element starts (paper §III-B and Figure 4).  The
paper's node fields — operation type, access size, stride, program counter,
and mutex set — map one-to-one onto the attributes here.

Byte-extent overlap between two nodes is necessary but *not* sufficient for
a shared address (Figure 4's interleaved strided accesses): the exact check
is delegated to :mod:`repro.ilp`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..common.events import Access


@dataclass(slots=True)
class StridedInterval:
    """An arithmetic progression of memory accesses.

    Invariants (enforced on construction):

    * ``count >= 1``; ``size >= 1``;
    * ``stride >= 1`` when ``count > 1`` — strides are normalised positive
      (descending loops are flipped to start at their lowest address);
    * singletons (``count == 1``) use ``stride == size`` by convention.
    """

    low: int
    stride: int
    size: int
    count: int
    is_write: bool
    is_atomic: bool
    pc: int
    msid: int
    #: Execution point (tasking extension): encoded (entity, seq); 0 when
    #: the access came from an implicit task at sequence 0.
    point: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if self.count == 1:
            self.stride = self.size
        elif self.stride < 1:
            raise ValueError("bulk intervals need a positive stride")

    # -- geometry -------------------------------------------------------------

    @property
    def high(self) -> int:
        """Last byte covered (inclusive)."""
        return self.low + (self.count - 1) * self.stride + self.size - 1

    @property
    def last_start(self) -> int:
        """First byte of the final element."""
        return self.low + (self.count - 1) * self.stride

    @property
    def next_start(self) -> int:
        """Where the progression's next element would begin."""
        return self.low + self.count * self.stride

    @property
    def dense(self) -> bool:
        """True when the progression covers its byte extent without holes."""
        return self.count == 1 or self.stride <= self.size

    def extent_overlaps(self, other: "StridedInterval") -> bool:
        """Byte-extent intersection test ([low, high] as closed ranges)."""
        return self.low <= other.high and other.low <= self.high

    def addresses(self) -> np.ndarray:
        """All byte addresses touched (oracle/test use; O(count*size))."""
        starts = self.low + self.stride * np.arange(self.count, dtype=np.int64)
        offs = np.arange(self.size, dtype=np.int64)
        return (starts[:, None] + offs[None, :]).ravel()

    # -- classification ---------------------------------------------------------

    def same_site(self, other: "StridedInterval") -> bool:
        """Same access site and qualifiers (coalescing compatibility)."""
        return (
            self.pc == other.pc
            and self.is_write == other.is_write
            and self.is_atomic == other.is_atomic
            and self.size == other.size
            and self.msid == other.msid
            and self.point == other.point
        )

    def try_extend(self, addr: int) -> bool:
        """Try to absorb a scalar access at ``addr`` (mutates; True on success).

        Three coalescible shapes, all arising from loop access patterns:

        * duplicate of the last element (re-read of the same location);
        * a singleton growing into a progression (any positive gap fixes
          the stride);
        * the next element of an established progression.
        """
        if self.count == 1:
            if addr == self.low:
                return True  # duplicate singleton
            gap = addr - self.low
            if gap > 0:
                self.stride = gap
                self.count = 2
                return True
            return False
        if addr == self.last_start:
            return True  # duplicate of the trailing element
        if addr == self.next_start:
            self.count += 1
            return True
        return False

    def try_append_bulk(self, addr: int, count: int, stride: int) -> bool:
        """Absorb a bulk access continuing this progression (True on success)."""
        if count == 1:
            return self.try_extend(addr)
        if self.count == 1:
            if stride > 0 and addr == self.low + stride:
                self.stride = stride
                self.count = 1 + count
                return True
            return False
        if stride == self.stride and addr == self.next_start:
            self.count += count
            return True
        return False

    def copy(self) -> "StridedInterval":
        return replace(self)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        op = "W" if self.is_write else "R"
        at = "a" if self.is_atomic else ""
        return (
            f"[{self.low:#x}..{self.high:#x}] {op}{at} x{self.count} "
            f"stride={self.stride} size={self.size} pc={self.pc:#x}"
        )


def interval_from_access(access: Access) -> StridedInterval:
    """Build a (normalised) strided interval from one access event."""
    a = access.normalized()
    return StridedInterval(
        low=a.addr,
        stride=a.stride if a.count > 1 else a.size,
        size=a.size,
        count=a.count,
        is_write=a.is_write,
        is_atomic=a.is_atomic,
        pc=a.pc,
        msid=a.msid,
        point=a.task_point,
    )
