"""Augmented red-black interval tree (CLRS 13 / 14.3).

The paper: "we use an augmented red-black tree to maintain the interval tree
balance and to speed up the operations of insertion and search".  Each node
stores a :class:`~repro.itree.interval.StridedInterval` and is keyed by its
``low`` endpoint; the augmentation ``max_high`` (maximum interval ``high`` in
the subtree) prunes overlap searches to ``O(log n + k)``.

Implementation notes:

* a single shared NIL sentinel keeps the fixup code branch-light;
* ``insert``/``delete`` are the textbook algorithms with the ``max_high``
  augmentation maintained on rotations and on the ancestor paths;
* :meth:`IntervalTree.validate` re-checks every invariant (BST order, red
  and black rules, black-height, augmentation) and is exercised by the
  property-based tests after random operation sequences.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from .interval import StridedInterval

RED = True
BLACK = False


class Node:
    """One tree node.  ``key`` is the interval's low endpoint."""

    __slots__ = ("interval", "key", "max_high", "color", "left", "right", "parent")

    def __init__(self, interval: Optional[StridedInterval]) -> None:
        self.interval = interval
        self.key = interval.low if interval is not None else 0
        self.max_high = interval.high if interval is not None else -1
        self.color = BLACK
        self.left: "Node" = self  # overwritten; self-links only valid for NIL
        self.right: "Node" = self
        self.parent: "Node" = self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        color = "R" if self.color == RED else "B"
        return f"<Node {color} key={self.key} max={self.max_high}>"


class IntervalTree:
    """Self-balancing interval tree over strided intervals."""

    def __init__(self) -> None:
        self.nil = Node(None)
        self.nil.color = BLACK
        self.nil.left = self.nil.right = self.nil.parent = self.nil
        self.root = self.nil
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # -- augmentation helpers --------------------------------------------------

    def _update_max(self, x: Node) -> None:
        m = x.interval.high
        if x.left is not self.nil and x.left.max_high > m:
            m = x.left.max_high
        if x.right is not self.nil and x.right.max_high > m:
            m = x.right.max_high
        x.max_high = m

    def _update_max_upward(self, x: Node) -> None:
        while x is not self.nil:
            self._update_max(x)
            x = x.parent

    # -- rotations ----------------------------------------------------------------

    def _left_rotate(self, x: Node) -> None:
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        self._update_max(x)
        self._update_max(y)

    def _right_rotate(self, x: Node) -> None:
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        self._update_max(x)
        self._update_max(y)

    # -- insertion ------------------------------------------------------------------

    def insert(self, interval: StridedInterval) -> Node:
        """Insert ``interval``; duplicates of the key are allowed."""
        z = Node(interval)
        z.left = z.right = z.parent = self.nil
        y = self.nil
        x = self.root
        while x is not self.nil:
            y = x
            if z.key < x.key:
                x = x.left
            else:
                x = x.right
        z.parent = y
        if y is self.nil:
            self.root = z
        elif z.key < y.key:
            y.left = z
        else:
            y.right = z
        z.color = RED
        self._update_max_upward(z)
        self._insert_fixup(z)
        self._size += 1
        return z

    def _insert_fixup(self, z: Node) -> None:
        while z.parent.color == RED:
            if z.parent is z.parent.parent.left:
                y = z.parent.parent.right
                if y.color == RED:
                    z.parent.color = BLACK
                    y.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._left_rotate(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._right_rotate(z.parent.parent)
            else:
                y = z.parent.parent.left
                if y.color == RED:
                    z.parent.color = BLACK
                    y.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._right_rotate(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._left_rotate(z.parent.parent)
        self.root.color = BLACK

    @classmethod
    def build_from_sorted(cls, intervals: list[StridedInterval]) -> "IntervalTree":
        """Bulk-build a valid red-black tree from an already-sorted list.

        ``intervals`` must be sorted ascending by ``low`` (stable among
        ties) — the same in-order sequence incremental :meth:`insert`
        calls would produce, since equal keys always descend right.  The
        median-split construction is O(n) with no rotations: every node
        is black except the deepest level, which is red, giving a uniform
        black-height (all leaves land on the last two levels).  ``max_high``
        is computed bottom-up during the same pass.
        """
        tree = cls()
        n = len(intervals)
        if n == 0:
            return tree
        nil = tree.nil
        maxd = n.bit_length() - 1  # depth of the deepest (red) level

        def build(lo: int, hi: int, depth: int) -> Node:
            mid = (lo + hi) // 2
            node = Node(intervals[mid])
            node.color = RED if depth == maxd else BLACK
            node.parent = nil
            if lo < mid:
                node.left = build(lo, mid - 1, depth + 1)
                node.left.parent = node
                if node.left.max_high > node.max_high:
                    node.max_high = node.left.max_high
            else:
                node.left = nil
            if mid < hi:
                node.right = build(mid + 1, hi, depth + 1)
                node.right.parent = node
                if node.right.max_high > node.max_high:
                    node.max_high = node.right.max_high
            else:
                node.right = nil
            return node

        tree.root = build(0, n - 1, 0)
        tree.root.color = BLACK
        tree._size = n
        return tree

    # -- deletion --------------------------------------------------------------------

    def _transplant(self, u: Node, v: Node) -> None:
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, x: Node) -> Node:
        while x.left is not self.nil:
            x = x.left
        return x

    def delete(self, z: Node) -> None:
        """Remove node ``z`` (a handle previously returned by insert/search)."""
        if z.interval is None:
            raise ValueError("cannot delete the NIL sentinel")
        y = z
        y_original_color = y.color
        if z.left is self.nil:
            x = z.right
            self._transplant(z, z.right)
            fix_from = x.parent
        elif z.right is self.nil:
            x = z.left
            self._transplant(z, z.left)
            fix_from = x.parent
        else:
            y = self._minimum(z.right)
            y_original_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
                fix_from = y
            else:
                fix_from = y.parent
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        self._update_max_upward(fix_from)
        if y_original_color == BLACK:
            self._delete_fixup(x)
        self._size -= 1

    def _delete_fixup(self, x: Node) -> None:
        while x is not self.root and x.color == BLACK:
            if x is x.parent.left:
                w = x.parent.right
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._left_rotate(x.parent)
                    w = x.parent.right
                if w.left.color == BLACK and w.right.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color == BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._right_rotate(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._left_rotate(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._right_rotate(x.parent)
                    w = x.parent.left
                if w.right.color == BLACK and w.left.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color == BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._left_rotate(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._right_rotate(x.parent)
                    x = self.root
        x.color = BLACK

    # -- queries ------------------------------------------------------------------------

    def search_overlap(self, low: int, high: int) -> Optional[Node]:
        """Return *one* node whose byte extent intersects ``[low, high]``."""
        x = self.root
        while x is not self.nil:
            if x.interval.low <= high and low <= x.interval.high:
                return x
            if x.left is not self.nil and x.left.max_high >= low:
                x = x.left
            else:
                x = x.right
        return None

    def iter_overlaps(self, low: int, high: int) -> Iterator[Node]:
        """Yield *every* node whose byte extent intersects ``[low, high]``.

        Nodes come out in **in-order** (ascending ``low``, insertion order
        among ties) regardless of the tree's internal shape, so two trees
        holding the same interval sequence — e.g. one built incrementally
        and one by :meth:`build_from_sorted` — enumerate identically.  The
        ``max_high`` augmentation still prunes whole subtrees, and because
        in-order keys ascend the walk stops at the first node past
        ``high``.
        """
        nil = self.nil
        stack: list[Node] = []
        x = self.root
        while True:
            while x is not nil and x.max_high >= low:
                stack.append(x)
                x = x.left
            if not stack:
                return
            x = stack.pop()
            if x.interval.low > high:
                return
            if low <= x.interval.high:
                yield x
            x = x.right

    def __iter__(self) -> Iterator[Node]:
        """In-order traversal (ascending by low endpoint)."""
        stack: list[Node] = []
        x = self.root
        while stack or x is not self.nil:
            while x is not self.nil:
                stack.append(x)
                x = x.left
            x = stack.pop()
            yield x
            x = x.right

    def intervals(self) -> list[StridedInterval]:
        """All stored intervals in ascending low order."""
        return [n.interval for n in self]

    def height(self) -> int:
        """Actual tree height (0 for empty; for tests of balance)."""

        def h(x: Node) -> int:
            if x is self.nil:
                return 0
            return 1 + max(h(x.left), h(x.right))

        return h(self.root)

    # -- validation (test support) -----------------------------------------------------------

    def validate(self) -> None:
        """Assert every red-black and augmentation invariant; raise on breakage."""
        if self.root.color != BLACK:
            raise AssertionError("root must be black")

        def walk(x: Node, lo: Optional[int], hi: Optional[int]) -> int:
            if x is self.nil:
                return 1
            if lo is not None and x.key < lo:
                raise AssertionError("BST order violated (left bound)")
            if hi is not None and x.key > hi:
                raise AssertionError("BST order violated (right bound)")
            if x.color == RED and (x.left.color == RED or x.right.color == RED):
                raise AssertionError("red node with red child")
            expected = x.interval.high
            for child in (x.left, x.right):
                if child is not self.nil:
                    if child.parent is not x:
                        raise AssertionError("broken parent link")
                    expected = max(expected, child.max_high)
            if x.max_high != expected:
                raise AssertionError(
                    f"max_high wrong at key {x.key}: {x.max_high} != {expected}"
                )
            bl = walk(x.left, lo, x.key)
            br = walk(x.right, x.key, hi)
            if bl != br:
                raise AssertionError("black-height mismatch")
            return bl + (1 if x.color == BLACK else 0)

        walk(self.root, None, None)
        count = sum(1 for _ in self)
        if count != self._size:
            raise AssertionError(f"size {self._size} != node count {count}")
