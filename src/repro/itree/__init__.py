"""Self-balancing interval trees with strided-interval summarisation."""

from .builder import TreeBuilder, build_tree
from .digest import TreeDigest, digests_may_race
from .interval import StridedInterval, interval_from_access
from .serialize import TREE_FORMAT, tree_from_rows, tree_to_rows
from .tree import BLACK, IntervalTree, Node, RED

__all__ = [
    "BLACK",
    "IntervalTree",
    "Node",
    "RED",
    "StridedInterval",
    "TREE_FORMAT",
    "TreeBuilder",
    "TreeDigest",
    "build_tree",
    "digests_may_race",
    "interval_from_access",
    "tree_from_rows",
    "tree_to_rows",
]
