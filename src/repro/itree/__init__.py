"""Self-balancing interval trees with strided-interval summarisation."""

from .builder import TreeBuilder, build_tree
from .interval import StridedInterval, interval_from_access
from .tree import BLACK, IntervalTree, Node, RED

__all__ = [
    "BLACK",
    "IntervalTree",
    "Node",
    "RED",
    "StridedInterval",
    "TreeBuilder",
    "build_tree",
    "interval_from_access",
]
