"""Per-interval access digests: cheap algebraic pair pruning.

A digest summarises one interval tree in O(nodes): the bounding byte box,
read/write/atomic composition, and a residue-class description of every
address the tree touches.  Two digests decide — without walking either
tree — whether *any* node pair could satisfy the race condition; most
pairs of disjoint array partitions are dismissed here before the
O(M log M) tree comparison (cf. Shim et al., "Data Race Satisfiability on
Array Elements": most array-access pairs fall to algebraic filters before
any solver call).

Residue argument.  Let ``g`` divide every node stride and every offset of
a node's low endpoint from the tree's base address.  Then every byte the
tree touches is congruent to ``base + k (mod g)`` for some
``k in [0, width)`` where ``width`` is the maximum node size — a single
residue window per tree.  For two trees, reduce both windows modulo
``G = gcd(g_a, g_b)``; if the windows do not intersect mod ``G``, no byte
is shared and the pair cannot race.  The gcd construction makes this
sound by definition: any address not congruent to the window is not in
the tree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..common.errors import DigestVersionError
from .tree import IntervalTree

#: Serialization version of :meth:`TreeDigest.to_json` payloads.  Older
#: payloads without a ``version`` key are version 1; payloads from a
#: *newer* version raise :class:`DigestVersionError` instead of being
#: silently misread.
TREE_DIGEST_VERSION = 1


@dataclass(frozen=True, slots=True)
class TreeDigest:
    """O(1) summary of one interval tree's access footprint."""

    #: Number of summarised nodes (0 for an empty tree).
    nodes: int
    #: Byte bounding box, ``hi`` inclusive (undefined when ``nodes == 0``).
    lo: int
    hi: int
    #: Node counts by operation.
    writes: int
    reads: int
    #: True when every access in the tree is atomic.
    all_atomic: bool
    #: Residue class: every touched byte is ``lo + k (mod gcd)`` for some
    #: ``k in [0, width)``.  ``gcd == 0`` means the residue view collapsed
    #: (single dense footprint) and only the bounding box applies.
    gcd: int
    width: int

    @classmethod
    def of_tree(cls, tree: IntervalTree) -> "TreeDigest":
        """Digest a built tree in one in-order pass."""
        nodes = writes = reads = 0
        lo = hi = 0
        all_atomic = True
        g = 0
        width = 0
        for node in tree:
            si = node.interval
            if nodes == 0:
                lo, hi = si.low, si.high
            else:
                lo = min(lo, si.low)
                hi = max(hi, si.high)
            nodes += 1
            if si.is_write:
                writes += 1
            else:
                reads += 1
            all_atomic = all_atomic and si.is_atomic
            if si.count > 1:
                g = math.gcd(g, si.stride)
            width = max(width, si.size)
        # Fold every low-endpoint offset into the gcd so the single window
        # [lo, lo + width) mod gcd covers all nodes (soundness by
        # construction; a second pass keeps the first pass's min-lo exact).
        for node in tree:
            g = math.gcd(g, node.interval.low - lo)
        return cls(
            nodes=nodes,
            lo=lo,
            hi=hi,
            writes=writes,
            reads=reads,
            all_atomic=all_atomic,
            gcd=g,
            width=width,
        )

    def to_json(self) -> dict:
        return {
            "version": TREE_DIGEST_VERSION,
            "nodes": self.nodes,
            "lo": self.lo,
            "hi": self.hi,
            "writes": self.writes,
            "reads": self.reads,
            "all_atomic": self.all_atomic,
            "gcd": self.gcd,
            "width": self.width,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TreeDigest":
        version = int(payload.get("version", 1))
        if version > TREE_DIGEST_VERSION:
            raise DigestVersionError(
                f"tree digest version {version} is newer than supported "
                f"version {TREE_DIGEST_VERSION}"
            )
        return cls(
            nodes=int(payload["nodes"]),
            lo=int(payload["lo"]),
            hi=int(payload["hi"]),
            writes=int(payload["writes"]),
            reads=int(payload["reads"]),
            all_atomic=bool(payload["all_atomic"]),
            gcd=int(payload["gcd"]),
            width=int(payload["width"]),
        )


def digests_may_race(a: TreeDigest, b: TreeDigest) -> bool:
    """Conservative pair filter: False only when no node pair can race.

    Applies the race condition's tree-level necessary conditions: at
    least one write somewhere, not everything atomic on both sides,
    intersecting byte boxes, and a shared residue class (when the residue
    windows are narrow enough mod ``G`` to be conclusive).
    """
    if a.nodes == 0 or b.nodes == 0:
        return False
    if a.writes == 0 and b.writes == 0:
        return False  # every node pair lacks a write
    if a.all_atomic and b.all_atomic:
        return False  # every node pair is atomic-vs-atomic
    if a.hi < b.lo or b.hi < a.lo:
        return False  # disjoint bounding boxes
    big = math.gcd(a.gcd, b.gcd)
    if big > 0 and a.width + b.width <= big:
        # A's residues mod G are [0, wa) from a.lo; B's are [0, wb) from
        # b.lo.  They intersect iff (b.lo - a.lo) mod G falls in
        # (-wb, wa) mod G; outside that, no shared byte exists.
        d = (b.lo - a.lo) % big
        if a.width <= d <= big - b.width:
            return False
    return True
