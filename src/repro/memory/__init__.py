"""Simulated memory substrate: address space, allocator, node accounting."""

from .accounting import MemorySnapshot, NodeMemory
from .address_space import ALIGNMENT, AddressSpace, Allocation, SharedArray

__all__ = [
    "ALIGNMENT",
    "AddressSpace",
    "Allocation",
    "MemorySnapshot",
    "NodeMemory",
    "SharedArray",
]
