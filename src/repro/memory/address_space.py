"""Simulated address space and allocator for model programs.

Model workloads allocate :class:`SharedArray` objects: real NumPy arrays (so
kernels compute genuine results) positioned at stable *simulated* byte
addresses.  Race detectors only ever see those addresses, sizes, and strides,
which is exactly the information LLVM instrumentation gives real SWORD.

Scaled-down reproduction of memory-bound behaviour uses ``sim_scale``: a
workload can declare that an allocation *represents* ``sim_scale`` times its
backing size (e.g. AMG2013 at 40^3 per-node production footprint) without
actually allocating gigabytes.  The accountant charges the simulated size, so
ARCHER's proportional shadow memory OOMs in the same place the paper reports,
while the computation and the access stream stay laptop sized.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass

import numpy as np

from ..common.errors import RuntimeModelError
from .accounting import NodeMemory

#: Allocations are aligned to this many bytes (matches glibc malloc).
ALIGNMENT = 16

#: Base of the simulated heap; non-zero so address 0 stays invalid.
HEAP_BASE = 0x10_0000


@dataclass(frozen=True, slots=True)
class Allocation:
    """One region of the simulated heap.

    Attributes:
        base: first simulated byte address.
        nbytes: backing size in bytes (addressable by accesses).
        sim_bytes: size charged to the accountant (``nbytes * sim_scale``).
        name: workload-facing label used in reports.
    """

    base: int
    nbytes: int
    sim_bytes: int
    name: str

    @property
    def end(self) -> int:
        """One past the last addressable simulated byte."""
        return self.base + self.nbytes

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class SharedArray:
    """A shared NumPy-backed array living in the simulated address space.

    The array is the unit of sharing in model programs: threads perform
    reads/writes *through the runtime API* (which emits access events) and
    may also use :attr:`data` directly for bookkeeping that is not part of
    the modelled access stream (e.g. verification of kernel results).
    """

    def __init__(self, allocation: Allocation, data: np.ndarray) -> None:
        self.allocation = allocation
        self.data = data

    @property
    def name(self) -> str:
        return self.allocation.name

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize

    def __len__(self) -> int:
        return self.data.shape[0]

    def addr(self, index: int = 0) -> int:
        """Simulated byte address of element ``index`` (supports negatives)."""
        n = self.data.size
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(
                f"index {index} out of range for {self.name!r} of size {n}"
            )
        return self.allocation.base + index * self.itemsize

    def index_of(self, addr: int) -> int:
        """Inverse of :meth:`addr` (element whose storage contains ``addr``)."""
        off = addr - self.allocation.base
        if not 0 <= off < self.data.size * self.itemsize:
            raise IndexError(f"address {addr:#x} outside {self.name!r}")
        return off // self.itemsize

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedArray({self.name!r}, base={self.allocation.base:#x}, "
            f"shape={self.data.shape}, dtype={self.data.dtype})"
        )


class AddressSpace:
    """Bump allocator over the simulated heap with reverse lookup.

    Reverse lookup (:meth:`find`) lets ARCHER's shadow memory attach one
    shadow table per allocation, which is both faster and closer to TSan's
    region-based shadow mapping than a per-word dictionary.
    """

    def __init__(self, accountant: NodeMemory | None = None) -> None:
        self._lock = threading.Lock()
        self._next = HEAP_BASE
        self._bases: list[int] = []
        self._allocs: list[Allocation] = []
        self.accountant = accountant

    def alloc_array(
        self,
        name: str,
        shape: int | tuple[int, ...],
        dtype: np.dtype | type = np.float64,
        *,
        fill: float | int | None = 0,
        sim_scale: int = 1,
    ) -> SharedArray:
        """Allocate a named shared array.

        Args:
            name: label used in race reports and debugging.
            shape: NumPy shape (1-D sizes are the common case; accesses use
                flat element indices).
            dtype: element dtype; its itemsize becomes the access size.
            fill: initial value, or ``None`` for uninitialised (``empty``).
            sim_scale: multiplier applied to the accounted footprint.
        """
        if sim_scale < 1:
            raise RuntimeModelError("sim_scale must be >= 1")
        dtype = np.dtype(dtype)
        if fill is None:
            data = np.empty(shape, dtype=dtype)
        else:
            data = np.full(shape, fill, dtype=dtype)
        nbytes = int(data.size) * dtype.itemsize
        if nbytes == 0:
            raise RuntimeModelError(f"allocation {name!r} has zero size")
        sim_bytes = nbytes * sim_scale
        with self._lock:
            base = self._next
            # Reserve the *simulated* extent so addresses never collide even
            # when sim_scale inflates the footprint.
            span = max(nbytes, sim_bytes)
            self._next = _align_up(base + span, ALIGNMENT)
            alloc = Allocation(base=base, nbytes=nbytes, sim_bytes=sim_bytes, name=name)
            self._bases.append(base)
            self._allocs.append(alloc)
        if self.accountant is not None:
            try:
                self.accountant.charge(NodeMemory.APP, sim_bytes)
            except Exception:
                with self._lock:
                    self._bases.pop()
                    self._allocs.pop()
                raise
        return SharedArray(alloc, data)

    def alloc_scalar(
        self,
        name: str,
        dtype: np.dtype | type = np.float64,
        *,
        fill: float | int = 0,
    ) -> SharedArray:
        """Allocate a single shared scalar (an array of one element)."""
        return self.alloc_array(name, 1, dtype, fill=fill)

    def find(self, addr: int) -> Allocation | None:
        """Return the allocation containing ``addr``, if any."""
        with self._lock:
            i = bisect.bisect_right(self._bases, addr) - 1
            if i < 0:
                return None
            alloc = self._allocs[i]
        return alloc if alloc.contains(addr) else None

    def allocations(self) -> list[Allocation]:
        with self._lock:
            return list(self._allocs)

    @property
    def app_bytes(self) -> int:
        """Total simulated application footprint."""
        with self._lock:
            return sum(a.sim_bytes for a in self._allocs)


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment
