"""Simulated node-memory accounting.

The paper's central claim is about *memory overhead*: ARCHER's shadow cells
grow with the application footprint (5-7x in practice) and OOM the node on
AMG2013 at scale, while SWORD's overhead is a flat ``N x (B + C)`` bytes.

We reproduce this with an explicit accountant: every simulated allocation —
application arrays, ARCHER shadow pages, SWORD buffers — is charged here, and
exceeding the configured node limit raises :class:`SimulatedOOMError` exactly
like the kernel OOM killer would terminate the real run.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..common.errors import SimulatedOOMError


@dataclass(slots=True)
class MemoryCategory:
    """Per-category usage counters (application, shadow, tool, ...)."""

    current: int = 0
    peak: int = 0

    def charge(self, nbytes: int) -> None:
        self.current += nbytes
        if self.current > self.peak:
            self.peak = self.current

    def release(self, nbytes: int) -> None:
        self.current -= nbytes
        if self.current < 0:
            raise ValueError("released more memory than was charged")


@dataclass(slots=True)
class MemorySnapshot:
    """Immutable view of the accountant, used by run metrics."""

    current_total: int
    peak_total: int
    by_category_current: dict[str, int]
    by_category_peak: dict[str, int]


class NodeMemory:
    """Tracks simulated memory usage against a node limit.

    Categories keep application and tool footprints separable so that
    experiments can report "memory overhead" as tool bytes over baseline
    bytes, matching Figures 6-8.
    """

    APP = "app"
    SHADOW = "shadow"
    TOOL = "tool"

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError("memory limit must be positive")
        self.limit = limit
        self._lock = threading.Lock()
        self._categories: dict[str, MemoryCategory] = {}
        self._total = MemoryCategory()
        self._observers: list = []

    def subscribe(self, observer) -> None:
        """Register a live charge/release observer.

        ``observer(category, delta, current)`` fires after every applied
        movement with the category's post-movement footprint (releases
        carry a negative ``delta``).  Failed charges — simulated OOM —
        are not reported.  This is the seam the observability layer's
        memory-bound gauge rides (:mod:`repro.obs.membound`).
        """
        self._observers.append(observer)

    def _notify(self, category: str, delta: int, current: int) -> None:
        # Called outside the lock: observers may read the accountant.
        for observer in self._observers:
            observer(category, delta, current)

    def charge(self, category: str, nbytes: int) -> None:
        """Charge ``nbytes`` to ``category``; raise on exceeding the limit.

        The charge is *not* applied when it would exceed the limit, mirroring
        a failed ``mmap``: the caller's partial state stays consistent and
        the tool wrapper reports OOM.
        """
        if nbytes < 0:
            raise ValueError("cannot charge negative bytes")
        with self._lock:
            if self._total.current + nbytes > self.limit:
                raise SimulatedOOMError(nbytes, self._total.current, self.limit)
            cat = self._categories.setdefault(category, MemoryCategory())
            cat.charge(nbytes)
            self._total.charge(nbytes)
            current = cat.current
        if self._observers:
            self._notify(category, nbytes, current)

    def release(self, category: str, nbytes: int) -> None:
        """Return ``nbytes`` previously charged to ``category``."""
        if nbytes < 0:
            raise ValueError("cannot release negative bytes")
        with self._lock:
            cat = self._categories.get(category)
            if cat is None:
                raise ValueError(f"unknown category {category!r}")
            cat.release(nbytes)
            self._total.release(nbytes)
            current = cat.current
        if self._observers:
            self._notify(category, -nbytes, current)

    def current(self, category: str | None = None) -> int:
        with self._lock:
            if category is None:
                return self._total.current
            cat = self._categories.get(category)
            return cat.current if cat else 0

    def peak(self, category: str | None = None) -> int:
        with self._lock:
            if category is None:
                return self._total.peak
            cat = self._categories.get(category)
            return cat.peak if cat else 0

    def snapshot(self) -> MemorySnapshot:
        with self._lock:
            return MemorySnapshot(
                current_total=self._total.current,
                peak_total=self._total.peak,
                by_category_current={
                    k: v.current for k, v in self._categories.items()
                },
                by_category_peak={k: v.peak for k, v in self._categories.items()},
            )
