"""Tasking extension: task-ordering judgment beyond offset-span labels.

The paper's §III-C limitation — offset-span labels cannot decide whether
two explicit tasks are concurrent — and its §VI future work, implemented:
the runtime supports ``task``/``taskwait`` (tasks execute at scheduling
points, completing by the next barrier), access records carry encoded
execution points, and the offline analysis refines the barrier-interval
judgment with :class:`~repro.tasking.graph.TaskGraph` reachability over
creation and taskwait edges.
"""

from .graph import IMPLICIT, TaskGraph, TaskInfo, decode_point, encode_point

__all__ = ["IMPLICIT", "TaskGraph", "TaskInfo", "decode_point", "encode_point"]
