"""Task-ordering graph: the concurrency judgment OpenMP tasking needs.

The paper's §III-C limitation: "the current formulation of the offset-span
label mechanism does not allow for identifying whether two threads that
executed two different tasks are concurrent or not", and §VI lists tasking
support as future work.  This module is that extension.

Model.  Within one barrier interval, every *execution entity* — the
implicit task of a team member, or an explicit task — owns a monotone
sequence counter that advances at task-scheduling points (task creation and
``taskwait``).  An access is located at a *point* ``(entity, seq)``.  Two
edges order points across entities:

* **creation**: everything at the creator up to the creation seq ``e_k``
  happens-before every point of task ``k``;
* **wait**: if the creator's ``taskwait`` covered task ``k`` at seq
  ``w_k``, every point of ``k`` happens-before the creator's points at
  ``seq >= w_k``.

``ordered(p, q)`` is reachability over those edges (entities form a
creation tree, so the recursion terminates); ``concurrent`` is its
symmetric negation.  Barriers bound task lifetimes (OpenMP guarantees all
tasks complete at a barrier), so cross-interval ordering stays the business
of the barrier-interval judgment — this graph only refines judgments
*within* one interval.

Entities are keyed by ``0`` for "the enclosing implicit task" plus the
thread's identity carried alongside, and by the global task id for explicit
tasks; points are encoded into the 64-bit ``aux`` field of access records
(:func:`encode_point` / :func:`decode_point`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: aux encoding: entity id in the high bits, sequence in the low 24.
_SEQ_BITS = 24
_SEQ_MASK = (1 << _SEQ_BITS) - 1

#: Entity id of the enclosing implicit task.
IMPLICIT = 0


def encode_point(entity: int, seq: int) -> int:
    """Pack an execution point into an access record's ``aux`` field."""
    if seq < 0:
        raise ValueError("sequence must be non-negative")
    return (entity << _SEQ_BITS) | min(seq, _SEQ_MASK)


def decode_point(aux: int) -> tuple[int, int]:
    """Inverse of :func:`encode_point`: ``(entity, seq)``."""
    return aux >> _SEQ_BITS, aux & _SEQ_MASK


@dataclass(slots=True)
class TaskInfo:
    """One explicit task's position in the creation tree.

    Attributes:
        task_id: global id (> 0).
        creator: creating entity (another task id, or IMPLICIT).
        creator_gid: thread owning the creating implicit task (identifies
            the implicit entity when ``creator == IMPLICIT``).
        pid, bid: the barrier interval the task belongs to.
        create_seq: the creator's sequence at creation (``e_k``).
        wait_seq: the creator's sequence right after the taskwait that
            covered this task (``w_k``), or None if never waited before the
            interval-ending barrier.
    """

    task_id: int
    creator: int
    creator_gid: int
    pid: int
    bid: int
    create_seq: int
    wait_seq: Optional[int] = None


class TaskGraph:
    """Ordering judgment over one run's explicit tasks."""

    def __init__(self) -> None:
        self._tasks: dict[int, TaskInfo] = {}

    def add(self, info: TaskInfo) -> None:
        if info.task_id in self._tasks:
            raise ValueError(f"task {info.task_id} registered twice")
        if info.task_id == IMPLICIT:
            raise ValueError("task id 0 is reserved for implicit tasks")
        self._tasks[info.task_id] = info

    def set_wait(self, task_id: int, wait_seq: int) -> None:
        self._tasks[task_id].wait_seq = wait_seq

    def get(self, task_id: int) -> TaskInfo:
        return self._tasks[task_id]

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._tasks

    def tasks(self) -> list[TaskInfo]:
        return list(self._tasks.values())

    # -- the judgment -------------------------------------------------------

    def _entity_key(self, entity: int, gid: int) -> tuple:
        """Implicit entities are per-thread; tasks are global."""
        return ("imp", gid) if entity == IMPLICIT else ("task", entity)

    def ordered(
        self,
        entity_a: int,
        seq_a: int,
        gid_a: int,
        entity_b: int,
        seq_b: int,
        gid_b: int,
    ) -> bool:
        """Does point A happen-before (or equal) point B?

        Both points must belong to the same barrier interval; cross-interval
        ordering is decided by the barrier-interval judgment instead.
        """
        key_a = self._entity_key(entity_a, gid_a)
        key_b = self._entity_key(entity_b, gid_b)
        return self._ordered(key_a, seq_a, key_b, seq_b, frozenset())

    def _creation_point(self, task_id: int) -> tuple[tuple, int]:
        info = self._tasks[task_id]
        key = self._entity_key(info.creator, info.creator_gid)
        return key, info.create_seq

    def _end_point(self, task_id: int) -> Optional[tuple[tuple, int]]:
        info = self._tasks[task_id]
        if info.wait_seq is None:
            return None
        key = self._entity_key(info.creator, info.creator_gid)
        return key, info.wait_seq

    def _ordered(self, key_a, seq_a, key_b, seq_b, seen) -> bool:
        if key_a == key_b:
            return seq_a <= seq_b
        state = (key_a, seq_a, key_b, seq_b)
        if state in seen:
            return False
        seen = seen | {state}
        # Ascend on the B side: A before B if A is before B's creation.
        if key_b[0] == "task":
            ck, cs = self._creation_point(key_b[1])
            if self._ordered(key_a, seq_a, ck, cs, seen):
                return True
        # Ascend on the A side: A before B if A's task was waited for at a
        # point that is before B.
        if key_a[0] == "task":
            end = self._end_point(key_a[1])
            if end is not None:
                ek, es = end
                if self._ordered(ek, es, key_b, seq_b, seen):
                    return True
        return False

    def concurrent(
        self,
        entity_a: int,
        seq_a: int,
        gid_a: int,
        entity_b: int,
        seq_b: int,
        gid_b: int,
    ) -> bool:
        """May the two same-interval points interleave?

        The same entity is never concurrent with itself (program order);
        two *implicit* points of the same thread are likewise ordered.
        """
        if self._entity_key(entity_a, gid_a) == self._entity_key(entity_b, gid_b):
            return False
        return not self.ordered(
            entity_a, seq_a, gid_a, entity_b, seq_b, gid_b
        ) and not self.ordered(entity_b, seq_b, gid_b, entity_a, seq_a, gid_a)

    # -- persistence -----------------------------------------------------------

    def to_json(self) -> dict:
        return {
            str(t.task_id): {
                "creator": t.creator,
                "creator_gid": t.creator_gid,
                "pid": t.pid,
                "bid": t.bid,
                "create_seq": t.create_seq,
                "wait_seq": t.wait_seq,
            }
            for t in self._tasks.values()
        }

    @classmethod
    def from_json(cls, payload: dict) -> "TaskGraph":
        graph = cls()
        for task_id, info in payload.items():
            graph.add(
                TaskInfo(
                    task_id=int(task_id),
                    creator=int(info["creator"]),
                    creator_gid=int(info["creator_gid"]),
                    pid=int(info["pid"]),
                    bid=int(info["bid"]),
                    create_seq=int(info["create_seq"]),
                    wait_seq=(
                        None if info["wait_seq"] is None else int(info["wait_seq"])
                    ),
                )
            )
        return graph
