"""Shard checkpointing: completed :class:`ShardOutcome`\\ s made durable.

The PR 3 result cache memoizes *pair verdicts* (fine grain, engine
level); this store memoizes whole *shard outcomes* (coarse grain,
service level) so both worker-level retry and service-level resume
restart from the last completed shard instead of byte zero.  Entries are
content-hash-addressed exactly like the result cache: a shard token
digests the trace bytes the shard reads plus the shard's identity and
every analysis knob that affects its verdicts, so a token hit is a proof
the stored outcome is byte-identical to a recompute — across restarts,
jobs, and tenants.

Spans and per-shard metric deltas are deliberately *not* checkpointed:
they describe one execution, and a checkpoint hit is precisely the case
where no execution happened.  Writes are atomic (tmp + rename) and read
failures degrade to a miss — the cache discipline of
:mod:`repro.offline.cache`, at shard grain.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Optional

from ..offline.cache import _file_sha
from ..offline.engine import AnalysisStats
from ..sword.traceformat import MUTEXSETS_NAME, REGIONS_NAME, TASKS_NAME
from .workers import ShardOutcome

__all__ = [
    "CHECKPOINT_FORMAT",
    "ShardCheckpointStore",
    "trace_token",
    "shard_token",
]

#: Bump to invalidate every existing checkpoint (outcome schema changed).
CHECKPOINT_FORMAT = 1

_STATS_FIELDS = tuple(f.name for f in dataclass_fields(AnalysisStats))


def trace_token(trace_path: str | os.PathLike) -> str:
    """Content digest of everything a shard of this trace can read.

    Covers every per-thread log + meta file and the trace-wide tables;
    computed once per job at plan time and folded into each shard's
    token, so any byte changing under the trace invalidates exactly its
    checkpoints.
    """
    trace_path = Path(trace_path)
    parts = [f"checkpoint-format={CHECKPOINT_FORMAT}"]
    names = sorted(
        p.name
        for p in trace_path.glob("thread_*")
        if p.suffix in (".log", ".meta")
    )
    names += [MUTEXSETS_NAME, TASKS_NAME, REGIONS_NAME]
    for name in names:
        parts.append(f"{name}={_file_sha(trace_path / name)}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def shard_token(
    trace_digest: str,
    *,
    kind: str,
    pair_keys: tuple,
    chunk_events: int,
    use_ilp_crosscheck: bool,
) -> str:
    """One shard's checkpoint address (job- and tenant-independent)."""
    payload = (
        f"{trace_digest}|{kind}|{pair_keys!r}"
        f"|{chunk_events}|{use_ilp_crosscheck}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _outcome_to_json(outcome: ShardOutcome) -> dict:
    return {
        "format": CHECKPOINT_FORMAT,
        "rows": [list(row) for row in outcome.rows],
        "stats": outcome.stats.to_json(),
        "integrity": outcome.integrity,
        "cache_hits": outcome.cache_hits,
    }


def _outcome_from_json(payload: dict, job_id: str, index: int) -> ShardOutcome:
    stats = AnalysisStats(
        **{
            name: payload["stats"][name]
            for name in _STATS_FIELDS
            if name in payload["stats"]
        }
    )
    return ShardOutcome(
        job_id=job_id,
        index=index,
        rows=[tuple(row) for row in payload["rows"]],
        stats=stats,
        integrity=payload.get("integrity"),
        cache_hits=int(payload.get("cache_hits", 0)),
        from_checkpoint=True,
    )


class ShardCheckpointStore:
    """Content-addressed store of completed shard outcomes."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, token: str) -> Path:
        return self.root / f"{token}.json"

    def exists(self, token: str) -> bool:
        return bool(token) and self._path(token).exists()

    def load(
        self, token: str, *, job_id: str, index: int
    ) -> Optional[ShardOutcome]:
        """The stored outcome re-keyed to the asking job, or None.

        A corrupt or truncated entry (torn write at kill time) is
        evicted and costs one recompute — never a wrong answer.
        """
        if not token:
            return None
        path = self._path(token)
        try:
            payload = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self._evict(path)
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CHECKPOINT_FORMAT
        ):
            self._evict(path)
            self.misses += 1
            return None
        try:
            outcome = _outcome_from_json(payload, job_id, index)
        except (KeyError, TypeError, ValueError):
            self._evict(path)
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def store(self, token: str, outcome: ShardOutcome) -> None:
        """Persist one completed outcome (atomic; failures swallowed)."""
        if not token:
            return
        path = self._path(token)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(_outcome_to_json(outcome), fh)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            pass  # full/read-only disk: stay a checkpoint, not a failure

    def _evict(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
