"""Errors of the analysis service tier.

All derive from :class:`~repro.common.errors.ReproError` so callers can
catch service failures without masking programming errors.  Admission
failures (:class:`QuotaExceededError`, :class:`BackpressureError`) are
*expected* under load — the load generator counts them instead of dying.
"""

from __future__ import annotations

from ..common.errors import ReproError


class ServeError(ReproError):
    """Base class for analysis-service failures."""


class QuotaExceededError(ServeError):
    """A tenant hit its admission quota (pending jobs or bytes in flight)."""

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(f"tenant {tenant!r}: {reason}")
        self.tenant = tenant
        self.reason = reason


class BackpressureError(ServeError):
    """The ingestion queue is full and the submission did not block."""

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(
            f"ingestion queue full ({depth}/{capacity} jobs); "
            f"retry later or submit with block=True"
        )
        self.depth = depth
        self.capacity = capacity


class JobNotFoundError(ServeError):
    """An unknown job id was passed to status/result/cancel."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class JobFailedError(ServeError):
    """``result()`` was called on a job that failed or was cancelled."""

    def __init__(self, job_id: str, state: str, error: str) -> None:
        super().__init__(f"job {job_id} {state}: {error or 'no detail'}")
        self.job_id = job_id
        self.state = state
        self.error = error


class ServiceClosedError(ServeError):
    """The service is shut down and no longer accepts submissions."""
