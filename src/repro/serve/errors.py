"""Errors of the analysis service tier.

All derive from :class:`~repro.common.errors.ReproError` so callers can
catch service failures without masking programming errors.  Admission
failures (:class:`QuotaExceededError`, :class:`BackpressureError`) are
*expected* under load — the load generator counts them instead of dying.
"""

from __future__ import annotations

from ..common.errors import ReproError


class ServeError(ReproError):
    """Base class for analysis-service failures."""


class QuotaExceededError(ServeError):
    """A tenant hit its admission quota (pending jobs or bytes in flight)."""

    def __init__(self, tenant: str, reason: str) -> None:
        super().__init__(f"tenant {tenant!r}: {reason}")
        self.tenant = tenant
        self.reason = reason


class BackpressureError(ServeError):
    """The ingestion queue is full and the submission did not block."""

    def __init__(self, depth: int, capacity: int) -> None:
        super().__init__(
            f"ingestion queue full ({depth}/{capacity} jobs); "
            f"retry later or submit with block=True"
        )
        self.depth = depth
        self.capacity = capacity


class JobNotFoundError(ServeError):
    """An unknown job id was passed to status/result/cancel."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class JobFailedError(ServeError):
    """``result()`` was called on a job that failed or was cancelled."""

    def __init__(self, job_id: str, state: str, error: str) -> None:
        super().__init__(f"job {job_id} {state}: {error or 'no detail'}")
        self.job_id = job_id
        self.state = state
        self.error = error


class ServiceClosedError(ServeError):
    """The service is shut down and no longer accepts submissions."""


class PoolClosedError(ServeError):
    """A queued shard was cancelled by a non-graceful pool shutdown."""

    def __init__(self) -> None:
        super().__init__("worker pool closed before the shard could run")


class ShardTimeoutError(ServeError):
    """A shard exceeded its per-shard execution deadline."""

    def __init__(self, index, timeout_s: float) -> None:
        super().__init__(f"shard {index} exceeded timeout_s={timeout_s}")
        self.index = index
        self.timeout_s = timeout_s


class WorkerCrashError(ServeError):
    """A process worker died (SIGKILL, OOM) while executing a shard."""

    def __init__(self, index, detail: str) -> None:
        super().__init__(f"worker crashed running shard {index}: {detail}")
        self.index = index
        self.detail = detail


class JobDeadlineError(ServeError):
    """A job exceeded its submission-to-terminal deadline."""

    def __init__(self, job_id: str, deadline_s: float) -> None:
        super().__init__(f"job {job_id} exceeded deadline_s={deadline_s}")
        self.job_id = job_id
        self.deadline_s = deadline_s
