"""Job records: one submitted trace directory through its lifecycle.

States move strictly forward::

    QUEUED -> PLANNING -> RUNNING -> DONE | DEGRADED | FAILED | CANCELLED

Admission attaches a :class:`TriageInfo` — a cheap, metadata-only
costing of the trace (bytes, threads, meta rows) read without inflating
a single frame, in the spirit of running admission control on compressed
traces: the queue can reject or prioritise without paying decompression.

``DEGRADED`` is the graceful-degradation terminal state: one or more
*poison* shards exhausted their full retry/crash budget and were
quarantined, but the surviving shards merged normally — the job carries
a valid race set over the covered pair fraction plus a structured
:class:`DegradationReport` saying exactly what is missing and why.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..offline.engine import AnalysisResult, AnalysisStats
from ..offline.report import RaceSet
from .tracing import TraceContext

QUEUED = "queued"
PLANNING = "planning"
RUNNING = "running"
DONE = "done"
DEGRADED = "degraded"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can still leave.
ACTIVE_STATES = (QUEUED, PLANNING, RUNNING)
#: States a job never leaves.
TERMINAL_STATES = (DONE, DEGRADED, FAILED, CANCELLED)
#: Terminal states whose merged result is valid (full or partial).
RESULT_STATES = (DONE, DEGRADED)


@dataclass(frozen=True, slots=True)
class TriageInfo:
    """Admission-time costing from trace metadata only (no frame decode)."""

    log_bytes: int
    threads: int
    meta_rows: int

    def to_json(self) -> dict:
        return {
            "log_bytes": self.log_bytes,
            "threads": self.threads,
            "meta_rows": self.meta_rows,
        }


def triage_trace(trace_dir: str | Path) -> TriageInfo:
    """Cost a trace directory from file sizes and meta-row counts.

    Never opens a log frame: sizes come from ``stat`` and the row count
    from the (tiny, line-oriented) meta files.  Tolerant of damage — a
    salvage submission must still be admittable — so unreadable pieces
    simply count as zero.
    """
    trace_dir = Path(trace_dir)
    log_bytes = 0
    threads = 0
    meta_rows = 0
    for log in sorted(trace_dir.glob("thread_*.log")):
        threads += 1
        try:
            log_bytes += log.stat().st_size
        except OSError:
            pass
        meta = log.with_suffix(".meta")
        try:
            with open(meta, "r", errors="replace") as fh:
                meta_rows += sum(1 for line in fh if line.strip())
        except OSError:
            pass
    return TriageInfo(log_bytes=log_bytes, threads=threads, meta_rows=meta_rows)


@dataclass(slots=True)
class QuarantinedShard:
    """One poison shard: exhausted its retry/crash budget, set aside."""

    index: int
    #: Concurrent pairs this shard was assigned (its coverage weight).
    pairs: int
    #: The cause chain, outermost first (``__cause__`` links flattened).
    causes: list[str] = field(default_factory=list)
    #: Process-worker crash/timeout count at quarantine time.
    crashes: int = 0

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "pairs": self.pairs,
            "causes": list(self.causes),
            "crashes": self.crashes,
        }


def cause_chain(error: BaseException) -> list[str]:
    """Flatten an exception's ``__cause__`` links, outermost first."""
    chain: list[str] = []
    seen: set[int] = set()
    current: Optional[BaseException] = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__
    return chain


@dataclass(slots=True)
class DegradationReport:
    """What a ``DEGRADED`` job is missing, and why.

    ``pair_coverage`` is the fraction of the job's planned concurrent
    pairs actually analyzed: races over the covered pairs are exact (the
    merged set is a strict subset of the full answer); pairs inside
    quarantined shards are simply *unchecked*, never misreported.
    """

    job_id: str
    shards_total: int
    pairs_total: int
    quarantined: list[QuarantinedShard] = field(default_factory=list)

    @property
    def pairs_missing(self) -> int:
        return sum(q.pairs for q in self.quarantined)

    @property
    def pair_coverage(self) -> float:
        if self.pairs_total <= 0:
            return 0.0
        return max(0.0, 1.0 - self.pairs_missing / self.pairs_total)

    def to_json(self) -> dict:
        return {
            "job_id": self.job_id,
            "shards_total": self.shards_total,
            "shards_quarantined": sorted(q.index for q in self.quarantined),
            "pairs_total": self.pairs_total,
            "pairs_missing": self.pairs_missing,
            "pair_coverage": self.pair_coverage,
            "quarantined": [q.to_json() for q in self.quarantined],
        }


@dataclass(slots=True)
class JobRecord:
    """One submission's full state, shared between queue/scheduler/pool.

    Mutable fields are guarded by ``lock`` (the scheduler's shard-merge
    callbacks run on pool worker threads).  ``done`` fires exactly once,
    on entry to a terminal state.
    """

    job_id: str
    tenant: str
    trace_path: Path
    integrity: str
    triage: TriageInfo
    submitted_at: float = field(default_factory=time.perf_counter)
    state: str = QUEUED
    error: str = ""
    cancelled: bool = False
    races: RaceSet = field(default_factory=RaceSet)
    stats: AnalysisStats = field(default_factory=AnalysisStats)
    integrity_report: Optional[dict] = None
    shards_total: int = 0
    shards_done: int = 0
    #: Seconds from submission to the first race merged at the
    #: coordinator (the service-level TTFR; None when the job is clean).
    ttfr_seconds: Optional[float] = None
    finished_at: Optional[float] = None
    cache_hits: int = 0
    #: Submission-to-terminal wall deadline (None: unbounded); enforced
    #: by the scheduler, which stops dispatching and fails the job.
    deadline_s: Optional[float] = None
    #: True when this record was rebuilt from the WAL by a restarted
    #: service rather than submitted in this process's lifetime.
    resumed: bool = False
    #: Shards whose outcomes were loaded from durable checkpoints
    #: instead of executed (resume/retry reuse).
    checkpoint_hits: int = 0
    #: The planner's total concurrent-pair count (coverage denominator).
    pairs_total: int = 0
    #: Poison shards set aside after exhausting their retry/crash budget.
    quarantined: list = field(default_factory=list)
    #: Structured account of what a DEGRADED job is missing.
    degradation: Optional[DegradationReport] = None
    #: Distributed-trace identity, minted at submission (None when the
    #: job was created outside the service facade).
    trace: Optional[TraceContext] = None
    #: Wall-clock anchors: ``perf_counter`` fields above measure
    #: durations, these align coordinator and worker spans on one
    #: absolute timeline.
    submitted_wall: float = field(default_factory=time.time)
    dequeued_wall: Optional[float] = None
    #: Coordinator-side span dicts (queue-wait, triage, plan, merges,
    #: retries) — see :func:`repro.serve.tracing.coord_span`.
    trace_spans: list = field(default_factory=list)
    #: Per-worker shard spans: ``(worker_pid, [span dicts])`` tuples.
    worker_spans: list = field(default_factory=list)
    #: Merged per-shard registry deltas (a registry-snapshot dict).
    worker_metrics: dict = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    done: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def elapsed_seconds(self) -> float:
        end = self.finished_at if self.finished_at is not None else time.perf_counter()
        return end - self.submitted_at

    def deadline_exceeded(self) -> bool:
        """True once the job has outlived its wall deadline."""
        return (
            self.deadline_s is not None
            and self.finished_at is None
            and time.perf_counter() - self.submitted_at > self.deadline_s
        )

    def result(self) -> AnalysisResult:
        """The merged analysis result (meaningful once the state is in
        :data:`RESULT_STATES` — for DEGRADED jobs it covers the pair
        fraction reported by :attr:`degradation`)."""
        from ..sword.integrity import IntegrityReport

        integrity = (
            IntegrityReport.from_json(self.integrity_report)
            if self.integrity_report is not None
            else None
        )
        return AnalysisResult(
            races=self.races, stats=self.stats, integrity=integrity
        )

    def status(self) -> dict:
        """Machine-readable snapshot (the ``Service.status`` payload)."""
        with self.lock:
            return {
                "job_id": self.job_id,
                "tenant": self.tenant,
                "trace_id": self.trace.trace_id if self.trace else "",
                "trace": str(self.trace_path),
                "integrity": self.integrity,
                "state": self.state,
                "error": self.error,
                "races": len(self.races),
                "shards_total": self.shards_total,
                "shards_done": self.shards_done,
                "ttfr_seconds": self.ttfr_seconds,
                "elapsed_seconds": self.elapsed_seconds,
                "cache_hits": self.cache_hits,
                "checkpoint_hits": self.checkpoint_hits,
                "deadline_s": self.deadline_s,
                "resumed": self.resumed,
                "shards_quarantined": len(self.quarantined),
                "degradation": (
                    self.degradation.to_json()
                    if self.degradation is not None
                    else None
                ),
                "triage": self.triage.to_json(),
            }
