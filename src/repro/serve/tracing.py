"""End-to-end job tracing: context minting, worker bundles, stitching.

Every submission mints a :class:`TraceContext` — a ``trace_id`` that
follows the job through the queue, the scheduler, and into every process
worker that runs one of its shards.  Workers cannot share the
coordinator's tracer (they live in other processes), so each shard
carries a picklable :class:`ObsConfig` recipe instead and builds its own
bundle on arrival; the spans it records come home on the
:class:`~repro.serve.workers.ShardOutcome` as plain dicts with
*wall-clock* timestamps, which is the one clock every process agrees on.

:func:`stitch_job_trace` then assembles the whole story into a single
Chrome trace-event JSON: row 0 is the coordinator (queue-wait, triage,
plan, per-shard merges, retry/backoff), and each worker process gets its
own row with the shard spans it executed (scan, tree builds, pair
compares).  Load the file at ``chrome://tracing`` or
https://ui.perfetto.dev and the job's life — submission to merged race
set — is one flamegraph.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..obs import (
    Instrumentation,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    PhaseTracer,
)

__all__ = [
    "TraceContext",
    "ObsConfig",
    "coord_span",
    "stitch_job_trace",
    "write_job_trace",
]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One trace's identity: minted at submission, inherited by shards."""

    trace_id: str
    span_id: str
    parent_id: str = ""

    @classmethod
    def mint(cls) -> "TraceContext":
        return cls(trace_id=uuid.uuid4().hex, span_id=uuid.uuid4().hex[:16])

    def child(self) -> "TraceContext":
        """A child context: same trace, new span, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=uuid.uuid4().hex[:16],
            parent_id=self.span_id,
        )

    def to_json(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


@dataclass(frozen=True, slots=True)
class ObsConfig:
    """A picklable recipe for a worker-side instrumentation bundle.

    Travels on the (frozen, picklable) :class:`~repro.serve.shards.
    ShardSpec`; the worker calls :meth:`build` once per shard, so the
    bundle's snapshot *is* the shard's metric delta by construction —
    no diffing against a baseline.  The journal stays null in workers:
    their lifecycle events are journaled by the coordinator, which sees
    every start/retry/steal anyway.
    """

    metrics: bool = True
    tracing: bool = True
    namespace: str = "repro"

    @classmethod
    def from_obs(cls, obs: Instrumentation) -> Optional["ObsConfig"]:
        """The recipe matching a coordinator bundle; None when fully off."""
        metrics = obs.registry.enabled
        tracing = not isinstance(obs.tracer, NullTracer)
        if not metrics and not tracing:
            return None
        return cls(
            metrics=metrics,
            tracing=tracing,
            namespace=obs.registry.namespace,
        )

    def build(self) -> Instrumentation:
        return Instrumentation(
            registry=(
                MetricsRegistry(self.namespace)
                if self.metrics
                else NullRegistry(self.namespace)
            ),
            tracer=PhaseTracer() if self.tracing else NullTracer(),
        )


def coord_span(
    name: str,
    start: float,
    end: float,
    *,
    cat: str = "serve",
    **args,
) -> dict:
    """One coordinator-side span dict (wall-clock start, seconds)."""
    span = {
        "name": name,
        "cat": cat,
        "start": start,
        "dur": max(0.0, end - start),
    }
    clean = {k: v for k, v in args.items() if v is not None}
    if clean:
        span["args"] = clean
    return span


def _event(span: dict, tid: int, base: float, trace_id: str) -> dict:
    args = dict(span.get("args", {}))
    if trace_id:
        args.setdefault("trace_id", trace_id)
    event = {
        "name": span["name"],
        "cat": span.get("cat", "serve"),
        "ph": "X",
        "pid": 0,
        "tid": tid,
        "ts": round((span["start"] - base) * 1e6, 3),
        "dur": round(span.get("dur", 0.0) * 1e6, 3),
    }
    if args:
        event["args"] = args
    return event


def _thread_name(tid: int, name: str) -> dict:
    return {
        "name": "thread_name",
        "ph": "M",
        "pid": 0,
        "tid": tid,
        "args": {"name": name},
    }


def stitch_job_trace(job) -> dict:
    """One Chrome trace-event JSON for a finished job.

    Row 0 (the coordinator) carries the job's control-plane spans;
    every worker process that executed one of the job's shards gets its
    own row.  Timestamps are microseconds relative to the earliest
    recorded instant, so the queue wait starts the timeline at ~0.
    """
    trace_id = job.trace.trace_id if job.trace is not None else ""
    starts = [s["start"] for s in job.trace_spans]
    starts += [s["start"] for _pid, spans in job.worker_spans for s in spans]
    base = min([job.submitted_wall] + starts)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": f"repro-serve {job.job_id}"},
        },
        _thread_name(0, "coordinator"),
    ]
    for span in job.trace_spans:
        events.append(_event(span, 0, base, trace_id))
    tids: dict[int, int] = {}
    for pid, spans in job.worker_spans:
        tid = tids.get(pid)
        if tid is None:
            tid = tids[pid] = len(tids) + 1
            events.append(_thread_name(tid, f"worker pid {pid}"))
        for span in spans:
            events.append(_event(span, tid, base, trace_id))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "job_id": job.job_id,
            "tenant": job.tenant,
            "trace_id": trace_id,
            "state": job.state,
        },
    }


def write_job_trace(job, path: str | Path) -> Path:
    """Write the stitched trace; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(stitch_job_trace(job)))
    return path
