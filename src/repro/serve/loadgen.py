"""Load generator and throughput harness for the analysis service.

Builds a mixed trace corpus — clean traces, delta-filtered (v2 format)
traces, and deliberately damaged traces submitted in salvage mode — and
drives a :class:`~repro.serve.service.Service` with a sustained burst of
submissions from several tenants, measuring what the fleet tier is
judged on:

* **jobs/sec** — terminal jobs over the wall time of the burst;
* **p50/p99 time-to-first-race** — submission to first race merged,
  queue wait included (the production "how fast do I hear bad news");
* **parity** — every job's race set must be byte-identical to a
  single-shot :func:`repro.api.analyze` of the same trace;
* **cross-job cache hits** — shards served from the shared
  content-hashed cache instead of recomputed.

``repro serve --load`` and the throughput benchmark both run through
:func:`run_load`.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from ..obs import Instrumentation
from .config import ServeConfig
from .errors import BackpressureError, QuotaExceededError
from .service import Service, percentile

#: Default workloads mixed into the corpus (racy + race-free).
CORPUS_WORKLOADS = ("plusplus-orig-yes", "atomic-orig-no")


@dataclass(slots=True)
class CorpusEntry:
    """One prepared trace directory plus how to submit and check it."""

    path: Path
    integrity: str = "strict"
    #: "clean" | "filtered" | "salvage" — for the report breakdown.
    flavor: str = "clean"


@dataclass(slots=True)
class LoadReport:
    """What one load run measured."""

    jobs_submitted: int = 0
    jobs_finished: int = 0
    jobs_failed: int = 0
    #: Finished jobs that completed DEGRADED (quarantined shards, the
    #: merged races cover only the surviving pair coverage).
    jobs_degraded: int = 0
    rejected_quota: int = 0
    rejected_backpressure: int = 0
    elapsed_seconds: float = 0.0
    jobs_per_second: float = 0.0
    ttfr_seconds: list[float] = field(default_factory=list)
    #: True when every finished job matched single-shot analysis.
    parity_ok: bool = True
    parity_checked: int = 0
    cache_hits: int = 0
    shard_steals: int = 0
    flavors: dict = field(default_factory=dict)
    #: The service's own ``stats()`` at burst end (per-tenant SLOs,
    #: journal summary) — the operator's view of the same run.
    service_stats: dict = field(default_factory=dict)

    @property
    def ttfr_p50(self) -> Optional[float]:
        return percentile(self.ttfr_seconds, 0.50)

    @property
    def ttfr_p99(self) -> Optional[float]:
        return percentile(self.ttfr_seconds, 0.99)

    def to_json(self) -> dict:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_finished": self.jobs_finished,
            "jobs_failed": self.jobs_failed,
            "jobs_degraded": self.jobs_degraded,
            "rejected_quota": self.rejected_quota,
            "rejected_backpressure": self.rejected_backpressure,
            "elapsed_seconds": self.elapsed_seconds,
            "jobs_per_second": self.jobs_per_second,
            "ttfr_p50_seconds": self.ttfr_p50,
            "ttfr_p99_seconds": self.ttfr_p99,
            "parity_ok": self.parity_ok,
            "parity_checked": self.parity_checked,
            "cache_hits": self.cache_hits,
            "shard_steals": self.shard_steals,
            "flavors": dict(self.flavors),
            "service": dict(self.service_stats),
        }


def damage_trace(trace_dir: Path) -> None:
    """Tear the first thread log in half (simulates a crashed producer)."""
    logs = sorted(trace_dir.glob("thread_*.log"))
    if logs:
        data = logs[0].read_bytes()
        logs[0].write_bytes(data[: max(1, len(data) // 2)])


def build_corpus(
    root: str | Path,
    *,
    nthreads: int = 4,
    seeds: tuple[int, ...] = (0, 1),
    include_filtered: bool = True,
    include_salvage: bool = True,
) -> list[CorpusEntry]:
    """Collect the mixed trace corpus under ``root``.

    Per workload and seed: one plain trace, optionally one
    delta-filtered (v2) trace, and optionally one damaged copy to be
    submitted in salvage mode.
    """
    from ..faults.harness import collect_trace

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    corpus: list[CorpusEntry] = []
    for name in CORPUS_WORKLOADS:
        for seed in seeds:
            plain = root / f"{name}-s{seed}"
            collect_trace(name, plain, nthreads=nthreads, seed=seed)
            corpus.append(CorpusEntry(path=plain, flavor="clean"))
            if include_filtered:
                filt = root / f"{name}-s{seed}-filtered"
                collect_trace(
                    name, filt, nthreads=nthreads, seed=seed, delta_filter=True
                )
                corpus.append(CorpusEntry(path=filt, flavor="filtered"))
    if include_salvage and corpus:
        torn = root / "torn-salvage"
        collect_trace(
            CORPUS_WORKLOADS[0], torn, nthreads=nthreads, seed=seeds[0]
        )
        damage_trace(torn)
        # Early in the rotation so even short bursts exercise salvage.
        corpus.insert(
            min(2, len(corpus)),
            CorpusEntry(path=torn, integrity="salvage", flavor="salvage"),
        )
    return corpus


class _WatchTicker:
    """Background thread printing the service's live stats line."""

    def __init__(
        self,
        service: Service,
        every: float,
        emit: Callable[[str], None] = print,
    ) -> None:
        self.service = service
        self.every = max(0.05, every)
        self.emit = emit
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="serve-watch", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(timeout=self.every):
            self.emit(self.service.stats_line())

    def __enter__(self) -> "_WatchTicker":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self.emit(self.service.stats_line())  # the final state


def run_load(
    service: Service,
    corpus: list[CorpusEntry],
    *,
    submissions: int = 24,
    tenants: int = 3,
    check_parity: bool = True,
    block: bool = True,
    timeout: float = 120.0,
    watch_every: Optional[float] = None,
    watch_emit: Callable[[str], None] = print,
) -> LoadReport:
    """Drive ``submissions`` jobs from the corpus through the service.

    Submissions round-robin over corpus entries and tenant ids, pacing
    on backpressure when ``block`` is set (the well-behaved-producer
    mode); with ``block=False`` rejections are counted instead — the
    quota/backpressure stress mode.  ``watch_every`` prints the live
    ticker line at that interval while the burst runs.
    """
    if watch_every is not None:
        with _WatchTicker(service, watch_every, watch_emit):
            return run_load(
                service,
                corpus,
                submissions=submissions,
                tenants=tenants,
                check_parity=check_parity,
                block=block,
                timeout=timeout,
            )
    report = LoadReport()
    t0 = time.perf_counter()
    job_entries: list[tuple[str, CorpusEntry]] = []
    for i in range(submissions):
        entry = corpus[i % len(corpus)]
        tenant = f"tenant-{i % max(1, tenants)}"
        try:
            job_id = service.submit(
                entry.path,
                tenant=tenant,
                integrity=entry.integrity,
                block=block,
                timeout=timeout,
            )
        except QuotaExceededError:
            report.rejected_quota += 1
            continue
        except BackpressureError:
            report.rejected_backpressure += 1
            continue
        report.jobs_submitted += 1
        job_entries.append((job_id, entry))
    for job_id, entry in job_entries:
        try:
            service.result(job_id, timeout=timeout)
        except Exception:
            report.jobs_failed += 1
            continue
        report.jobs_finished += 1
        status = service.status(job_id)
        if status["state"] == "degraded":
            report.jobs_degraded += 1
        report.cache_hits += status["cache_hits"]
        if status["ttfr_seconds"] is not None:
            report.ttfr_seconds.append(status["ttfr_seconds"])
        flavor = report.flavors.setdefault(
            entry.flavor, {"finished": 0, "races": 0}
        )
        flavor["finished"] += 1
        flavor["races"] += status["races"]
    report.elapsed_seconds = time.perf_counter() - t0
    if report.elapsed_seconds > 0:
        report.jobs_per_second = (
            report.jobs_finished / report.elapsed_seconds
        )
    report.shard_steals = service.pool.steals
    report.service_stats = service.stats()
    if check_parity:
        _check_parity(service, report, job_entries)
    return report


def _check_parity(
    service: Service,
    report: LoadReport,
    job_entries: list[tuple[str, CorpusEntry]],
) -> None:
    """Compare each distinct trace's merged races with single-shot analysis."""
    import repro.api as api  # deferred: api imports the serve package

    checked: dict[Path, list] = {}
    for job_id, entry in job_entries:
        status = service.status(job_id)
        if status["state"] != "done":
            continue
        if entry.path not in checked:
            baseline = api.analyze(entry.path, integrity=entry.integrity)
            checked[entry.path] = baseline.races.to_json()
        baseline_json = checked[entry.path]
        job = service._job(job_id)
        report.parity_checked += 1
        if job.races.to_json() != baseline_json:
            report.parity_ok = False


def generate_and_run(
    *,
    config: Optional[ServeConfig] = None,
    submissions: int = 24,
    tenants: int = 3,
    nthreads: int = 4,
    corpus_dir: Optional[str] = None,
    keep_corpus: bool = False,
    check_parity: bool = True,
    obs: Optional[Instrumentation] = None,
    watch_every: Optional[float] = None,
) -> LoadReport:
    """One-call harness: build corpus, boot a service, run the load."""
    owns = corpus_dir is None
    root = Path(corpus_dir or tempfile.mkdtemp(prefix="repro-serve-corpus-"))
    try:
        corpus = build_corpus(root, nthreads=nthreads)
        with Service(config or ServeConfig(), obs=obs) as service:
            return run_load(
                service,
                corpus,
                submissions=submissions,
                tenants=tenants,
                check_parity=check_parity,
                watch_every=watch_every,
            )
    finally:
        if owns and not keep_corpus:
            shutil.rmtree(root, ignore_errors=True)
