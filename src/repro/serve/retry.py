"""Bounded retry with exponential backoff — the service's one retry policy.

Grown out of :class:`~repro.stream.watch.ResilientObserver`, which carried
its own inlined retry loop; the watch wrapper and the shard scheduler now
share this policy, so "how the system behaves when I/O flakes" is defined
in exactly one place: deliver the call, and on a retryable exception back
off exponentially, run the caller's reset hook (close stale readers,
recycle a worker), and try again, up to ``retries`` extra attempts.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

from ..common.errors import TraceFormatError

#: What transient trace I/O looks like: vanished files, NFS blips, and
#: half-rotated logs that parse as torn frames until the writer settles.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (OSError, TraceFormatError)

_UNSET = object()


@dataclass(slots=True)
class RetryPolicy:
    """``retries`` extra attempts with doubling backoff.

    ``backoff_seconds`` is the first delay; attempt *k* (1-based) sleeps
    ``backoff_seconds * 2**(k-1)``.  ``retry_on`` is the exception tuple
    that counts as transient; anything else propagates immediately.
    ``sleep`` is a test seam.

    ``jitter_seed`` (not None) turns on *full jitter*: each backoff is
    drawn uniformly from ``[0, backoff_seconds * 2**(k-1)]`` using a
    policy-private seeded RNG, so a fleet of shards that failed together
    (one NFS blip tearing every reader at once) does not thundering-herd
    the shared cache dir with synchronized retries — and a fixed seed
    keeps tests deterministic.
    """

    retries: int = 3
    backoff_seconds: float = 0.01
    retry_on: tuple[type[BaseException], ...] = TRANSIENT_ERRORS
    sleep: object = field(default=time.sleep, repr=False)
    jitter_seed: Optional[int] = None
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def backoff(self, attempt: int) -> float:
        """The delay before retry ``attempt`` (1-based) under this policy."""
        base = self.backoff_seconds * (2 ** (attempt - 1))
        if self.jitter_seed is None:
            return base
        if self._rng is None:
            self._rng = random.Random(self.jitter_seed)
        return self._rng.uniform(0.0, base)

    def run(
        self,
        fn,
        *,
        on_retry=None,
        on_backoff=None,
        reset=None,
        fallback=_UNSET,
    ):
        """Call ``fn()`` under this policy and return its value.

        Before each retry: ``on_retry()`` is invoked (attempt counting),
        then ``on_backoff(seconds)`` with the chosen delay (metric
        observation), the backoff sleep happens, then ``reset()``
        (stale-handle cleanup).  When every attempt fails: return
        ``fallback`` if one was given, else re-raise the last transient
        error.
        """
        last: BaseException | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                if on_retry is not None:
                    on_retry()
                backoff = self.backoff(attempt)
                if on_backoff is not None:
                    on_backoff(backoff)
                if backoff > 0:
                    self.sleep(backoff)
                if reset is not None:
                    reset()
            try:
                return fn()
            except self.retry_on as exc:
                last = exc
                continue
        if fallback is not _UNSET:
            return fallback
        assert last is not None
        raise last
