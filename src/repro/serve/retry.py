"""Bounded retry with exponential backoff — the service's one retry policy.

Grown out of :class:`~repro.stream.watch.ResilientObserver`, which carried
its own inlined retry loop; the watch wrapper and the shard scheduler now
share this policy, so "how the system behaves when I/O flakes" is defined
in exactly one place: deliver the call, and on a retryable exception back
off exponentially, run the caller's reset hook (close stale readers,
recycle a worker), and try again, up to ``retries`` extra attempts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..common.errors import TraceFormatError

#: What transient trace I/O looks like: vanished files, NFS blips, and
#: half-rotated logs that parse as torn frames until the writer settles.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (OSError, TraceFormatError)

_UNSET = object()


@dataclass(slots=True)
class RetryPolicy:
    """``retries`` extra attempts with doubling backoff.

    ``backoff_seconds`` is the first delay; attempt *k* (1-based) sleeps
    ``backoff_seconds * 2**(k-1)``.  ``retry_on`` is the exception tuple
    that counts as transient; anything else propagates immediately.
    ``sleep`` is a test seam.
    """

    retries: int = 3
    backoff_seconds: float = 0.01
    retry_on: tuple[type[BaseException], ...] = TRANSIENT_ERRORS
    sleep: object = field(default=time.sleep, repr=False)

    def run(
        self,
        fn,
        *,
        on_retry=None,
        reset=None,
        fallback=_UNSET,
    ):
        """Call ``fn()`` under this policy and return its value.

        Before each retry: ``on_retry()`` is invoked (attempt counting),
        the backoff sleep happens, then ``reset()`` (stale-handle
        cleanup).  When every attempt fails: return ``fallback`` if one
        was given, else re-raise the last transient error.
        """
        last: BaseException | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                if on_retry is not None:
                    on_retry()
                backoff = self.backoff_seconds * (2 ** (attempt - 1))
                if backoff > 0:
                    self.sleep(backoff)
                if reset is not None:
                    reset()
            try:
                return fn()
            except self.retry_on as exc:
                last = exc
                continue
        if fallback is not _UNSET:
            return fallback
        assert last is not None
        raise last
