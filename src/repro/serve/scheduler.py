"""The job scheduler: queue drain, shard fan-out, result merge.

One planner thread pops admitted jobs, decomposes each into shards
(:func:`~repro.serve.shards.plan_shards`) and deals them to the
work-stealing pool.  Shard outcomes come back on pool threads and are
merged under the job's lock; because the race set keeps the canonical
witness per pc pair regardless of insertion order, the merged result is
byte-identical to the single-shot serial analysis no matter how shards
interleave, steal, or retry.

Time-to-first-race is a *service* measurement: the clock starts at
submission (queue wait included) and stops when the first race lands in
the merged set — the moment a ``status`` poll would first show it.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from ..obs import Instrumentation, SECONDS_BUCKETS, get_obs, merge_snapshots
from ..offline.options import AnalysisOptions
from .config import ServeConfig
from .errors import PoolClosedError
from .job import (
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    PLANNING,
    RUNNING,
    DegradationReport,
    JobRecord,
    QuarantinedShard,
    cause_chain,
)
from .pool import ShardTask, WorkStealingPool
from .queue import IngestionQueue
from .shards import SALVAGE, plan_shards
from .tracing import ObsConfig, coord_span, write_job_trace
from .wal import NULL_WAL
from .workers import ShardOutcome, merge_stats


class JobScheduler:
    """Drains the ingestion queue into the shard pool and merges results."""

    def __init__(
        self,
        config: ServeConfig,
        queue: IngestionQueue,
        pool: WorkStealingPool,
        *,
        obs: Optional[Instrumentation] = None,
        on_finish: Optional[Callable[[JobRecord], None]] = None,
        wal=None,
    ) -> None:
        self.config = config
        self.queue = queue
        self.pool = pool
        self.obs = obs or get_obs()
        #: The service's job WAL (the shared no-op when stateless).
        self.wal = wal if wal is not None else NULL_WAL
        #: Service hook, called once per job on entry to a terminal state.
        self.on_finish = on_finish
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        registry = self.obs.registry
        self._m_done = registry.counter(
            "serve.jobs_done", "jobs reaching a terminal state"
        )
        self._m_failed = registry.counter(
            "serve.jobs_failed", "jobs finishing in the failed state"
        )
        self._m_job_seconds = registry.histogram(
            "serve.job_seconds", "submission-to-terminal wall time",
            buckets=SECONDS_BUCKETS,
        )
        self._m_ttfr = registry.histogram(
            "serve.ttfr_seconds",
            "submission to first race merged (racy jobs only)",
            buckets=SECONDS_BUCKETS,
        )
        self._m_cache = registry.counter(
            "serve.cross_job_cache_hits",
            "persistent-cache hits served to shards (cross-job reuse)",
        )
        self._m_queue_wait = registry.histogram(
            "serve.queue_wait_seconds",
            "submission to scheduler dequeue",
            buckets=SECONDS_BUCKETS,
        )
        self._m_quarantined = registry.counter(
            "serve.shards_quarantined",
            "poison shards set aside after exhausting their budget",
        )
        self._m_degraded = registry.counter(
            "serve.jobs_degraded",
            "jobs finishing degraded (partial coverage + report)",
        )
        self._m_ckpt = registry.counter(
            "serve.checkpoint_hits",
            "shard outcomes loaded from durable checkpoints",
        )
        #: Worker-bundle recipe handed to every shard (None when the
        #: service runs dark — shards then skip instrumentation too).
        self.obs_config = ObsConfig.from_obs(self.obs)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "JobScheduler":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="serve-scheduler", daemon=True
            )
            self._thread.start()
        return self

    def close(self, wait: bool = True) -> None:
        self._stop.set()
        if wait and self._thread is not None:
            self._thread.join()
            self._thread = None

    # -- planning ----------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.05)
            if job is None:
                continue
            self._record_dequeue(job)
            try:
                self._schedule(job)
            except Exception as exc:
                with job.lock:
                    job.error = f"{type(exc).__name__}: {exc}"
                    job.state = FAILED
                self._finalize(job)

    def _trace_id(self, job: JobRecord) -> Optional[str]:
        return job.trace.trace_id if job.trace is not None else None

    def _record_dequeue(self, job: JobRecord) -> None:
        job.dequeued_wall = time.time()
        wait = max(0.0, job.dequeued_wall - job.submitted_wall)
        job.trace_spans.append(
            coord_span(
                "queue-wait", job.submitted_wall, job.dequeued_wall,
                tenant=job.tenant,
            )
        )
        self._m_queue_wait.observe(wait)
        self.obs.registry.histogram(
            "serve.queue_wait_seconds",
            "submission to scheduler dequeue",
            buckets=SECONDS_BUCKETS,
            labels={"tenant": job.tenant},
        ).observe(wait, exemplar=self._trace_id(job))
        self.obs.journal.record(
            "job-dequeue",
            job=job.job_id,
            tenant=job.tenant,
            trace_id=self._trace_id(job),
            queue_wait_seconds=round(wait, 6),
        )

    def _job_options(self, job: JobRecord) -> AnalysisOptions:
        options = self.config.options.copy()
        options.integrity = job.integrity
        return options

    def _schedule(self, job: JobRecord) -> None:
        with job.lock:
            if job.cancelled:
                job.state = CANCELLED
                self._finalize(job)
                return
            if job.deadline_exceeded():
                job.error = (
                    f"JobDeadlineError: job {job.job_id} exceeded "
                    f"deadline_s={job.deadline_s} before planning"
                )
                job.state = FAILED
                self._finalize(job)
                return
            job.state = PLANNING
        t0 = time.perf_counter()
        plan_wall = time.time()
        plan = plan_shards(
            job.trace_path,
            job_id=job.job_id,
            options=self._job_options(job),
            shard_pairs=self.config.shard_pairs,
            min_shards=self.pool.workers,
            cache_dir=self.config.shared_cache_dir(),
            tenant=job.tenant,
            trace_id=self._trace_id(job) or "",
            obs_config=self.obs_config,
            checkpoint_dir=self.config.checkpoint_root(),
            shard_timeout_s=self.config.shard_timeout_s,
        )
        plan_seconds = time.perf_counter() - t0
        with job.lock:
            job.stats.intervals = plan.intervals
            job.stats.concurrent_pairs = plan.concurrent_pairs
            job.stats.plan_seconds = plan_seconds
            job.shards_total = len(plan.shards)
            job.pairs_total = plan.concurrent_pairs
            job.trace_spans.append(
                coord_span(
                    "plan", plan_wall, plan_wall + plan_seconds,
                    shards=len(plan.shards), pairs=plan.concurrent_pairs,
                )
            )
            # Coordinator-side verdict injection, before any shard lands:
            # a fully elided trace can carry synthesised DEFINITE_RACE
            # reports with zero analyzable pairs.
            self._inject_static_verdicts(job)
            job.state = RUNNING
            if not plan.shards:  # empty trace: trivially clean
                job.state = DONE
                self._finalize(job)
                return
        self.wal.append(
            "planned",
            job.job_id,
            shards=len(plan.shards),
            pairs=plan.concurrent_pairs,
            tokens=[spec.checkpoint_token for spec in plan.shards],
        )
        for spec in plan.shards:
            task = ShardTask(
                spec=spec,
                on_done=lambda outcome, error: None,
                cancelled=lambda _job=job: (
                    _job.cancelled or _job.deadline_exceeded()
                ),
            )
            task.on_done = (
                lambda outcome, error, _job=job, _task=task: self._on_shard(
                    _job, outcome, error, _task
                )
            )
            self.pool.submit(task)

    def _inject_static_verdicts(self, job: JobRecord) -> None:
        """Fold the trace's static verdict table into the job (once).

        Pair shards only ever analyze planned pairs, so the synthesised
        DEFINITE_RACE reports — which exist *instead of* events — enter
        here at the coordinator.  A corrupt or unreadable table falls
        back to UNKNOWN-everything (no reports, no counts); the salvage
        shard accounts that loss in its integrity report.
        """
        from ..common.errors import TraceFormatError
        from ..static.table import STATIC_VERDICTS_KEY, StaticVerdictTable
        from ..sword.traceformat import MANIFEST_NAME

        try:
            manifest = json.loads(
                (Path(job.trace_path) / MANIFEST_NAME).read_text()
            )
            payload = manifest.get(STATIC_VERDICTS_KEY)
            if payload is None:
                return
            table = StaticVerdictTable.from_payload(payload)
        except (OSError, ValueError, TraceFormatError):
            return
        job.stats.sites_proven_free = table.sites_proven_free
        job.stats.sites_definite_race = table.sites_definite_race
        job.stats.events_elided = int(table.events_elided)
        had_races = len(job.races) > 0
        for report in table.race_reports():
            job.races.add(report)
        if not had_races and len(job.races) and job.ttfr_seconds is None:
            job.ttfr_seconds = time.perf_counter() - job.submitted_at

    # -- merging (runs on pool worker threads) -----------------------------------

    def _merge(self, job: JobRecord, outcome: ShardOutcome) -> None:
        """Fold one shard into the job; caller holds ``job.lock``."""
        merge_wall = time.time()
        first = len(job.races) == 0
        for report in outcome.reports():
            job.races.add(report)
        if first and len(job.races) and job.ttfr_seconds is None:
            job.ttfr_seconds = time.perf_counter() - job.submitted_at
        if outcome.integrity is not None:  # the (sole) salvage shard
            job.integrity_report = outcome.integrity
            job.stats = outcome.stats
        else:
            merge_stats(job.stats, outcome.stats)
        if outcome.cache_hits:
            job.cache_hits += outcome.cache_hits
            self._m_cache.inc(outcome.cache_hits)
        if outcome.from_checkpoint:
            job.checkpoint_hits += 1
            self._m_ckpt.inc()
            if not outcome.cache_hits:
                # A checkpoint hit *is* cross-run reuse even when the
                # stored execution itself ran cold — credit it so reuse
                # accounting covers resume the way it covers the cache.
                job.cache_hits += 1
                self._m_cache.inc()
        if outcome.spans:
            job.worker_spans.append((outcome.worker_pid, outcome.spans))
        if outcome.metrics:
            merge_snapshots(job.worker_metrics, outcome.metrics)
        job.trace_spans.append(
            coord_span(
                "merge", merge_wall, time.time(),
                shard=outcome.index, races=len(outcome.rows),
            )
        )

    def _record_attempts(self, job: JobRecord, task: ShardTask) -> None:
        """Failed attempts become retry/backoff spans on the coordinator
        row (successful attempts show up as the worker's shard span).
        Caller holds ``job.lock``."""
        attempts = [e for e in task.events if e.get("kind") == "attempt"]
        for i, event in enumerate(attempts):
            if "error" not in event or "end" not in event:
                continue
            job.trace_spans.append(
                coord_span(
                    "shard-retry", event["start"], event["end"],
                    shard=task.spec.index, error=event["error"],
                )
            )
            if i + 1 < len(attempts):
                job.trace_spans.append(
                    coord_span(
                        "shard-backoff", event["end"],
                        attempts[i + 1]["start"], shard=task.spec.index,
                    )
                )

    def _quarantine(
        self, job: JobRecord, error: BaseException, task: ShardTask
    ) -> None:
        """Set one poison shard aside; caller holds ``job.lock``."""
        shard = QuarantinedShard(
            index=task.spec.index,
            pairs=task.spec.npairs,
            causes=cause_chain(error),
            crashes=task.crashes,
        )
        job.quarantined.append(shard)
        self._m_quarantined.inc()
        self.obs.journal.record(
            "shard-quarantine",
            job=job.job_id,
            shard=shard.index,
            tenant=job.tenant,
            trace_id=self._trace_id(job),
            pairs=shard.pairs,
            crashes=shard.crashes,
            cause=shard.causes[0] if shard.causes else None,
        )

    def _on_shard(
        self,
        job: JobRecord,
        outcome: Optional[ShardOutcome],
        error: Optional[BaseException],
        task: Optional[ShardTask] = None,
    ) -> None:
        finished = False
        with job.lock:
            job.shards_done += 1
            if error is not None:
                # Poison shards (exhausted retry/crash budget) are
                # quarantined so the job can degrade gracefully; a
                # pool shutdown is job-fatal, not a shard defect.
                if (
                    self.config.quarantine
                    and task is not None
                    and not isinstance(error, PoolClosedError)
                ):
                    self._quarantine(job, error, task)
                elif not job.error:
                    job.error = f"{type(error).__name__}: {error}"
            if outcome is not None:
                self._merge(job, outcome)
            if task is not None:
                self._record_attempts(job, task)
            if job.shards_done >= job.shards_total:
                job.stats.races_found = len(job.races)
                self._settle(job)
                finished = True
        if outcome is not None and task is not None:
            self.wal.append(
                "shard-done",
                job.job_id,
                shard=task.spec.index,
                token=task.spec.checkpoint_token or None,
                races=len(outcome.rows),
                pairs=task.spec.npairs,
            )
        if finished:
            self._finalize(job)

    def _settle(self, job: JobRecord) -> None:
        """Pick the terminal state once every shard reported; caller
        holds ``job.lock``.

        Precedence: a job-fatal error beats everything; cancellation
        beats degradation (the caller walked away); a blown deadline is
        job-fatal; quarantined shards degrade the job *if* any shard
        survived to contribute coverage, else the poison consumed the
        whole job and it plainly failed.
        """
        if job.error:
            job.state = FAILED
        elif job.cancelled:
            job.state = CANCELLED
        elif job.deadline_exceeded():
            job.error = (
                f"JobDeadlineError: job {job.job_id} exceeded "
                f"deadline_s={job.deadline_s}"
            )
            job.state = FAILED
        elif job.quarantined:
            if len(job.quarantined) >= job.shards_total:
                first = job.quarantined[0]
                job.error = first.causes[0] if first.causes else "poison shard"
                job.state = FAILED
            else:
                job.degradation = DegradationReport(
                    job_id=job.job_id,
                    shards_total=job.shards_total,
                    pairs_total=job.pairs_total,
                    quarantined=list(job.quarantined),
                )
                job.state = DEGRADED
        else:
            job.state = DONE

    # -- completion --------------------------------------------------------------

    def _finalize(self, job: JobRecord) -> None:
        job.finished_at = time.perf_counter()
        self.queue.release(job)
        self._m_done.inc()
        if job.state == FAILED:
            self._m_failed.inc()
        if job.state == DEGRADED:
            self._m_degraded.inc()
        if job.state in (DONE, DEGRADED):
            self.wal.append("merged", job.job_id, races=len(job.races))
        self.wal.append(
            "finalized",
            job.job_id,
            state=job.state,
            races=len(job.races),
            quarantined=(
                sorted(q.index for q in job.quarantined)
                if job.quarantined
                else None
            ),
        )
        self._m_job_seconds.observe(job.elapsed_seconds)
        if job.ttfr_seconds is not None:
            self._m_ttfr.observe(job.ttfr_seconds)
            self.obs.registry.histogram(
                "serve.ttfr_seconds",
                "submission to first race merged (racy jobs only)",
                buckets=SECONDS_BUCKETS,
                labels={"tenant": job.tenant},
            ).observe(job.ttfr_seconds, exemplar=self._trace_id(job))
        with job.lock:
            # The enclosing "job" bar: Chrome nests same-row spans by
            # time containment, so this parents everything above.
            job.trace_spans.insert(
                0,
                coord_span(
                    "job", job.submitted_wall, time.time(),
                    cat="serve-job", state=job.state, tenant=job.tenant,
                    races=len(job.races),
                ),
            )
        self.obs.journal.record(
            "job-complete",
            job=job.job_id,
            tenant=job.tenant,
            trace_id=self._trace_id(job),
            state=job.state,
            races=len(job.races),
            shards=job.shards_total,
            cache_hits=job.cache_hits,
            checkpoint_hits=job.checkpoint_hits,
            quarantined=len(job.quarantined) or None,
            elapsed_seconds=round(job.elapsed_seconds, 6),
            error=job.error or None,
        )
        self._write_artifacts(job)
        if self.on_finish is not None:
            self.on_finish(job)
        job.done.set()

    def _write_artifacts(self, job: JobRecord) -> None:
        """Per-job trace (always), journal slice (failures), and the
        degradation report (degraded jobs)."""
        if self.config.trace_dir is None:
            return
        root = Path(self.config.trace_dir)
        try:
            if job.trace_spans or job.worker_spans:
                write_job_trace(job, root / f"{job.job_id}.trace.json")
            if job.state == FAILED and self.obs.journal.enabled:
                root.mkdir(parents=True, exist_ok=True)
                self.obs.journal.dump(
                    root / f"{job.job_id}.journal.jsonl", job=job.job_id
                )
            if job.degradation is not None:
                root.mkdir(parents=True, exist_ok=True)
                (root / f"{job.job_id}.degradation.json").write_text(
                    json.dumps(job.degradation.to_json(), indent=2)
                )
        except OSError:
            # Trace artifacts are best-effort: a full disk must not turn
            # a finished job into a failed one.
            pass
