"""The service facade: submit / status / result / cancel.

:class:`Service` wires the ingestion queue, the job scheduler, and the
work-stealing shard pool into one long-lived object — the in-process
form of the fleet analysis tier.  Many producers submit trace
directories concurrently; each gets a job id back immediately (or an
admission error), polls ``status``, and collects the merged
:class:`~repro.offline.engine.AnalysisResult` with ``result``.

The cross-job result cache is shared by construction: every shard of
every job runs against one content-hashed cache root, so identical
traces submitted by different tenants are analyzed once.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..obs import Instrumentation, get_obs
from ..offline.engine import AnalysisResult
from .config import ServeConfig
from .errors import JobFailedError, JobNotFoundError, ServiceClosedError
from .job import (
    ACTIVE_STATES,
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    RESULT_STATES,
    JobRecord,
    triage_trace,
)
from .pool import WorkStealingPool
from .queue import IngestionQueue
from .retry import RetryPolicy
from .scheduler import JobScheduler
from .tracing import TraceContext, coord_span, stitch_job_trace
from .wal import NULL_WAL, JobWal, replay_wal

INTEGRITY_MODES = ("strict", "salvage")


def percentile(values: list[float], q: float) -> Optional[float]:
    """Nearest-rank percentile; None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, int(len(ordered) * q + 0.9999999))
    return ordered[min(rank, len(ordered)) - 1]


class Service:
    """The fleet analysis service (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.obs = obs or get_obs()
        self._own_cache_dir: Optional[str] = None
        if self.config.state_dir is not None:
            # A durable service roots its result cache under the state
            # dir too (unless the caller chose one): resume must find
            # the same cache the killed run was warming.
            Path(self.config.state_dir).mkdir(parents=True, exist_ok=True)
            if self.config.result_cache and self.config.cache_dir is None:
                self.config.cache_dir = os.path.join(
                    self.config.state_dir, "result-cache"
                )
        if self.config.result_cache and self.config.cache_dir is None:
            self._own_cache_dir = tempfile.mkdtemp(prefix="repro-serve-cache-")
            self.config.cache_dir = self._own_cache_dir
        wal_path = self.config.wal_path()
        self.wal = (
            JobWal(wal_path, fsync=self.config.wal_fsync)
            if wal_path is not None
            else NULL_WAL
        )
        self.queue = IngestionQueue(self.config, obs=self.obs)
        self.pool = WorkStealingPool(
            self.config.workers,
            use_processes=self.config.use_processes,
            retry=RetryPolicy(
                retries=self.config.shard_retries,
                backoff_seconds=self.config.shard_backoff_seconds,
                jitter_seed=self.config.shard_backoff_jitter_seed,
            ),
            obs=self.obs,
            default_timeout_s=self.config.shard_timeout_s,
            max_shard_crashes=self.config.max_shard_crashes,
        )
        self.scheduler = JobScheduler(
            self.config,
            self.queue,
            self.pool,
            obs=self.obs,
            on_finish=self._on_finish,
            wal=self.wal,
        )
        self._jobs: dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._started_at = time.perf_counter()
        self._finished = 0
        self._failed = 0
        self._degraded = 0
        self._resumed = 0
        self._ttfrs: list[float] = []
        #: Per-tenant SLO inputs, tracked service-side so ``stats()``
        #: answers even when the obs bundle is null.
        self._tenant_stats: dict[str, dict] = {}
        self._closed = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "Service":
        if not self._started:
            self._started = True
            self._started_at = time.perf_counter()
            if self.wal.enabled:
                self._resume()
            self.pool.start()
            self.scheduler.start()
        return self

    def _resume(self) -> None:
        """Replay the WAL and re-enqueue every unfinished job.

        Runs before the scheduler thread starts, so resumed jobs sit at
        the head of the queue in their original submission order.  Job
        ids and trace ids are preserved (a client polling a pre-crash id
        keeps working), the id sequence continues past the replayed
        maximum, and completed shards are skipped via their checkpoints
        when the shards re-plan — resume restarts from the last
        completed shard, not from byte zero.
        """
        replay = replay_wal(self.config.wal_path())
        with self._lock:
            self._seq = max(self._seq, replay.max_seq())
        unfinished = replay.unfinished
        if not unfinished:
            return
        resumed_counter = self.obs.registry.counter(
            "serve.jobs_resumed", "unfinished jobs re-enqueued from the WAL"
        )
        for rep in unfinished:
            trace_path = Path(rep.trace_path)
            ctx = TraceContext.mint()
            if rep.trace_id:
                ctx = TraceContext(trace_id=rep.trace_id, span_id=ctx.span_id)
            job = JobRecord(
                job_id=rep.job_id,
                tenant=rep.tenant,
                trace_path=trace_path,
                integrity=rep.integrity,
                triage=triage_trace(trace_path),
                trace=ctx,
                deadline_s=rep.deadline_s,
                resumed=True,
            )
            self.queue.readmit(job)
            with self._lock:
                self._jobs[job.job_id] = job
                self._tenant(job.tenant)["submitted"] += 1
                self._resumed += 1
            resumed_counter.inc()
            self.obs.journal.record(
                "job-resume",
                job=job.job_id,
                tenant=job.tenant,
                trace_id=ctx.trace_id,
                shards_done=len(rep.shards_done),
                shards_total=rep.shards_total,
            )

    def close(self, drain: bool = True) -> None:
        """Shut down: stop admissions, optionally drain in-flight jobs."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        if drain:
            with self._lock:
                active = [
                    job
                    for job in self._jobs.values()
                    if job.state in ACTIVE_STATES
                ]
            for job in active:
                job.done.wait(timeout=60.0)
        self.scheduler.close()
        self.pool.close(wait=drain)
        self.wal.close()
        if self._own_cache_dir is not None:
            shutil.rmtree(self._own_cache_dir, ignore_errors=True)
            self._own_cache_dir = None

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        trace: Union[str, os.PathLike],
        *,
        tenant: str = "default",
        integrity: str = "strict",
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> str:
        """Submit one trace directory; returns the job id.

        Raises :class:`~repro.serve.errors.QuotaExceededError` or
        :class:`~repro.serve.errors.BackpressureError` when admission
        fails (with ``block=True``, backpressure waits up to ``timeout``
        instead).  ``integrity="salvage"`` requests damage-tolerant
        analysis of a torn trace.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        if integrity not in INTEGRITY_MODES:
            raise ValueError(
                f"unknown integrity mode {integrity!r}; "
                f"expected one of {INTEGRITY_MODES}"
            )
        trace_path = Path(trace)
        triage_start = time.time()
        triage = triage_trace(trace_path)
        triage_end = time.time()
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq:06d}"
        job = JobRecord(
            job_id=job_id,
            tenant=tenant,
            trace_path=trace_path,
            integrity=integrity,
            triage=triage,
            trace=TraceContext.mint(),
            deadline_s=self.config.quota.deadline_s,
        )
        job.trace_spans.append(
            coord_span(
                "triage", triage_start, triage_end,
                bytes=triage.log_bytes, threads=triage.threads,
            )
        )
        self.queue.submit(job, block=block, timeout=timeout)
        # Logged after admission (a rejected submission must not be
        # resurrected by replay) and before the id is returned — the WAL
        # append is the acknowledgment's durability point.
        self.wal.append(
            "submitted",
            job_id,
            tenant=tenant,
            trace=str(trace_path),
            integrity=integrity,
            trace_id=job.trace.trace_id if job.trace else None,
            deadline_s=job.deadline_s,
        )
        with self._lock:
            self._jobs[job_id] = job
            self._tenant(tenant)["submitted"] += 1
        return job_id

    # -- inspection --------------------------------------------------------------

    def _job(self, job_id: str) -> JobRecord:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def status(self, job_id: str) -> dict:
        return self._job(job_id).status()

    def result(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> AnalysisResult:
        """Block until the job is terminal and return the merged result.

        Raises :class:`~repro.serve.errors.JobFailedError` for failed or
        cancelled jobs and :class:`TimeoutError` when ``timeout``
        elapses first.  A DEGRADED job *returns* its partial result —
        the races over the covered pair fraction are exact; callers who
        must distinguish check ``status()["state"]`` or the job's
        degradation report.
        """
        job = self._job(job_id)
        if not job.done.wait(timeout=timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state!r} after {timeout}s"
            )
        if job.state not in RESULT_STATES:
            raise JobFailedError(job_id, job.state, job.error)
        return job.result()

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the job was still active.

        Queued jobs are dropped at scheduling time; running jobs stop
        dispatching new shards (shards already executing finish, their
        results are discarded with the job).
        """
        job = self._job(job_id)
        with job.lock:
            if job.state not in ACTIVE_STATES:
                return False
            job.cancelled = True
        return True

    def jobs(self) -> list[dict]:
        """Status snapshots of every job this service has seen."""
        with self._lock:
            records = list(self._jobs.values())
        return [job.status() for job in records]

    def stats(self) -> dict:
        """Service-level throughput counters (the ``serve stats`` view)."""
        with self._lock:
            finished = self._finished
            failed = self._failed
            degraded = self._degraded
            resumed = self._resumed
            resuming = sum(
                1
                for job in self._jobs.values()
                if job.resumed and job.state in ACTIVE_STATES
            )
            ttfrs = list(self._ttfrs)
            tenants = {
                name: self._tenant_summary(data)
                for name, data in sorted(self._tenant_stats.items())
            }
        elapsed = time.perf_counter() - self._started_at
        return {
            "jobs_submitted": self._seq,
            "jobs_finished": finished,
            "jobs_failed": failed,
            "jobs_degraded": degraded,
            "jobs_resumed": resumed,
            "jobs_resuming": resuming,
            "jobs_per_second": (finished / elapsed) if elapsed > 0 else 0.0,
            "queue_depth": self.queue.depth,
            "pool_backlog": self.pool.backlog,
            "shards_executed": self.pool.executed,
            "shard_steals": self.pool.steals,
            "shard_retries": self.pool.retries,
            "shard_timeouts": self.pool.timeouts,
            "worker_crashes": self.pool.crashes,
            "wal_records": self.wal.appended,
            "ttfr_p50_seconds": percentile(ttfrs, 0.50),
            "ttfr_p99_seconds": percentile(ttfrs, 0.99),
            "elapsed_seconds": elapsed,
            "tenants": tenants,
            "journal": self.obs.journal.summary(),
        }

    def stats_line(self) -> str:
        """One compact live line (the ``repro serve --watch`` ticker)."""
        s = self.stats()
        p50 = s["ttfr_p50_seconds"]
        ttfr = f"{p50 * 1000:.0f}ms" if p50 is not None else "-"
        line = (
            f"[serve] jobs={s['jobs_finished']}/{s['jobs_submitted']}"
            f" failed={s['jobs_failed']}"
            f" queue={s['queue_depth']} backlog={s['pool_backlog']}"
            f" shards={s['shards_executed']}"
            f" steals={s['shard_steals']} retries={s['shard_retries']}"
            f" ttfr_p50={ttfr}"
        )
        if s["jobs_degraded"]:
            line += f" degraded={s['jobs_degraded']}"
        if s["jobs_resumed"]:
            line += (
                f" resumed={s['jobs_resumed']}"
                f" resuming={s['jobs_resuming']}"
            )
        return line

    def trace(self, job_id: str) -> dict:
        """The job's stitched Chrome trace-event JSON (see
        :func:`repro.serve.tracing.stitch_job_trace`)."""
        job = self._job(job_id)
        with job.lock:
            return stitch_job_trace(job)

    # -- scheduler hook ----------------------------------------------------------

    def _tenant(self, tenant: str) -> dict:
        """The per-tenant accumulator; caller holds ``self._lock``."""
        data = self._tenant_stats.get(tenant)
        if data is None:
            data = self._tenant_stats[tenant] = {
                "submitted": 0,
                "finished": 0,
                "failed": 0,
                "ttfrs": [],
                "queue_waits": [],
            }
        return data

    @staticmethod
    def _tenant_summary(data: dict) -> dict:
        return {
            "submitted": data["submitted"],
            "finished": data["finished"],
            "failed": data["failed"],
            "ttfr_p50_seconds": percentile(data["ttfrs"], 0.50),
            "ttfr_p95_seconds": percentile(data["ttfrs"], 0.95),
            "ttfr_p99_seconds": percentile(data["ttfrs"], 0.99),
            "queue_wait_p50_seconds": percentile(data["queue_waits"], 0.50),
            "queue_wait_p99_seconds": percentile(data["queue_waits"], 0.99),
        }

    def _on_finish(self, job: JobRecord) -> None:
        with self._lock:
            self._finished += 1
            if job.state in (FAILED, CANCELLED):
                self._failed += job.state == FAILED
            if job.state == DEGRADED:
                self._degraded += 1
            if job.ttfr_seconds is not None:
                self._ttfrs.append(job.ttfr_seconds)
            tenant = self._tenant(job.tenant)
            tenant["finished"] += 1
            tenant["failed"] += job.state == FAILED
            if job.ttfr_seconds is not None:
                tenant["ttfrs"].append(job.ttfr_seconds)
            if job.dequeued_wall is not None:
                tenant["queue_waits"].append(
                    max(0.0, job.dequeued_wall - job.submitted_wall)
                )
