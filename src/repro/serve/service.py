"""The service facade: submit / status / result / cancel.

:class:`Service` wires the ingestion queue, the job scheduler, and the
work-stealing shard pool into one long-lived object — the in-process
form of the fleet analysis tier.  Many producers submit trace
directories concurrently; each gets a job id back immediately (or an
admission error), polls ``status``, and collects the merged
:class:`~repro.offline.engine.AnalysisResult` with ``result``.

The cross-job result cache is shared by construction: every shard of
every job runs against one content-hashed cache root, so identical
traces submitted by different tenants are analyzed once.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional, Union

from ..obs import Instrumentation, get_obs
from ..offline.engine import AnalysisResult
from .config import ServeConfig
from .errors import JobFailedError, JobNotFoundError, ServiceClosedError
from .job import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    JobRecord,
    triage_trace,
)
from .pool import WorkStealingPool
from .queue import IngestionQueue
from .retry import RetryPolicy
from .scheduler import JobScheduler
from .tracing import TraceContext, coord_span, stitch_job_trace

INTEGRITY_MODES = ("strict", "salvage")


def percentile(values: list[float], q: float) -> Optional[float]:
    """Nearest-rank percentile; None on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, int(len(ordered) * q + 0.9999999))
    return ordered[min(rank, len(ordered)) - 1]


class Service:
    """The fleet analysis service (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.obs = obs or get_obs()
        self._own_cache_dir: Optional[str] = None
        if self.config.result_cache and self.config.cache_dir is None:
            self._own_cache_dir = tempfile.mkdtemp(prefix="repro-serve-cache-")
            self.config.cache_dir = self._own_cache_dir
        self.queue = IngestionQueue(self.config, obs=self.obs)
        self.pool = WorkStealingPool(
            self.config.workers,
            use_processes=self.config.use_processes,
            retry=RetryPolicy(
                retries=self.config.shard_retries,
                backoff_seconds=self.config.shard_backoff_seconds,
            ),
            obs=self.obs,
        )
        self.scheduler = JobScheduler(
            self.config,
            self.queue,
            self.pool,
            obs=self.obs,
            on_finish=self._on_finish,
        )
        self._jobs: dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._started_at = time.perf_counter()
        self._finished = 0
        self._failed = 0
        self._ttfrs: list[float] = []
        #: Per-tenant SLO inputs, tracked service-side so ``stats()``
        #: answers even when the obs bundle is null.
        self._tenant_stats: dict[str, dict] = {}
        self._closed = False
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "Service":
        if not self._started:
            self._started = True
            self._started_at = time.perf_counter()
            self.pool.start()
            self.scheduler.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Shut down: stop admissions, optionally drain in-flight jobs."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        if drain:
            with self._lock:
                active = [
                    job
                    for job in self._jobs.values()
                    if job.state in ACTIVE_STATES
                ]
            for job in active:
                job.done.wait(timeout=60.0)
        self.scheduler.close()
        self.pool.close()
        if self._own_cache_dir is not None:
            shutil.rmtree(self._own_cache_dir, ignore_errors=True)
            self._own_cache_dir = None

    def __enter__(self) -> "Service":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        trace: Union[str, os.PathLike],
        *,
        tenant: str = "default",
        integrity: str = "strict",
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> str:
        """Submit one trace directory; returns the job id.

        Raises :class:`~repro.serve.errors.QuotaExceededError` or
        :class:`~repro.serve.errors.BackpressureError` when admission
        fails (with ``block=True``, backpressure waits up to ``timeout``
        instead).  ``integrity="salvage"`` requests damage-tolerant
        analysis of a torn trace.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        if integrity not in INTEGRITY_MODES:
            raise ValueError(
                f"unknown integrity mode {integrity!r}; "
                f"expected one of {INTEGRITY_MODES}"
            )
        trace_path = Path(trace)
        triage_start = time.time()
        triage = triage_trace(trace_path)
        triage_end = time.time()
        with self._lock:
            self._seq += 1
            job_id = f"job-{self._seq:06d}"
        job = JobRecord(
            job_id=job_id,
            tenant=tenant,
            trace_path=trace_path,
            integrity=integrity,
            triage=triage,
            trace=TraceContext.mint(),
        )
        job.trace_spans.append(
            coord_span(
                "triage", triage_start, triage_end,
                bytes=triage.log_bytes, threads=triage.threads,
            )
        )
        self.queue.submit(job, block=block, timeout=timeout)
        with self._lock:
            self._jobs[job_id] = job
            self._tenant(tenant)["submitted"] += 1
        return job_id

    # -- inspection --------------------------------------------------------------

    def _job(self, job_id: str) -> JobRecord:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    def status(self, job_id: str) -> dict:
        return self._job(job_id).status()

    def result(
        self, job_id: str, *, timeout: Optional[float] = None
    ) -> AnalysisResult:
        """Block until the job is terminal and return the merged result.

        Raises :class:`~repro.serve.errors.JobFailedError` for failed or
        cancelled jobs and :class:`TimeoutError` when ``timeout``
        elapses first.
        """
        job = self._job(job_id)
        if not job.done.wait(timeout=timeout):
            raise TimeoutError(
                f"job {job_id} still {job.state!r} after {timeout}s"
            )
        if job.state != DONE:
            raise JobFailedError(job_id, job.state, job.error)
        return job.result()

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the job was still active.

        Queued jobs are dropped at scheduling time; running jobs stop
        dispatching new shards (shards already executing finish, their
        results are discarded with the job).
        """
        job = self._job(job_id)
        with job.lock:
            if job.state not in ACTIVE_STATES:
                return False
            job.cancelled = True
        return True

    def jobs(self) -> list[dict]:
        """Status snapshots of every job this service has seen."""
        with self._lock:
            records = list(self._jobs.values())
        return [job.status() for job in records]

    def stats(self) -> dict:
        """Service-level throughput counters (the ``serve stats`` view)."""
        with self._lock:
            finished = self._finished
            failed = self._failed
            ttfrs = list(self._ttfrs)
            tenants = {
                name: self._tenant_summary(data)
                for name, data in sorted(self._tenant_stats.items())
            }
        elapsed = time.perf_counter() - self._started_at
        return {
            "jobs_submitted": self._seq,
            "jobs_finished": finished,
            "jobs_failed": failed,
            "jobs_per_second": (finished / elapsed) if elapsed > 0 else 0.0,
            "queue_depth": self.queue.depth,
            "pool_backlog": self.pool.backlog,
            "shards_executed": self.pool.executed,
            "shard_steals": self.pool.steals,
            "shard_retries": self.pool.retries,
            "ttfr_p50_seconds": percentile(ttfrs, 0.50),
            "ttfr_p99_seconds": percentile(ttfrs, 0.99),
            "elapsed_seconds": elapsed,
            "tenants": tenants,
            "journal": self.obs.journal.summary(),
        }

    def stats_line(self) -> str:
        """One compact live line (the ``repro serve --watch`` ticker)."""
        s = self.stats()
        p50 = s["ttfr_p50_seconds"]
        ttfr = f"{p50 * 1000:.0f}ms" if p50 is not None else "-"
        return (
            f"[serve] jobs={s['jobs_finished']}/{s['jobs_submitted']}"
            f" failed={s['jobs_failed']}"
            f" queue={s['queue_depth']} backlog={s['pool_backlog']}"
            f" shards={s['shards_executed']}"
            f" steals={s['shard_steals']} retries={s['shard_retries']}"
            f" ttfr_p50={ttfr}"
        )

    def trace(self, job_id: str) -> dict:
        """The job's stitched Chrome trace-event JSON (see
        :func:`repro.serve.tracing.stitch_job_trace`)."""
        job = self._job(job_id)
        with job.lock:
            return stitch_job_trace(job)

    # -- scheduler hook ----------------------------------------------------------

    def _tenant(self, tenant: str) -> dict:
        """The per-tenant accumulator; caller holds ``self._lock``."""
        data = self._tenant_stats.get(tenant)
        if data is None:
            data = self._tenant_stats[tenant] = {
                "submitted": 0,
                "finished": 0,
                "failed": 0,
                "ttfrs": [],
                "queue_waits": [],
            }
        return data

    @staticmethod
    def _tenant_summary(data: dict) -> dict:
        return {
            "submitted": data["submitted"],
            "finished": data["finished"],
            "failed": data["failed"],
            "ttfr_p50_seconds": percentile(data["ttfrs"], 0.50),
            "ttfr_p95_seconds": percentile(data["ttfrs"], 0.95),
            "ttfr_p99_seconds": percentile(data["ttfrs"], 0.99),
            "queue_wait_p50_seconds": percentile(data["queue_waits"], 0.50),
            "queue_wait_p99_seconds": percentile(data["queue_waits"], 0.99),
        }

    def _on_finish(self, job: JobRecord) -> None:
        with self._lock:
            self._finished += 1
            if job.state in (FAILED, CANCELLED):
                self._failed += job.state == FAILED
            if job.ttfr_seconds is not None:
                self._ttfrs.append(job.ttfr_seconds)
            tenant = self._tenant(job.tenant)
            tenant["finished"] += 1
            tenant["failed"] += job.state == FAILED
            if job.ttfr_seconds is not None:
                tenant["ttfrs"].append(job.ttfr_seconds)
            if job.dequeued_wall is not None:
                tenant["queue_waits"].append(
                    max(0.0, job.dequeued_wall - job.submitted_wall)
                )
