"""The job write-ahead log: durable service state as one JSONL journal.

PR 4 proved *kill-anywhere* for trace bytes: truncate a log at any byte
and salvage analysis still yields a clean subset.  The WAL extends that
contract to the service tier.  Every job lifecycle transition is
appended — before the transition is acknowledged — as one CRC-guarded
JSON line (the same append-atomic grammar as the durable trace format's
``regions.jsonl``), so a restarted :class:`~repro.serve.service.Service`
can replay the log, re-enqueue every unfinished job, and skip every
shard whose checkpoint already landed.

Record grammar (all records carry ``v``, ``ts``, ``kind``, ``job``)::

    submitted  job tenant trace integrity trace_id deadline_s?
    planned    job shards pairs tokens[]
    shard-done job shard token races pairs
    merged     job races
    finalized  job state races quarantined?

The torn-tail property is inherited from the line grammar: a crash mid
``append`` leaves at most one partial line, which the salvage parse
drops — the corresponding transition was never acknowledged, so replay
simply redoes it.  Replay is idempotent by construction: ``shard-done``
records name content-hashed checkpoint tokens, and re-running a
checkpointed shard is a load, not a recompute.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..sword.traceformat import journal_line, parse_journal

__all__ = [
    "WAL_VERSION",
    "WAL_KINDS",
    "WAL_NAME",
    "JobWal",
    "NULL_WAL",
    "JobReplay",
    "WalReplay",
    "replay_wal",
]

#: Bump when the record grammar changes incompatibly.
WAL_VERSION = 1

#: Every kind the grammar defines, in lifecycle order.
WAL_KINDS = ("submitted", "planned", "shard-done", "merged", "finalized")

#: The journal file name under the service state directory.
WAL_NAME = "wal.jsonl"


class JobWal:
    """Append-only, CRC-guarded job journal (one writer per service).

    ``append`` is the durability point: the line is written and flushed
    (fsync'd when ``fsync=True``) *before* the caller proceeds, so every
    acknowledged transition is replayable.  Writes are serialized under
    a lock — scheduler and pool callbacks append concurrently.
    """

    enabled = True

    def __init__(self, path: str | os.PathLike, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        self.appended = 0

    def append(self, kind: str, job: str, **fields) -> dict:
        """Durably append one record; returns the payload written."""
        if kind not in WAL_KINDS:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        payload = {"v": WAL_VERSION, "ts": time.time(), "kind": kind, "job": job}
        payload.update((k, v) for k, v in fields.items() if v is not None)
        line = journal_line(payload)
        with self._lock:
            self._fh.write(line)
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self.appended += 1
        return payload

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JobWal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _NullWal:
    """The disabled WAL: ``append`` is a no-op (service has no state dir)."""

    enabled = False
    appended = 0

    def append(self, kind: str, job: str, **fields) -> dict:
        return {}

    def close(self) -> None:
        pass


#: Shared disabled WAL, used when the service runs without a state dir.
NULL_WAL = _NullWal()


@dataclass(slots=True)
class JobReplay:
    """One job's state as reconstructed from the WAL."""

    job_id: str
    tenant: str = "default"
    trace_path: str = ""
    integrity: str = "strict"
    trace_id: str = ""
    deadline_s: Optional[float] = None
    #: From the ``planned`` record (None: killed before planning).
    shards_total: Optional[int] = None
    pairs_total: int = 0
    #: Checkpoint tokens in shard order, from the ``planned`` record.
    tokens: list[str] = field(default_factory=list)
    #: shard index -> checkpoint token, from ``shard-done`` records.
    shards_done: dict[int, str] = field(default_factory=dict)
    merged: bool = False
    #: Terminal state from the ``finalized`` record (None: unfinished).
    final_state: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.final_state is not None

    def to_json(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "trace": self.trace_path,
            "integrity": self.integrity,
            "trace_id": self.trace_id,
            "shards_total": self.shards_total,
            "shards_done": sorted(self.shards_done),
            "final_state": self.final_state,
        }


@dataclass(slots=True)
class WalReplay:
    """The whole log digested: every job keyed by id, in submit order."""

    jobs: dict[str, JobReplay] = field(default_factory=dict)
    records: int = 0
    #: Records whose job was never ``submitted`` in this log (a prefix
    #: truncated away) — counted, never fatal.
    orphaned: int = 0

    @property
    def unfinished(self) -> list[JobReplay]:
        """Jobs to resume, in original submission order."""
        return [j for j in self.jobs.values() if not j.finished]

    def max_seq(self) -> int:
        """Largest ``job-%06d`` sequence number seen (0 when none parse)."""
        best = 0
        for job_id in self.jobs:
            head, _, tail = job_id.rpartition("-")
            if head == "job" and tail.isdigit():
                best = max(best, int(tail))
        return best


def replay_wal(path: str | os.PathLike) -> WalReplay:
    """Digest one WAL file (salvage parse: a torn tail line is dropped).

    Records of an unknown future ``v`` are skipped — a downgraded
    service must not misread them — and records for jobs with no
    ``submitted`` line are counted as orphans.
    """
    replay = WalReplay()
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return replay
    for record in parse_journal(text, salvage=True):
        if record.get("v", 0) > WAL_VERSION:
            continue
        kind = record.get("kind")
        job_id = record.get("job")
        if kind not in WAL_KINDS or not isinstance(job_id, str):
            continue
        replay.records += 1
        if kind == "submitted":
            replay.jobs[job_id] = JobReplay(
                job_id=job_id,
                tenant=record.get("tenant", "default"),
                trace_path=record.get("trace", ""),
                integrity=record.get("integrity", "strict"),
                trace_id=record.get("trace_id", ""),
                deadline_s=record.get("deadline_s"),
            )
            continue
        job = replay.jobs.get(job_id)
        if job is None:
            replay.orphaned += 1
            continue
        if kind == "planned":
            job.shards_total = record.get("shards")
            job.pairs_total = record.get("pairs", 0)
            tokens = record.get("tokens")
            if isinstance(tokens, list):
                job.tokens = [str(t) for t in tokens]
        elif kind == "shard-done":
            shard = record.get("shard")
            if isinstance(shard, int):
                job.shards_done[shard] = str(record.get("token", ""))
        elif kind == "merged":
            job.merged = True
        elif kind == "finalized":
            job.final_state = record.get("state")
    return replay
