"""Configuration of the fleet-scale analysis service."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..offline.options import AnalysisOptions


@dataclass(slots=True)
class TenantQuota:
    """Admission limits applied per tenant id.

    ``max_pending`` bounds jobs admitted but not yet finished (queued or
    running); ``max_pending_bytes`` bounds the summed trace-log bytes of
    those jobs (None: unbounded).  Both are checked at submission time —
    a rejected submission costs the tenant nothing.  ``deadline_s``
    bounds each admitted job's submission-to-terminal wall time (None:
    unbounded): an expired job stops dispatching shards and fails with
    a :class:`~repro.serve.errors.JobDeadlineError` cause, so one
    pathological trace cannot hold a tenant's quota slot forever.
    """

    max_pending: int = 4
    max_pending_bytes: Optional[int] = None
    deadline_s: Optional[float] = None

    def validate(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.max_pending_bytes is not None and self.max_pending_bytes < 1:
            raise ValueError("max_pending_bytes must be >= 1 or None")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 or None")


@dataclass(slots=True)
class ServeConfig:
    """Every knob of the service tier.

    ``workers`` sizes the shard pool; ``use_processes`` selects process
    workers (real parallelism, the production setting) or in-process
    thread workers (cheap, deterministic — what the unit tests use).
    ``shard_pairs`` is the scheduling grain: each job's concurrent-pair
    plan is cut into shards of at most this many pairs, and more shards
    than workers is what gives the work stealing room to balance load.
    ``cache_dir`` roots the *shared cross-job* result cache; None lets
    the service own a temporary one for its lifetime.
    """

    workers: int = 2
    use_processes: bool = True
    queue_capacity: int = 16
    quota: TenantQuota = field(default_factory=TenantQuota)
    shard_pairs: int = 32
    #: Shared content-hashed tree/verdict cache across all jobs and
    #: tenants (identical shards are computed once fleet-wide).
    result_cache: bool = True
    cache_dir: Optional[str] = None
    #: Transient shard I/O failures get this many extra attempts.
    shard_retries: int = 2
    shard_backoff_seconds: float = 0.01
    #: Full-jitter seed for retry backoff (None: deterministic doubling;
    #: any int: seeded uniform draws — reproducible *and* de-herded).
    shard_backoff_jitter_seed: Optional[int] = None
    #: Durable-recovery root: the job WAL, the shard checkpoint store,
    #: and (by default) the result cache live here.  None runs the
    #: service memory-only — a restart forgets every job.
    state_dir: Optional[str] = None
    #: fsync every WAL append (pay a disk flush per record for
    #: power-loss durability; the default survives process kills only).
    wal_fsync: bool = False
    #: Per-shard execution deadline (None: unbounded).  Process workers
    #: are killed and recycled past it; thread workers check after the
    #: fact.
    shard_timeout_s: Optional[float] = None
    #: A shard whose process worker crashed/timed out this many times is
    #: given up on (quarantined or failed, per ``quarantine``).
    max_shard_crashes: int = 2
    #: Poison shards degrade the job (partial result + report) instead
    #: of failing it; False restores fail-whole-job semantics.
    quarantine: bool = True
    #: Where per-job stitched Chrome traces (and, for failed jobs, the
    #: journal slice) are written; None disables the artifacts.  Only
    #: effective when the service runs with a live bundle — tracing a
    #: null-obs service records nothing to stitch.
    trace_dir: Optional[str] = None
    #: Baseline analysis options applied to every job (fastpath knobs,
    #: chunking); per-job integrity mode is set at submission.
    options: AnalysisOptions = field(default_factory=AnalysisOptions)

    def shared_cache_dir(self) -> Optional[str]:
        """The cross-job cache root, or None when result caching is off."""
        return self.cache_dir if self.result_cache else None

    def wal_path(self) -> Optional[Path]:
        """Where the job WAL lives, or None when the service is stateless."""
        if self.state_dir is None:
            return None
        from .wal import WAL_NAME  # deferred: keep config import-light

        return Path(self.state_dir) / WAL_NAME

    def checkpoint_root(self) -> Optional[str]:
        """Where shard checkpoints live, or None when stateless."""
        if self.state_dir is None:
            return None
        return os.path.join(self.state_dir, "checkpoints")

    def validate(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.shard_pairs < 1:
            raise ValueError("shard_pairs must be >= 1")
        if self.shard_retries < 0:
            raise ValueError("shard_retries must be >= 0")
        if self.shard_timeout_s is not None and self.shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be > 0 or None")
        if self.max_shard_crashes < 1:
            raise ValueError("max_shard_crashes must be >= 1")
        self.quota.validate()
        self.options.validate()
