"""Configuration of the fleet-scale analysis service."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..offline.options import AnalysisOptions


@dataclass(slots=True)
class TenantQuota:
    """Admission limits applied per tenant id.

    ``max_pending`` bounds jobs admitted but not yet finished (queued or
    running); ``max_pending_bytes`` bounds the summed trace-log bytes of
    those jobs (None: unbounded).  Both are checked at submission time —
    a rejected submission costs the tenant nothing.
    """

    max_pending: int = 4
    max_pending_bytes: Optional[int] = None

    def validate(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.max_pending_bytes is not None and self.max_pending_bytes < 1:
            raise ValueError("max_pending_bytes must be >= 1 or None")


@dataclass(slots=True)
class ServeConfig:
    """Every knob of the service tier.

    ``workers`` sizes the shard pool; ``use_processes`` selects process
    workers (real parallelism, the production setting) or in-process
    thread workers (cheap, deterministic — what the unit tests use).
    ``shard_pairs`` is the scheduling grain: each job's concurrent-pair
    plan is cut into shards of at most this many pairs, and more shards
    than workers is what gives the work stealing room to balance load.
    ``cache_dir`` roots the *shared cross-job* result cache; None lets
    the service own a temporary one for its lifetime.
    """

    workers: int = 2
    use_processes: bool = True
    queue_capacity: int = 16
    quota: TenantQuota = field(default_factory=TenantQuota)
    shard_pairs: int = 32
    #: Shared content-hashed tree/verdict cache across all jobs and
    #: tenants (identical shards are computed once fleet-wide).
    result_cache: bool = True
    cache_dir: Optional[str] = None
    #: Transient shard I/O failures get this many extra attempts.
    shard_retries: int = 2
    shard_backoff_seconds: float = 0.01
    #: Where per-job stitched Chrome traces (and, for failed jobs, the
    #: journal slice) are written; None disables the artifacts.  Only
    #: effective when the service runs with a live bundle — tracing a
    #: null-obs service records nothing to stitch.
    trace_dir: Optional[str] = None
    #: Baseline analysis options applied to every job (fastpath knobs,
    #: chunking); per-job integrity mode is set at submission.
    options: AnalysisOptions = field(default_factory=AnalysisOptions)

    def shared_cache_dir(self) -> Optional[str]:
        """The cross-job cache root, or None when result caching is off."""
        return self.cache_dir if self.result_cache else None

    def validate(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.shard_pairs < 1:
            raise ValueError("shard_pairs must be >= 1")
        if self.shard_retries < 0:
            raise ValueError("shard_retries must be >= 0")
        self.quota.validate()
        self.options.validate()
