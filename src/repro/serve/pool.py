"""The shard worker pool with work stealing.

``workers`` logical workers each own a deque of shard tasks.  New work is
dealt round-robin; a worker drains its own deque from the front and, when
empty, *steals from the back* of the longest other deque — the classic
stealing discipline: owners take their oldest (locality-warm) work,
thieves take the newest (least likely to share tree locality with what
the owner is about to run), and load imbalance self-corrects without a
central rebalancer.

Execution is either in-process (thread workers — deterministic, cheap,
what the unit tests use) or shipped to a ``ProcessPoolExecutor`` slot
(real parallelism for production shards; each logical worker keeps at
most one process task in flight, so stealing decisions always act on
the true remaining backlog).

Transient I/O failures during shard execution retry under the service's
one :class:`~repro.serve.retry.RetryPolicy`; anything that still fails
is reported to the task's callback, never raised on a pool thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import Instrumentation, SECONDS_BUCKETS, get_obs
from .retry import RetryPolicy
from .shards import ShardSpec
from .workers import ShardOutcome, run_shard


@dataclass(slots=True)
class ShardTask:
    """One queued shard plus its completion plumbing.

    ``on_done(outcome, error)`` is called exactly once — with an
    outcome, or with the error that exhausted the retry policy, or with
    ``(None, None)`` when the task was skipped because ``cancelled()``
    turned true before execution.
    """

    spec: ShardSpec
    on_done: Callable[[Optional[ShardOutcome], Optional[BaseException]], None]
    cancelled: Callable[[], bool] = field(default=lambda: False)
    #: Wall-clock attempt records appended by the pool (one per
    #: execution attempt, with ``error`` on failures) — the scheduler
    #: turns these into retry/backoff spans on the stitched trace.
    events: list = field(default_factory=list)


class WorkStealingPool:
    """Fixed set of logical workers over deques with back-steals."""

    def __init__(
        self,
        workers: int,
        *,
        use_processes: bool = True,
        retry: RetryPolicy | None = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.workers = max(1, workers)
        self.use_processes = use_processes
        self.retry = retry or RetryPolicy(retries=0)
        self.obs = obs or get_obs()
        self._deques: list[deque[ShardTask]] = [
            deque() for _ in range(self.workers)
        ]
        self._cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False
        self._rr = 0
        self.executed = 0
        self.skipped = 0
        self.steals = 0
        self.retries = 0
        registry = self.obs.registry
        self._m_executed = registry.counter(
            "serve.shards_executed", "shards run to completion"
        )
        self._m_steals = registry.counter(
            "serve.shard_steals", "shards taken from another worker's deque"
        )
        self._m_retries = registry.counter(
            "serve.shard_retries", "shard attempts retried after transient I/O"
        )
        self._m_seconds = registry.histogram(
            "serve.shard_seconds", "per-shard wall time",
            buckets=SECONDS_BUCKETS,
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "WorkStealingPool":
        if self._threads:
            return self
        if self.use_processes:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(wid,),
                name=f"serve-worker-{wid}",
                daemon=True,
            )
            for wid in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def close(self, wait: bool = True) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if wait:
            for thread in self._threads:
                thread.join()
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
            self._executor = None

    @property
    def backlog(self) -> int:
        with self._cv:
            return sum(len(d) for d in self._deques)

    # -- submission --------------------------------------------------------------

    def submit(self, task: ShardTask) -> None:
        """Deal one shard to the next worker (round-robin)."""
        with self._cv:
            self._deques[self._rr % self.workers].append(task)
            self._rr += 1
            self._cv.notify_all()

    # -- the worker loop ---------------------------------------------------------

    def _take(self, wid: int) -> Optional[ShardTask]:
        """Own work from the front, else steal from the longest back."""
        own = self._deques[wid]
        if own:
            return own.popleft()
        victim = max(
            (d for i, d in enumerate(self._deques) if i != wid),
            key=len,
            default=None,
        )
        if victim:
            self.steals += 1
            self._m_steals.inc()
            task = victim.pop()
            self._journal("shard-steal", task, thief=wid)
            return task
        return None

    def _journal(self, kind: str, task: ShardTask, **fields) -> None:
        """Record one pool lifecycle event with the shard's context.

        Unit tests drive the pool with bare stand-in specs, so the
        correlation fields are read defensively.
        """
        spec = task.spec
        self.obs.journal.record(
            kind,
            job=getattr(spec, "job_id", None),
            shard=getattr(spec, "index", None),
            tenant=getattr(spec, "tenant", None) or None,
            trace_id=getattr(spec, "trace_id", None) or None,
            **fields,
        )

    def _execute(self, spec: ShardSpec) -> ShardOutcome:
        if self._executor is not None:
            return self._executor.submit(run_shard, spec).result()
        return run_shard(spec)

    def _attempt(self, task: ShardTask) -> ShardOutcome:
        """One execution attempt, recorded on the task's event list."""
        record = {"kind": "attempt", "start": time.time()}
        task.events.append(record)
        try:
            outcome = self._execute(task.spec)
        except BaseException as exc:
            record["end"] = time.time()
            record["error"] = f"{type(exc).__name__}: {exc}"
            raise
        record["end"] = time.time()
        return outcome

    def _count_retry(self, task: ShardTask) -> None:
        self.retries += 1
        self._m_retries.inc()
        self._journal("shard-retry", task, attempts=len(task.events))

    def _worker_loop(self, wid: int) -> None:
        while True:
            with self._cv:
                task = self._take(wid)
                if task is None:
                    if self._closed:
                        return
                    self._cv.wait(timeout=0.05)
                    continue
            if task.cancelled():
                self.skipped += 1
                self._journal("shard-skip", task)
                task.on_done(None, None)
                continue
            self._journal("shard-start", task, worker=wid)
            t0 = time.perf_counter()
            try:
                outcome = self.retry.run(
                    lambda: self._attempt(task),
                    on_retry=lambda: self._count_retry(task),
                )
            except BaseException as exc:  # report, never unwind the pool
                self._journal("shard-error", task, error=str(exc))
                task.on_done(None, exc)
                continue
            self.executed += 1
            self._m_executed.inc()
            elapsed = time.perf_counter() - t0
            self._m_seconds.observe(elapsed)
            tenant = getattr(task.spec, "tenant", "")
            if tenant:
                self.obs.registry.histogram(
                    "serve.shard_seconds", "per-shard wall time",
                    buckets=SECONDS_BUCKETS, labels={"tenant": tenant},
                ).observe(
                    elapsed,
                    exemplar=getattr(task.spec, "trace_id", "") or None,
                )
            task.on_done(outcome, None)
