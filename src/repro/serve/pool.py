"""The shard worker pool with work stealing and liveness enforcement.

``workers`` logical workers each own a deque of shard tasks.  New work is
dealt round-robin; a worker drains its own deque from the front and, when
empty, *steals from the back* of the longest other deque — the classic
stealing discipline: owners take their oldest (locality-warm) work,
thieves take the newest (least likely to share tree locality with what
the owner is about to run), and load imbalance self-corrects without a
central rebalancer.

Execution is either in-process (thread workers — deterministic, cheap,
what the unit tests use) or shipped to a ``ProcessPoolExecutor`` slot
(real parallelism for production shards; each logical worker keeps at
most one process task in flight, so stealing decisions always act on
the true remaining backlog).

Transient I/O failures during shard execution retry under the service's
one :class:`~repro.serve.retry.RetryPolicy`; anything that still fails
is reported to the task's callback, never raised on a pool thread.

Liveness is enforced at two levels.  Per shard, a ``timeout_s`` deadline
(from the spec, falling back to the pool default) bounds execution:
process workers are polled against it and a stuck worker is declared
timed out, its executor recycled so the slot is reclaimed; thread
workers check cooperatively after the fact (they cannot be interrupted,
but the deterministic test substrate still sees the contract fire).
Pool-wide, a supervisor thread watches in-flight shards and the process
executor's health: a crashed worker (SIGKILL, OOM — surfacing as a
broken executor) gets its shard *requeued* up to ``max_shard_crashes``
attempts before the error is reported for quarantine, and a broken idle
executor is recycled proactively so the next shard finds a live pool.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..obs import Instrumentation, SECONDS_BUCKETS, get_obs
from .errors import PoolClosedError, ShardTimeoutError, WorkerCrashError
from .retry import RetryPolicy
from .shards import ShardSpec
from .workers import ShardOutcome, run_shard

#: How often (seconds) the supervisor and the process-result poll wake.
_LIVENESS_TICK = 0.05


@dataclass(slots=True)
class ShardTask:
    """One queued shard plus its completion plumbing.

    ``on_done(outcome, error)`` is called exactly once — with an
    outcome, or with the error that exhausted the retry policy, or with
    ``(None, None)`` when the task was skipped because ``cancelled()``
    turned true before execution.
    """

    spec: ShardSpec
    on_done: Callable[[Optional[ShardOutcome], Optional[BaseException]], None]
    cancelled: Callable[[], bool] = field(default=lambda: False)
    #: Wall-clock attempt records appended by the pool (one per
    #: execution attempt, with ``error`` on failures) — the scheduler
    #: turns these into retry/backoff spans on the stitched trace.
    events: list = field(default_factory=list)
    #: Process-worker crash/timeout count for this shard; at
    #: ``max_shard_crashes`` the error is reported instead of requeued.
    crashes: int = 0
    #: Set by the supervisor when this task's deadline passed while a
    #: process worker held it (the poll loop turns it into an error).
    timed_out: bool = False


class WorkStealingPool:
    """Fixed set of logical workers over deques with back-steals."""

    def __init__(
        self,
        workers: int,
        *,
        use_processes: bool = True,
        retry: RetryPolicy | None = None,
        obs: Optional[Instrumentation] = None,
        default_timeout_s: Optional[float] = None,
        max_shard_crashes: int = 2,
    ) -> None:
        self.workers = max(1, workers)
        self.use_processes = use_processes
        self.retry = retry or RetryPolicy(retries=0)
        self.obs = obs or get_obs()
        self.default_timeout_s = default_timeout_s
        self.max_shard_crashes = max(1, max_shard_crashes)
        self._deques: list[deque[ShardTask]] = [
            deque() for _ in range(self.workers)
        ]
        self._cv = threading.Condition()
        self._threads: list[threading.Thread] = []
        self._supervisor: Optional[threading.Thread] = None
        self._executor: ProcessPoolExecutor | None = None
        self._exec_lock = threading.Lock()
        #: In-flight process shards: id(task) -> (task, deadline | None).
        self._inflight: dict[int, tuple[ShardTask, Optional[float]]] = {}
        self._closed = False
        self._rr = 0
        self.executed = 0
        self.skipped = 0
        self.steals = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.requeues = 0
        registry = self.obs.registry
        self._m_executed = registry.counter(
            "serve.shards_executed", "shards run to completion"
        )
        self._m_steals = registry.counter(
            "serve.shard_steals", "shards taken from another worker's deque"
        )
        self._m_retries = registry.counter(
            "serve.shard_retries", "shard attempts retried after transient I/O"
        )
        self._m_timeouts = registry.counter(
            "serve.shard_timeouts", "shards that exceeded their timeout_s"
        )
        self._m_crashes = registry.counter(
            "serve.worker_crashes", "process workers lost mid-shard"
        )
        self._m_seconds = registry.histogram(
            "serve.shard_seconds", "per-shard wall time",
            buckets=SECONDS_BUCKETS,
        )
        self._m_backoff = registry.histogram(
            "serve.retry_backoff_seconds",
            "backoff delay chosen before each shard retry",
            buckets=SECONDS_BUCKETS,
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "WorkStealingPool":
        if self._threads:
            return self
        if self.use_processes:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(wid,),
                name=f"serve-worker-{wid}",
                daemon=True,
            )
            for wid in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        self._supervisor = threading.Thread(
            target=self._supervise, name="serve-supervisor", daemon=True
        )
        self._supervisor.start()
        return self

    def close(self, wait: bool = True) -> None:
        """Shut the pool down.

        ``wait=True`` (graceful) drains every queued shard first.
        ``wait=False`` cancels queued shards instead: each pending
        task's callback fires with :class:`~repro.serve.errors.
        PoolClosedError`, so its job reaches a terminal failed state
        with a cause — never stranded in RUNNING forever.
        """
        dropped: list[ShardTask] = []
        with self._cv:
            self._closed = True
            if not wait:
                for dq in self._deques:
                    dropped.extend(dq)
                    dq.clear()
            self._cv.notify_all()
        for task in dropped:
            self._journal("shard-cancel", task, reason="pool-closed")
            try:
                task.on_done(None, PoolClosedError())
            except Exception:
                pass  # a callback bug must not abort the shutdown
        if wait:
            for thread in self._threads:
                thread.join()
            if self._supervisor is not None:
                self._supervisor.join()
                self._supervisor = None
        with self._exec_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)

    @property
    def backlog(self) -> int:
        with self._cv:
            return sum(len(d) for d in self._deques)

    # -- submission --------------------------------------------------------------

    def submit(self, task: ShardTask) -> None:
        """Deal one shard to the next worker (round-robin)."""
        with self._cv:
            self._deques[self._rr % self.workers].append(task)
            self._rr += 1
            self._cv.notify_all()

    # -- the worker loop ---------------------------------------------------------

    def _take(self, wid: int) -> Optional[ShardTask]:
        """Own work from the front, else steal from the longest back."""
        own = self._deques[wid]
        if own:
            return own.popleft()
        victim = max(
            (d for i, d in enumerate(self._deques) if i != wid),
            key=len,
            default=None,
        )
        if victim:
            self.steals += 1
            self._m_steals.inc()
            task = victim.pop()
            self._journal("shard-steal", task, thief=wid)
            return task
        return None

    def _journal(self, kind: str, task: ShardTask, **fields) -> None:
        """Record one pool lifecycle event with the shard's context.

        Unit tests drive the pool with bare stand-in specs, so the
        correlation fields are read defensively.
        """
        spec = task.spec
        self.obs.journal.record(
            kind,
            job=getattr(spec, "job_id", None),
            shard=getattr(spec, "index", None),
            tenant=getattr(spec, "tenant", None) or None,
            trace_id=getattr(spec, "trace_id", None) or None,
            **fields,
        )

    # -- execution ---------------------------------------------------------------

    def _timeout_for(self, spec) -> Optional[float]:
        return getattr(spec, "timeout_s", None) or self.default_timeout_s

    def _execute(self, spec: ShardSpec) -> ShardOutcome:
        """Run one shard in this thread (the unit-test/chaos seam)."""
        return run_shard(spec)

    def _recycle_executor(self, reason: str) -> None:
        """Replace the process executor (a worker is stuck or dead).

        The stale executor's worker processes are terminated so a stuck
        shard stops burning a core; its other in-flight futures surface
        as broken-executor errors and requeue via the crash path.
        """
        with self._exec_lock:
            stale = self._executor
            if stale is None or self._closed:
                return
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self.obs.journal.record("pool-recycle", reason=reason)
        for proc in list(getattr(stale, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        stale.shutdown(wait=False)

    def _run_process(self, task: ShardTask) -> ShardOutcome:
        """Ship one shard to a process slot, polled against its deadline."""
        spec = task.spec
        timeout = self._timeout_for(spec)
        with self._exec_lock:
            executor = self._executor
        if executor is None:
            raise WorkerCrashError(
                getattr(spec, "index", None), "executor is gone"
            )
        try:
            future = executor.submit(run_shard, spec)
        except (BrokenExecutor, RuntimeError) as exc:
            self._recycle_executor(f"submit failed: {exc}")
            raise WorkerCrashError(
                getattr(spec, "index", None), f"{type(exc).__name__}: {exc}"
            ) from exc
        deadline = (
            time.perf_counter() + timeout if timeout is not None else None
        )
        key = id(task)
        with self._cv:
            self._inflight[key] = (task, deadline)
        try:
            while True:
                try:
                    return future.result(timeout=_LIVENESS_TICK)
                except FuturesTimeoutError:
                    overdue = task.timed_out or (
                        deadline is not None
                        and time.perf_counter() > deadline
                    )
                    if overdue:
                        self._recycle_executor(
                            f"shard {getattr(spec, 'index', '?')} stuck"
                        )
                        raise ShardTimeoutError(
                            getattr(spec, "index", None), timeout or 0.0
                        ) from None
                except BrokenExecutor as exc:
                    self._recycle_executor(f"worker died: {exc}")
                    raise WorkerCrashError(
                        getattr(spec, "index", None),
                        f"{type(exc).__name__}: {exc}",
                    ) from exc
        finally:
            with self._cv:
                self._inflight.pop(key, None)
                task.timed_out = False

    def _run_task(self, task: ShardTask) -> ShardOutcome:
        """One execution of the task's spec, deadline enforced."""
        with self._exec_lock:
            has_executor = self._executor is not None
        if has_executor:
            return self._run_process(task)
        t0 = time.perf_counter()
        outcome = self._execute(task.spec)
        timeout = self._timeout_for(task.spec)
        if timeout is not None and time.perf_counter() - t0 > timeout:
            # Thread workers cannot be interrupted; the deadline still
            # fires (cooperatively, after the fact) so the contract is
            # identical across both substrates.
            raise ShardTimeoutError(
                getattr(task.spec, "index", None), timeout
            )
        return outcome

    def _attempt(self, task: ShardTask) -> ShardOutcome:
        """One execution attempt, recorded on the task's event list."""
        record = {"kind": "attempt", "start": time.time()}
        task.events.append(record)
        try:
            outcome = self._run_task(task)
        except BaseException as exc:
            record["end"] = time.time()
            record["error"] = f"{type(exc).__name__}: {exc}"
            raise
        record["end"] = time.time()
        return outcome

    def _count_retry(self, task: ShardTask) -> None:
        self.retries += 1
        self._m_retries.inc()
        self._journal("shard-retry", task, attempts=len(task.events))

    def _requeue_crashed(self, task: ShardTask, exc: BaseException) -> bool:
        """Give a crashed/timed-out shard another life, bounded.

        Returns True when the shard was requeued; False when its crash
        budget is spent and the error must be reported (the scheduler
        then quarantines the shard rather than failing the job).
        """
        task.crashes += 1
        if isinstance(exc, ShardTimeoutError):
            self.timeouts += 1
            self._m_timeouts.inc()
        else:
            self.crashes += 1
            self._m_crashes.inc()
        if task.crashes >= self.max_shard_crashes or self._closed:
            return False
        self.requeues += 1
        self._journal(
            "shard-requeue", task,
            crashes=task.crashes, error=f"{type(exc).__name__}: {exc}",
        )
        self.submit(task)
        return True

    def _worker_loop(self, wid: int) -> None:
        while True:
            with self._cv:
                task = self._take(wid)
                if task is None:
                    if self._closed:
                        return
                    self._cv.wait(timeout=_LIVENESS_TICK)
                    continue
            if task.cancelled():
                self.skipped += 1
                self._journal("shard-skip", task)
                task.on_done(None, None)
                continue
            self._journal("shard-start", task, worker=wid)
            t0 = time.perf_counter()
            try:
                outcome = self.retry.run(
                    lambda: self._attempt(task),
                    on_retry=lambda: self._count_retry(task),
                    on_backoff=self._m_backoff.observe,
                )
            except (ShardTimeoutError, WorkerCrashError) as exc:
                if self._requeue_crashed(task, exc):
                    continue
                self._journal("shard-error", task, error=str(exc))
                task.on_done(None, exc)
                continue
            except BaseException as exc:  # report, never unwind the pool
                self._journal("shard-error", task, error=str(exc))
                task.on_done(None, exc)
                continue
            self.executed += 1
            self._m_executed.inc()
            elapsed = time.perf_counter() - t0
            self._m_seconds.observe(elapsed)
            tenant = getattr(task.spec, "tenant", "")
            if tenant:
                self.obs.registry.histogram(
                    "serve.shard_seconds", "per-shard wall time",
                    buckets=SECONDS_BUCKETS, labels={"tenant": tenant},
                ).observe(
                    elapsed,
                    exemplar=getattr(task.spec, "trace_id", "") or None,
                )
            task.on_done(outcome, None)

    # -- the supervisor ----------------------------------------------------------

    def _supervise(self) -> None:
        """Liveness monitor: flag overdue in-flight shards, heal the pool.

        The per-task poll loop is the primary deadline enforcement; the
        supervisor backs it up by marking overdue tasks (so a poll that
        raced the deadline sees the verdict) and proactively recycles a
        broken idle executor so the *next* shard finds a live pool
        instead of discovering the corpse itself.
        """
        while True:
            with self._cv:
                if self._closed:
                    return
                now = time.perf_counter()
                for key, (task, deadline) in list(self._inflight.items()):
                    if deadline is not None and now > deadline:
                        task.timed_out = True
            with self._exec_lock:
                executor = self._executor
            if executor is not None and getattr(executor, "_broken", False):
                self._recycle_executor("broken executor detected idle")
            time.sleep(_LIVENESS_TICK)
