"""repro.serve: the fleet-scale analysis service.

A long-lived tier that accepts many concurrent trace-directory
submissions (per-tenant quotas, bounded-queue backpressure), decomposes
each job into (thread, barrier-interval) pair shards, balances them
across a work-stealing worker pool, and merges shard outcomes into race
sets byte-identical to single-shot :func:`repro.api.analyze`.  A shared
content-hashed result cache makes identical shards — across jobs and
tenants — compute once fleet-wide.

Entry points: :class:`Service` (also exported as ``repro.api.Service``)
and the ``repro serve`` CLI.
"""

from .checkpoint import ShardCheckpointStore, shard_token, trace_token
from .config import ServeConfig, TenantQuota
from .errors import (
    BackpressureError,
    JobDeadlineError,
    JobFailedError,
    JobNotFoundError,
    PoolClosedError,
    QuotaExceededError,
    ServeError,
    ServiceClosedError,
    ShardTimeoutError,
    WorkerCrashError,
)
from .job import (
    ACTIVE_STATES,
    CANCELLED,
    DEGRADED,
    DONE,
    FAILED,
    PLANNING,
    QUEUED,
    RESULT_STATES,
    RUNNING,
    TERMINAL_STATES,
    DegradationReport,
    JobRecord,
    QuarantinedShard,
    TriageInfo,
    triage_trace,
)
from .pool import ShardTask, WorkStealingPool
from .queue import IngestionQueue
from .retry import RetryPolicy
from .scheduler import JobScheduler
from .service import Service
from .shards import ShardPlan, ShardSpec, plan_shards
from .tracing import ObsConfig, TraceContext, stitch_job_trace, write_job_trace
from .wal import JobWal, WalReplay, replay_wal
from .workers import ShardOutcome, merge_stats, run_shard

__all__ = [
    "ACTIVE_STATES",
    "BackpressureError",
    "CANCELLED",
    "DEGRADED",
    "DONE",
    "DegradationReport",
    "FAILED",
    "IngestionQueue",
    "JobDeadlineError",
    "JobFailedError",
    "JobNotFoundError",
    "JobRecord",
    "JobScheduler",
    "JobWal",
    "ObsConfig",
    "PLANNING",
    "PoolClosedError",
    "QUEUED",
    "QuarantinedShard",
    "QuotaExceededError",
    "RESULT_STATES",
    "RUNNING",
    "RetryPolicy",
    "Service",
    "ServeConfig",
    "ServeError",
    "ServiceClosedError",
    "ShardCheckpointStore",
    "ShardOutcome",
    "ShardPlan",
    "ShardSpec",
    "ShardTask",
    "ShardTimeoutError",
    "TERMINAL_STATES",
    "TenantQuota",
    "TraceContext",
    "TriageInfo",
    "WalReplay",
    "WorkStealingPool",
    "WorkerCrashError",
    "merge_stats",
    "plan_shards",
    "replay_wal",
    "run_shard",
    "shard_token",
    "stitch_job_trace",
    "trace_token",
    "triage_trace",
    "write_job_trace",
]
