"""repro.serve: the fleet-scale analysis service.

A long-lived tier that accepts many concurrent trace-directory
submissions (per-tenant quotas, bounded-queue backpressure), decomposes
each job into (thread, barrier-interval) pair shards, balances them
across a work-stealing worker pool, and merges shard outcomes into race
sets byte-identical to single-shot :func:`repro.api.analyze`.  A shared
content-hashed result cache makes identical shards — across jobs and
tenants — compute once fleet-wide.

Entry points: :class:`Service` (also exported as ``repro.api.Service``)
and the ``repro serve`` CLI.
"""

from .config import ServeConfig, TenantQuota
from .errors import (
    BackpressureError,
    JobFailedError,
    JobNotFoundError,
    QuotaExceededError,
    ServeError,
    ServiceClosedError,
)
from .job import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    PLANNING,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    JobRecord,
    TriageInfo,
    triage_trace,
)
from .pool import ShardTask, WorkStealingPool
from .queue import IngestionQueue
from .retry import RetryPolicy
from .scheduler import JobScheduler
from .service import Service
from .shards import ShardPlan, ShardSpec, plan_shards
from .tracing import ObsConfig, TraceContext, stitch_job_trace, write_job_trace
from .workers import ShardOutcome, merge_stats, run_shard

__all__ = [
    "ACTIVE_STATES",
    "BackpressureError",
    "CANCELLED",
    "DONE",
    "FAILED",
    "IngestionQueue",
    "JobFailedError",
    "JobNotFoundError",
    "JobRecord",
    "JobScheduler",
    "ObsConfig",
    "PLANNING",
    "QUEUED",
    "QuotaExceededError",
    "RUNNING",
    "RetryPolicy",
    "Service",
    "ServeConfig",
    "ServeError",
    "ServiceClosedError",
    "ShardOutcome",
    "ShardPlan",
    "ShardSpec",
    "ShardTask",
    "TERMINAL_STATES",
    "TenantQuota",
    "TraceContext",
    "TriageInfo",
    "WorkStealingPool",
    "merge_stats",
    "plan_shards",
    "run_shard",
    "stitch_job_trace",
    "triage_trace",
    "write_job_trace",
]
