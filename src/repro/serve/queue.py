"""The async ingestion queue: admission control for trace submissions.

Submissions are non-blocking by default: ``submit`` either admits the
job immediately or raises an admission error the caller can act on —
:class:`~repro.serve.errors.QuotaExceededError` when the tenant is over
its in-flight budget, :class:`~repro.serve.errors.BackpressureError`
when the queue itself is full.  ``block=True`` turns backpressure into
flow control instead: the submitter waits (bounded by ``timeout``) for
a slot, which is how a well-behaved producer paces itself to the
service's drain rate.

Quota accounting covers the job's whole life, not just its time in the
queue: a tenant's budget is released only when its job reaches a
terminal state, so a tenant cannot sidestep its quota by keeping the
scheduler busy.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from ..obs import Instrumentation, get_obs
from .config import ServeConfig
from .errors import BackpressureError, QuotaExceededError, ServiceClosedError
from .job import JobRecord


class IngestionQueue:
    """Bounded FIFO of admitted jobs with per-tenant quotas."""

    def __init__(
        self, config: ServeConfig, obs: Optional[Instrumentation] = None
    ) -> None:
        self.config = config
        self.obs = obs or get_obs()
        self._items: deque[JobRecord] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        #: Per-tenant in-flight accounting (admitted, not yet terminal).
        self._pending_jobs: dict[str, int] = {}
        self._pending_bytes: dict[str, int] = {}
        registry = self.obs.registry
        self._m_depth = registry.gauge(
            "serve.queue_depth", "jobs admitted and not yet scheduled"
        )
        self._m_admitted = registry.counter(
            "serve.jobs_admitted", "jobs accepted by the ingestion queue"
        )
        self._m_quota = registry.counter(
            "serve.quota_rejections", "submissions rejected by tenant quota"
        )
        self._m_backpressure = registry.counter(
            "serve.backpressure_rejections",
            "submissions rejected by a full queue",
        )

    # -- admission ---------------------------------------------------------------

    def _journal(self, kind: str, job: JobRecord, **fields) -> None:
        self.obs.journal.record(
            kind,
            job=job.job_id,
            tenant=job.tenant,
            trace_id=job.trace.trace_id if job.trace else None,
            **fields,
        )

    def _reject_quota(self, job: JobRecord, reason: str) -> None:
        self._m_quota.inc()
        self.obs.registry.counter(
            "serve.quota_rejections",
            "submissions rejected by tenant quota",
            labels={"tenant": job.tenant},
        ).inc()
        self._journal("quota-reject", job, reason=reason)
        raise QuotaExceededError(job.tenant, reason)

    def _check_quota(self, job: JobRecord) -> None:
        quota = self.config.quota
        pending = self._pending_jobs.get(job.tenant, 0)
        if pending >= quota.max_pending:
            self._reject_quota(
                job,
                f"{pending} job(s) already in flight "
                f"(max_pending={quota.max_pending})",
            )
        if quota.max_pending_bytes is not None:
            in_flight = self._pending_bytes.get(job.tenant, 0)
            if in_flight + job.triage.log_bytes > quota.max_pending_bytes:
                self._reject_quota(
                    job,
                    f"{in_flight + job.triage.log_bytes} trace bytes would be "
                    f"in flight (max_pending_bytes={quota.max_pending_bytes})",
                )

    def submit(
        self,
        job: JobRecord,
        *,
        block: bool = False,
        timeout: Optional[float] = None,
    ) -> None:
        """Admit one job or raise an admission error.

        Quota is checked before capacity so an over-quota tenant cannot
        occupy a scarce queue slot, and — with ``block=True`` — cannot
        stall waiting for one either.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            self._check_quota(job)
            blocked = False
            while len(self._items) >= self.config.queue_capacity:
                if not block:
                    self._reject_backpressure(job)
                if not blocked:
                    blocked = True
                    self.obs.registry.counter(
                        "serve.backpressure_blocks",
                        "blocking submissions paced by a full queue",
                        labels={"tenant": job.tenant},
                    ).inc()
                    self._journal(
                        "backpressure-block", job, depth=len(self._items)
                    )
                if not self._not_full.wait(timeout=timeout):
                    self._reject_backpressure(job)
                if self._closed:
                    raise ServiceClosedError("service is shut down")
                # Capacity freed while waiting — re-check quota too: other
                # submissions for this tenant may have been admitted.
                self._check_quota(job)
            self._pending_jobs[job.tenant] = (
                self._pending_jobs.get(job.tenant, 0) + 1
            )
            self._pending_bytes[job.tenant] = (
                self._pending_bytes.get(job.tenant, 0) + job.triage.log_bytes
            )
            self._items.append(job)
            self._m_admitted.inc()
            self._m_depth.set(len(self._items))
            self._journal(
                "job-submit",
                job,
                bytes=job.triage.log_bytes,
                threads=job.triage.threads,
                integrity=job.integrity,
                depth=len(self._items),
            )
            self._not_empty.notify()

    def readmit(self, job: JobRecord) -> None:
        """Re-enqueue a WAL-replayed job, bypassing quota and capacity.

        A resumed job was *already admitted* before the crash — its
        tenant paid the quota then, and rejecting it now would turn a
        restart into data loss.  Pending accounting is still charged so
        the eventual :meth:`release` balances, and capacity is allowed
        to overshoot transiently (the scheduler drains in FIFO order, so
        resumed jobs go first anyway).
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            self._pending_jobs[job.tenant] = (
                self._pending_jobs.get(job.tenant, 0) + 1
            )
            self._pending_bytes[job.tenant] = (
                self._pending_bytes.get(job.tenant, 0) + job.triage.log_bytes
            )
            self._items.append(job)
            self._m_admitted.inc()
            self._m_depth.set(len(self._items))
            self._journal("job-readmit", job, depth=len(self._items))
            self._not_empty.notify()

    def _reject_backpressure(self, job: JobRecord) -> None:
        self._m_backpressure.inc()
        self.obs.registry.counter(
            "serve.backpressure_rejections",
            "submissions rejected by a full queue",
            labels={"tenant": job.tenant},
        ).inc()
        self._journal("backpressure-reject", job, depth=len(self._items))
        raise BackpressureError(len(self._items), self.config.queue_capacity)

    # -- draining ----------------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Pop the next job (FIFO), or None on timeout/closed-and-empty."""
        with self._lock:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            job = self._items.popleft()
            self._m_depth.set(len(self._items))
            self._not_full.notify()
            return job

    def release(self, job: JobRecord) -> None:
        """Return a terminal job's quota to its tenant."""
        with self._lock:
            count = self._pending_jobs.get(job.tenant, 0)
            if count <= 1:
                self._pending_jobs.pop(job.tenant, None)
            else:
                self._pending_jobs[job.tenant] = count - 1
            in_flight = self._pending_bytes.get(job.tenant, 0)
            remaining = in_flight - job.triage.log_bytes
            if remaining <= 0:
                self._pending_bytes.pop(job.tenant, None)
            else:
                self._pending_bytes[job.tenant] = remaining

    # -- introspection / lifecycle ------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def pending(self, tenant: str) -> int:
        """Jobs this tenant has in flight (queued or running)."""
        with self._lock:
            return self._pending_jobs.get(tenant, 0)

    def close(self) -> None:
        """Stop admissions and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
