"""Job decomposition: one trace into picklable pair shards.

A *shard* is the scheduling unit of the service: a contiguous run of the
job's concurrent (thread, barrier-interval) pair plan, small enough that
many shards exist per job (work stealing needs slack) and large enough
that one shard amortises its worker's tree builds — consecutive pairs in
the plan share intervals, so contiguous slicing keeps each worker's tree
cache hot.

Salvage jobs are planned as a single ``salvage`` shard: recovering a
damaged trace threads an integrity ledger through planning and pair
analysis, which is exactly the serial driver's job — the scheduler just
runs it on a worker like any other shard.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..offline.intervals import IntervalInventory, IntervalKey
from ..offline.options import AnalysisOptions, FastPathOptions, PruningOptions
from ..sword.reader import TraceDir
from .tracing import ObsConfig

#: Shard kinds.
PAIRS = "pairs"
SALVAGE = "salvage"


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """One worker task (picklable: travels to process workers)."""

    job_id: str
    index: int
    trace_path: str
    kind: str = PAIRS
    pair_keys: tuple[tuple[IntervalKey, IntervalKey], ...] = ()
    chunk_events: int = 65536
    use_ilp_crosscheck: bool = False
    fastpath: Optional[FastPathOptions] = None
    pruning: Optional[PruningOptions] = None
    #: Correlation context: which tenant's job and which distributed
    #: trace this shard belongs to (empty outside the service).
    tenant: str = ""
    trace_id: str = ""
    #: Recipe for the worker-side instrumentation bundle; None runs the
    #: shard with the worker process's ambient (usually null) bundle.
    obs_config: Optional[ObsConfig] = None
    #: Durable-recovery context: where completed outcomes checkpoint
    #: (None disables) and this shard's content-hash address there.
    checkpoint_dir: Optional[str] = None
    checkpoint_token: str = ""
    #: Per-shard execution deadline (None: unbounded).  Enforced for
    #: process workers by the pool; thread workers check cooperatively.
    timeout_s: Optional[float] = None

    @property
    def npairs(self) -> int:
        return len(self.pair_keys)


@dataclass(slots=True)
class ShardPlan:
    """A job's decomposition plus the planner-side statistics."""

    shards: list[ShardSpec] = field(default_factory=list)
    intervals: int = 0
    concurrent_pairs: int = 0


def shard_fastpath(
    base: FastPathOptions, cache_dir: Optional[str]
) -> FastPathOptions:
    """The fast-path options shards run with.

    With a shared ``cache_dir`` the persistent result cache is forced on:
    tokens are content hashes of the trace bytes, so identical shards —
    across jobs, tenants, and resubmissions — are computed once
    fleet-wide and replayed everywhere else.
    """
    if cache_dir is None:
        return base
    return FastPathOptions(
        enabled=base.enabled,
        digest_pruning=base.digest_pruning,
        solver_memo=base.solver_memo,
        solver_memo_capacity=base.solver_memo_capacity,
        result_cache=base.enabled,
        cache_dir=cache_dir,
    )


def plan_shards(
    trace: TraceDir | str | os.PathLike,
    *,
    job_id: str = "",
    options: AnalysisOptions | None = None,
    shard_pairs: int = 32,
    min_shards: int = 1,
    cache_dir: Optional[str] = None,
    tenant: str = "",
    trace_id: str = "",
    obs_config: Optional[ObsConfig] = None,
    checkpoint_dir: Optional[str] = None,
    shard_timeout_s: Optional[float] = None,
) -> ShardPlan:
    """Plan one job: enumerate concurrent pairs, slice into shards.

    ``shard_pairs`` caps the shard grain; ``min_shards`` shrinks the
    grain further when the plan would otherwise produce fewer shards
    than the caller has workers to feed (small jobs still fan out).

    ``integrity="salvage"`` (on ``options``) short-circuits to a single
    salvage shard — the worker runs the full serial salvage analysis.

    With ``checkpoint_dir`` set, every shard is stamped with its
    content-hash checkpoint token (the trace digest is computed once
    here, at plan time, and folded into each shard's address).
    """
    options = options or AnalysisOptions()
    if not isinstance(trace, TraceDir):
        trace = TraceDir(trace, integrity=options.integrity)
    fastpath = shard_fastpath(options.fastpath, cache_dir)
    trace_digest = ""
    if checkpoint_dir is not None:
        from .checkpoint import trace_token  # deferred: import cycle

        trace_digest = trace_token(trace.path)

    def _token(kind: str, pair_keys: tuple) -> str:
        if not trace_digest:
            return ""
        from .checkpoint import shard_token  # deferred: import cycle

        return shard_token(
            trace_digest,
            kind=kind,
            pair_keys=pair_keys,
            chunk_events=options.chunk_events,
            use_ilp_crosscheck=options.use_ilp_crosscheck,
        )

    plan = ShardPlan()
    if options.integrity == "salvage":
        plan.shards.append(
            ShardSpec(
                job_id=job_id,
                index=0,
                trace_path=str(trace.path),
                kind=SALVAGE,
                chunk_events=options.chunk_events,
                use_ilp_crosscheck=options.use_ilp_crosscheck,
                fastpath=fastpath,
                pruning=options.pruning,
                tenant=tenant,
                trace_id=trace_id,
                obs_config=obs_config,
                checkpoint_dir=checkpoint_dir,
                checkpoint_token=_token(SALVAGE, ()),
                timeout_s=shard_timeout_s,
            )
        )
        return plan
    inventory = IntervalInventory(trace)
    pairs = [(a.key, b.key) for a, b in inventory.concurrent_pairs()]
    plan.intervals = len(inventory)
    plan.concurrent_pairs = len(pairs)
    if pairs and min_shards > 1:
        shard_pairs = min(shard_pairs, -(-len(pairs) // min_shards))
    shard_pairs = max(1, shard_pairs)
    for index, lo in enumerate(range(0, len(pairs), shard_pairs)):
        pair_keys = tuple(pairs[lo : lo + shard_pairs])
        plan.shards.append(
            ShardSpec(
                job_id=job_id,
                index=index,
                trace_path=str(trace.path),
                kind=PAIRS,
                pair_keys=pair_keys,
                chunk_events=options.chunk_events,
                use_ilp_crosscheck=options.use_ilp_crosscheck,
                fastpath=fastpath,
                pruning=options.pruning,
                tenant=tenant,
                trace_id=trace_id,
                obs_config=obs_config,
                checkpoint_dir=checkpoint_dir,
                checkpoint_token=_token(PAIRS, pair_keys),
                timeout_s=shard_timeout_s,
            )
        )
    return plan
