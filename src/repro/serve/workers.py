"""Shard execution: the one worker entry point for every parallel path.

:func:`run_shard` is what both the service pool and the distributed
post-mortem analyzer (:class:`~repro.offline.parallel.
DistributedOfflineAnalyzer`) execute — there is exactly one way a pair
shard is analyzed, so the byte-identical-races guarantee is proven once.

Workers are stateless: each opens the trace directory itself (like a
remote node reading a shared filesystem), drives the shared
:class:`~repro.offline.engine.AnalysisEngine` over its pair keys, and
ships races back as plain tuples — no tree or engine pickling.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..obs import NULL_OBS, Instrumentation, set_obs
from ..offline.engine import AnalysisEngine, AnalysisStats
from ..offline.intervals import IntervalInventory
from ..offline.options import AnalysisOptions, FastPathOptions, PruningOptions
from ..offline.report import RaceReport, RaceSet
from ..sword.reader import TraceDir
from .shards import SALVAGE, ShardSpec


@dataclass(slots=True)
class ShardOutcome:
    """What one shard sends back to the coordinator (picklable)."""

    job_id: str
    index: int
    #: RaceReport field tuples (frozen dataclass of ints/bools).
    rows: list[tuple] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)
    #: Salvage shards attach the IntegrityReport JSON; pair shards None.
    integrity: Optional[dict] = None
    #: Persistent-cache hits this shard served (tree + pair verdicts) —
    #: the coordinator's cross-job reuse signal.
    cache_hits: int = 0
    #: Spans this shard recorded, as wall-clock dicts
    #: (:meth:`repro.obs.tracer.Span.to_json`) — empty with tracing off.
    spans: list[dict] = field(default_factory=list)
    #: The shard's metric delta: its private registry's snapshot.
    metrics: dict = field(default_factory=dict)
    #: Which OS process executed the shard (its trace-viewer row).
    worker_pid: int = 0
    #: True when the outcome was loaded from a durable shard checkpoint
    #: instead of executed (resume and retry count these, never re-run).
    from_checkpoint: bool = False

    def reports(self) -> Iterable[RaceReport]:
        return (RaceReport(*row) for row in self.rows)


def race_rows(races: RaceSet) -> list[tuple]:
    """Flatten a race set to picklable field tuples."""
    return [
        (
            r.pc_a, r.pc_b, r.address, r.write_a, r.write_b,
            r.gid_a, r.gid_b, r.pid_a, r.pid_b, r.bid_a, r.bid_b,
        )
        for r in races
    ]


def shard_options(spec: ShardSpec) -> AnalysisOptions:
    return AnalysisOptions(
        chunk_events=spec.chunk_events,
        use_ilp_crosscheck=spec.use_ilp_crosscheck,
        fastpath=spec.fastpath or FastPathOptions(),
        pruning=spec.pruning or PruningOptions(),
        integrity="salvage" if spec.kind == SALVAGE else "strict",
    )


def run_shard(spec: ShardSpec) -> ShardOutcome:
    """Execute one shard in the current process.

    When the spec carries an :class:`~repro.serve.tracing.ObsConfig`,
    the shard runs under a *fresh* bundle built right here — process
    workers inherit a null ambient bundle from fork/spawn, so without
    this the engine's spans and counters would vanish into ``NULL_OBS``.
    Because the bundle is private to the shard, its snapshot is the
    shard's metric delta, and its spans ship home on the outcome with
    wall-clock timestamps for stitching.

    When the spec names a checkpoint, a stored outcome is returned
    without executing anything — this is how a *retried* shard whose
    previous attempt completed (but whose result was lost with a dead
    worker or a killed coordinator) resumes instead of recomputing.
    """
    store = _checkpoint_store(spec)
    if store is not None:
        cached = store.load(
            spec.checkpoint_token, job_id=spec.job_id, index=spec.index
        )
        if cached is not None:
            return cached
    if spec.obs_config is None:
        outcome = _execute_shard(spec, NULL_OBS)
        if store is not None:
            store.store(spec.checkpoint_token, outcome)
        return outcome
    bundle = spec.obs_config.build()
    if multiprocessing.parent_process() is not None:
        # Own process: installing the bundle as ambient is safe (one
        # shard at a time here) and catches deep get_obs() call sites.
        previous = set_obs(bundle)
        try:
            outcome = _execute_shard(spec, bundle)
        finally:
            set_obs(previous)
    else:
        # In-process thread worker: the ambient bundle is shared process
        # state, and concurrent install/restore from sibling shards
        # races — the explicit obs threading covers the engine instead.
        outcome = _execute_shard(spec, bundle)
    wall_epoch = getattr(bundle.tracer, "wall_epoch", 0.0)
    outcome.spans = [s.to_json(wall_epoch) for s in bundle.tracer.spans]
    outcome.metrics = bundle.registry.snapshot()
    if store is not None:
        store.store(spec.checkpoint_token, outcome)
    return outcome


def _checkpoint_store(spec: ShardSpec):
    """The spec's checkpoint store, or None when checkpointing is off."""
    if spec.checkpoint_dir is None or not spec.checkpoint_token:
        return None
    from .checkpoint import ShardCheckpointStore  # deferred: import cycle

    return ShardCheckpointStore(spec.checkpoint_dir)


def _execute_shard(spec: ShardSpec, obs: Instrumentation) -> ShardOutcome:
    """The shard body proper, under an explicit bundle.

    Pair shards compare their assigned interval pairs through an engine
    whose readers are closed via the context manager even on error
    (long-lived pools must not leak per-thread log descriptors).
    Salvage shards run the full serial salvage analysis and carry the
    integrity ledger home.
    """
    options = shard_options(spec)
    options.obs = obs
    outcome = ShardOutcome(
        job_id=spec.job_id, index=spec.index, worker_pid=os.getpid()
    )
    with obs.tracer.span(
        "shard", "serve",
        job=spec.job_id, shard=spec.index, kind=spec.kind, pairs=spec.npairs,
    ):
        if spec.kind == SALVAGE:
            from ..offline.analyzer import SerialOfflineAnalyzer

            analysis = SerialOfflineAnalyzer(
                TraceDir(spec.trace_path, integrity="salvage"),
                obs=obs,
                options=options,
            ).analyze()
            outcome.rows = race_rows(analysis.races)
            outcome.stats = analysis.stats
            outcome.integrity = (
                analysis.integrity.to_json()
                if analysis.integrity is not None
                else None
            )
            outcome.cache_hits = (
                analysis.stats.pair_cache_hits
                + analysis.stats.tree_cache_disk_hits
            )
            return outcome
        trace = TraceDir(spec.trace_path)
        races = RaceSet()
        with AnalysisEngine(trace, obs=obs, options=options) as engine:
            with obs.tracer.span("scan", "serve", shard=spec.index):
                inventory = IntervalInventory(trace)
            for key_a, key_b in spec.pair_keys:
                engine.analyze_pair(
                    inventory.intervals[key_a],
                    inventory.intervals[key_b],
                    races,
                )
            outcome.stats = engine.stats
    outcome.rows = race_rows(races)
    outcome.cache_hits = (
        outcome.stats.pair_cache_hits + outcome.stats.tree_cache_disk_hits
    )
    return outcome


def merge_stats(total: AnalysisStats, part: AnalysisStats) -> None:
    """Fold one shard's stats into the job total.

    Counters sum; phase seconds take the max (shards run concurrently,
    so the max models the critical path, exactly as the distributed
    analyzer always reported them).
    """
    total.trees_built += part.trees_built
    total.bulk_tree_builds += part.bulk_tree_builds
    total.tree_nodes += part.tree_nodes
    total.events_read += part.events_read
    total.overlap_candidates += part.overlap_candidates
    total.ilp_solves += part.ilp_solves
    total.pairs_pruned += part.pairs_pruned
    total.solver_memo_hits += part.solver_memo_hits
    total.solver_memo_misses += part.solver_memo_misses
    total.pair_cache_hits += part.pair_cache_hits
    total.tree_cache_disk_hits += part.tree_cache_disk_hits
    total.bytes_inflated += part.bytes_inflated
    total.frames_pruned += part.frames_pruned
    total.frames_inflated += part.frames_inflated
    total.site_pairs_skipped += part.site_pairs_skipped
    # Trace-level constants from the verdict table, not per-shard work:
    # every shard that saw the table reports the same totals, so max
    # (not sum) keeps the merged figure honest.
    total.sites_proven_free = max(
        total.sites_proven_free, part.sites_proven_free
    )
    total.sites_definite_race = max(
        total.sites_definite_race, part.sites_definite_race
    )
    total.events_elided = max(total.events_elided, part.events_elided)
    total.build_seconds = max(total.build_seconds, part.build_seconds)
    total.compare_seconds = max(total.compare_seconds, part.compare_seconds)
