"""Shard execution: the one worker entry point for every parallel path.

:func:`run_shard` is what both the service pool and the distributed
post-mortem analyzer (:class:`~repro.offline.parallel.
DistributedOfflineAnalyzer`) execute — there is exactly one way a pair
shard is analyzed, so the byte-identical-races guarantee is proven once.

Workers are stateless: each opens the trace directory itself (like a
remote node reading a shared filesystem), drives the shared
:class:`~repro.offline.engine.AnalysisEngine` over its pair keys, and
ships races back as plain tuples — no tree or engine pickling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..offline.engine import AnalysisEngine, AnalysisStats
from ..offline.intervals import IntervalInventory
from ..offline.options import AnalysisOptions, FastPathOptions
from ..offline.report import RaceReport, RaceSet
from ..sword.reader import TraceDir
from .shards import SALVAGE, ShardSpec


@dataclass(slots=True)
class ShardOutcome:
    """What one shard sends back to the coordinator (picklable)."""

    job_id: str
    index: int
    #: RaceReport field tuples (frozen dataclass of ints/bools).
    rows: list[tuple] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)
    #: Salvage shards attach the IntegrityReport JSON; pair shards None.
    integrity: Optional[dict] = None
    #: Persistent-cache hits this shard served (tree + pair verdicts) —
    #: the coordinator's cross-job reuse signal.
    cache_hits: int = 0

    def reports(self) -> Iterable[RaceReport]:
        return (RaceReport(*row) for row in self.rows)


def race_rows(races: RaceSet) -> list[tuple]:
    """Flatten a race set to picklable field tuples."""
    return [
        (
            r.pc_a, r.pc_b, r.address, r.write_a, r.write_b,
            r.gid_a, r.gid_b, r.pid_a, r.pid_b, r.bid_a, r.bid_b,
        )
        for r in races
    ]


def shard_options(spec: ShardSpec) -> AnalysisOptions:
    return AnalysisOptions(
        chunk_events=spec.chunk_events,
        use_ilp_crosscheck=spec.use_ilp_crosscheck,
        fastpath=spec.fastpath or FastPathOptions(),
        integrity="salvage" if spec.kind == SALVAGE else "strict",
    )


def run_shard(spec: ShardSpec) -> ShardOutcome:
    """Execute one shard in the current process.

    Pair shards compare their assigned interval pairs through an engine
    whose readers are closed via the context manager even on error
    (long-lived pools must not leak per-thread log descriptors).
    Salvage shards run the full serial salvage analysis and carry the
    integrity ledger home.
    """
    options = shard_options(spec)
    outcome = ShardOutcome(job_id=spec.job_id, index=spec.index)
    if spec.kind == SALVAGE:
        from ..offline.analyzer import SerialOfflineAnalyzer

        analysis = SerialOfflineAnalyzer(
            TraceDir(spec.trace_path, integrity="salvage"), options=options
        ).analyze()
        outcome.rows = race_rows(analysis.races)
        outcome.stats = analysis.stats
        outcome.integrity = (
            analysis.integrity.to_json()
            if analysis.integrity is not None
            else None
        )
        outcome.cache_hits = (
            analysis.stats.pair_cache_hits + analysis.stats.tree_cache_disk_hits
        )
        return outcome
    trace = TraceDir(spec.trace_path)
    races = RaceSet()
    with AnalysisEngine(trace, options=options) as engine:
        inventory = IntervalInventory(trace)
        for key_a, key_b in spec.pair_keys:
            engine.analyze_pair(
                inventory.intervals[key_a], inventory.intervals[key_b], races
            )
        outcome.stats = engine.stats
    outcome.rows = race_rows(races)
    outcome.cache_hits = (
        outcome.stats.pair_cache_hits + outcome.stats.tree_cache_disk_hits
    )
    return outcome


def merge_stats(total: AnalysisStats, part: AnalysisStats) -> None:
    """Fold one shard's stats into the job total.

    Counters sum; phase seconds take the max (shards run concurrently,
    so the max models the critical path, exactly as the distributed
    analyzer always reported them).
    """
    total.trees_built += part.trees_built
    total.bulk_tree_builds += part.bulk_tree_builds
    total.tree_nodes += part.tree_nodes
    total.events_read += part.events_read
    total.overlap_candidates += part.overlap_candidates
    total.ilp_solves += part.ilp_solves
    total.pairs_pruned += part.pairs_pruned
    total.solver_memo_hits += part.solver_memo_hits
    total.solver_memo_misses += part.solver_memo_misses
    total.pair_cache_hits += part.pair_cache_hits
    total.tree_cache_disk_hits += part.tree_cache_disk_hits
    total.build_seconds = max(total.build_seconds, part.build_seconds)
    total.compare_seconds = max(total.compare_seconds, part.compare_seconds)
