"""``python -m repro serve`` — boot the analysis service under load.

The subcommand is a self-driving harness: it builds a mixed trace corpus
(clean, delta-filtered, and one damaged trace submitted in salvage
mode), boots a :class:`~repro.serve.service.Service`, drives a sustained
multi-tenant submission burst through it, and reports the fleet
numbers — jobs/sec, p50/p99 time-to-first-race, cross-job cache hits,
and a parity check against single-shot ``repro analyze``.

Exit status follows :mod:`repro.common.exitcodes` with the service
twist: the burst *expects* races (the corpus contains racy workloads),
so ``1`` means races were found and everything held, ``0`` means the
corpus was race-free, and ``2`` means the service itself misbehaved —
parity broke, or every job failed.  A burst where any job completed
DEGRADED (poison shards quarantined, partial pair coverage) also exits
``1``, with ``exit_meaning: "degraded"`` in the JSON payload — the
result set is real but incomplete, which a CI gate must not read as
clean.

``--state-dir`` makes the service durable: the job WAL and shard
checkpoints live there, and a later run pointed at the same directory
resumes unfinished jobs before accepting the new burst (``--watch``
shows ``resumed=``/``resuming=`` while replayed jobs drain).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from .. import obs as obslib
from ..common.exitcodes import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_RACES,
    exit_meaning,
)
from ..obs import prometheus_text, write_json
from .config import ServeConfig, TenantQuota
from .loadgen import LoadReport, generate_and_run


def add_serve_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=2, help="shard pool width")
    p.add_argument(
        "--in-process",
        action="store_true",
        help="thread workers instead of a process pool (fast boot)",
    )
    p.add_argument("--queue-capacity", type=int, default=16)
    p.add_argument(
        "--shard-pairs",
        type=int,
        default=32,
        help="max concurrent pairs per shard (the scheduling grain)",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=8,
        help="per-tenant in-flight job quota",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="shared cross-job result cache root (default: a temp dir)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared result cache",
    )
    p.add_argument(
        "--state-dir",
        metavar="DIR",
        help="durable state root (job WAL + shard checkpoints); a restart "
        "pointed here resumes unfinished jobs",
    )
    p.add_argument(
        "--submissions", type=int, default=24, help="jobs in the load burst"
    )
    p.add_argument(
        "--tenants", type=int, default=3, help="tenant ids to spread load over"
    )
    p.add_argument(
        "--threads", type=int, default=4, help="threads per collected trace"
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        help="collect the trace corpus here (default: a temp dir)",
    )
    p.add_argument(
        "--keep-corpus",
        action="store_true",
        help="leave the collected corpus on disk",
    )
    p.add_argument(
        "--no-parity",
        action="store_true",
        help="skip the byte-identical check against single-shot analyze",
    )
    p.add_argument(
        "--report",
        metavar="PATH",
        help="write the load report JSON artifact",
    )
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--watch",
        type=float,
        metavar="SECONDS",
        help="print a live service stats line at this interval",
    )
    p.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="write one stitched Chrome trace JSON per job here "
        "(plus the journal slice for failed jobs)",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the service metrics snapshot (JSON; .prom for "
        "Prometheus text exposition)",
    )
    p.add_argument(
        "--journal",
        metavar="PATH",
        help="dump the service flight-recorder ring as JSONL after the burst",
    )


def serve_exit_code(report: LoadReport) -> int:
    if not report.parity_ok:
        return EXIT_ERROR
    if report.jobs_finished == 0 and report.jobs_submitted > 0:
        return EXIT_ERROR
    if report.jobs_degraded:
        # Partial coverage is never "clean", even if no race surfaced.
        return EXIT_RACES
    races = sum(f.get("races", 0) for f in report.flavors.values())
    return EXIT_RACES if races else EXIT_CLEAN


def serve_exit_verdict(report: LoadReport) -> tuple[int, str]:
    """Exit code plus its meaning string for the JSON payload.

    Degradation dominates the meaning: an exit-1 burst with quarantined
    shards reports ``"degraded"`` rather than ``"races found"`` so a
    consumer can tell "found races over full coverage" from "finished
    with holes".
    """
    code = serve_exit_code(report)
    if code == EXIT_RACES and report.jobs_degraded:
        return code, "degraded"
    return code, exit_meaning(code)


def _fmt_seconds(value) -> str:
    return f"{value * 1000:.1f}ms" if value is not None else "-"


def _serve_obs(args: argparse.Namespace) -> "obslib.Instrumentation":
    """A live bundle when any observability output was requested."""
    if (
        args.json
        or args.metrics
        or args.trace_dir
        or args.journal
        or args.watch is not None
    ):
        return obslib.live()
    return obslib.get_obs()


def run_serve_command(args: argparse.Namespace) -> int:
    obs = _serve_obs(args)
    config = ServeConfig(
        workers=args.workers,
        use_processes=not args.in_process,
        queue_capacity=args.queue_capacity,
        quota=TenantQuota(max_pending=args.max_pending),
        shard_pairs=args.shard_pairs,
        result_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        state_dir=args.state_dir,
        trace_dir=args.trace_dir,
    )
    report = generate_and_run(
        config=config,
        submissions=args.submissions,
        tenants=args.tenants,
        nthreads=args.threads,
        corpus_dir=args.corpus,
        keep_corpus=args.keep_corpus,
        check_parity=not args.no_parity,
        obs=obs,
        watch_every=None if args.json else args.watch,
    )
    if args.metrics:
        if args.metrics.endswith(".prom"):
            Path(args.metrics).write_text(
                prometheus_text(obs.registry.snapshot())
            )
        else:
            write_json(obs.registry.snapshot(), args.metrics)
    if args.journal:
        Path(args.journal).write_text(obs.journal.to_jsonl())
    code, meaning = serve_exit_verdict(report)
    payload = report.to_json()
    payload["exit_code"] = code
    payload["exit_meaning"] = meaning
    if args.report:
        Path(args.report).write_text(
            json.dumps(payload, indent=2, sort_keys=True)
        )
    if args.json:
        from .. import api

        payload["schema_version"] = api.JSON_SCHEMA_VERSION
        print(json.dumps(payload, indent=2, sort_keys=True))
        return code
    print(
        f"serve: {report.jobs_finished}/{report.jobs_submitted} jobs in "
        f"{report.elapsed_seconds:.2f}s = {report.jobs_per_second:.1f} jobs/s "
        f"(workers={config.workers}, "
        f"{'processes' if config.use_processes else 'threads'})"
    )
    print(
        f"ttfr: p50={_fmt_seconds(report.ttfr_p50)} "
        f"p99={_fmt_seconds(report.ttfr_p99)} over "
        f"{len(report.ttfr_seconds)} racy job(s)"
    )
    print(
        f"cache: {report.cache_hits} cross-job hit(s); "
        f"steals: {report.shard_steals}; "
        f"rejected: {report.rejected_quota} quota, "
        f"{report.rejected_backpressure} backpressure"
    )
    for flavor, counts in sorted(report.flavors.items()):
        print(
            f"  {flavor}: {counts['finished']} job(s), "
            f"{counts['races']} race report(s)"
        )
    for tenant, slo in sorted(report.service_stats.get("tenants", {}).items()):
        print(
            f"  {tenant}: {slo['finished']}/{slo['submitted']} job(s), "
            f"ttfr p50={_fmt_seconds(slo['ttfr_p50_seconds'])} "
            f"p99={_fmt_seconds(slo['ttfr_p99_seconds'])}, "
            f"queue p50={_fmt_seconds(slo['queue_wait_p50_seconds'])}"
        )
    journal = report.service_stats.get("journal") or {}
    if journal:
        print(
            f"journal: {journal['recorded']} event(s) recorded, "
            f"{journal['retained']} retained, {journal['dropped']} dropped"
        )
    if not args.no_parity:
        verdict = "byte-identical" if report.parity_ok else "MISMATCH"
        print(
            f"parity vs single-shot analyze: {verdict} "
            f"({report.parity_checked} job(s) checked)"
        )
    if report.jobs_degraded:
        print(
            f"degraded jobs: {report.jobs_degraded} "
            f"(quarantined shards; races cover surviving pairs only)"
        )
    resumed = report.service_stats.get("jobs_resumed", 0)
    if resumed:
        print(f"resumed jobs: {resumed} replayed from the WAL")
    if report.jobs_failed:
        print(f"failed jobs: {report.jobs_failed}")
    return code
