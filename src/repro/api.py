"""The supported public API: detect, analyze, watch, and Session.

One facade over the whole pipeline.  Every flow the CLI exposes routes
through here, and the per-mode analyzer classes are implementation
detail (their legacy names — ``OfflineAnalyzer``,
``ParallelOfflineAnalyzer``, ``StreamingAnalyzer`` — still work but emit
:class:`DeprecationWarning`).

Quick tour::

    import repro.api as sword

    # Run a registered workload under a tool and get races + overheads.
    result = sword.detect("c_md", tool="sword", nthreads=8)

    # Post-mortem analysis of an existing trace directory.
    analysis = sword.analyze("/tmp/trace", mode="parallel",
                             options=sword.AnalysisOptions(workers=4))

    # Watch mode: races stream out while the program runs.
    watched = sword.watch(my_workload, nthreads=8,
                          on_race=lambda r: print(r.describe()))

    # Incremental session over a trace you produce yourself.
    with sword.Session(trace_dir) as session:
        tool = SwordTool(SwordConfig(log_dir=str(trace_dir)))
        session.attach(tool)
        ...  # run the program under `tool`
        print(session.result().races.describe_all())

All three analysis modes produce byte-identical race sets, with the
pair-analysis fast path on (the default) or off — see
:class:`~repro.offline.options.FastPathOptions`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from .common.config import NodeConfig, SwordConfig
from .harness.tools import RunResult, driver
from .obs import Instrumentation
from .offline.analyzer import SerialOfflineAnalyzer
from .offline.engine import AnalysisResult
from .offline.options import AnalysisOptions, FastPathOptions, PruningOptions
from .offline.parallel import DistributedOfflineAnalyzer, default_workers
from .offline.report import RaceSet
from .serve import (
    DegradationReport,
    JobWal,
    QuarantinedShard,
    ServeConfig,
    Service,
    TenantQuota,
    replay_wal,
)
from .stream.analyzer import StreamAnalyzer
from .stream.bus import replay_trace
from .stream.watch import WatchResult
from .stream.watch import watch as _watch
from .sword.reader import TraceDir
from .workloads import REGISTRY
from .workloads.base import Workload

__all__ = [
    "JSON_SCHEMA_VERSION",
    "AnalysisOptions",
    "AnalysisResult",
    "DegradationReport",
    "FastPathOptions",
    "JobWal",
    "PruningOptions",
    "QuarantinedShard",
    "RunResult",
    "ServeConfig",
    "Service",
    "Session",
    "TenantQuota",
    "WatchResult",
    "analyze",
    "detect",
    "replay_wal",
    "watch",
]

#: Version of every ``--json`` payload the CLI emits (check/analyze/
#: watch).  Bumped on any breaking change to the payload layout; the
#: schema itself is documented in DESIGN.md.
JSON_SCHEMA_VERSION = 2

ANALYSIS_MODES = ("auto", "serial", "parallel", "streaming")


def _resolve_workload(workload: Union[str, Workload]) -> Workload:
    if isinstance(workload, str):
        return REGISTRY.get(workload)
    return workload


def detect(
    workload: Union[str, Workload],
    *,
    tool: str = "sword",
    nthreads: int = 8,
    seed: int = 0,
    node: Optional[NodeConfig] = None,
    options: Optional[AnalysisOptions] = None,
    sword_config: Optional[SwordConfig] = None,
    obs: Optional[Instrumentation] = None,
    **params,
) -> RunResult:
    """Run one workload under one tool and return races + overheads.

    ``workload`` is a registry name (see ``repro.workloads.REGISTRY``) or
    a :class:`Workload` instance.  ``options`` tunes SWORD's offline
    phase (ignored by the other tools, which have no offline phase), and
    ``sword_config`` its online phase — e.g.
    ``SwordConfig(static_prescreen=False)`` for the ``--no-static``
    escape hatch.  Extra keyword arguments are forwarded to the
    workload's program.
    """
    w = _resolve_workload(workload)
    kwargs = dict(
        nthreads=nthreads,
        seed=seed,
        node=node or NodeConfig(),
        obs=obs,
        **params,
    )
    if tool == "sword":
        kwargs["analysis_options"] = options
        if sword_config is not None:
            kwargs["sword_config"] = sword_config
        if options is not None and options.workers > 1:
            kwargs["mt_workers"] = options.workers
    return driver(tool).run(w, **kwargs)


def analyze(
    trace: Union[str, os.PathLike, TraceDir],
    *,
    mode: str = "auto",
    integrity: str = "strict",
    options: Optional[AnalysisOptions] = None,
    obs: Optional[Instrumentation] = None,
) -> AnalysisResult:
    """Offline-analyze an existing SWORD trace directory.

    Modes: ``serial`` (one process), ``parallel`` (process pool,
    ``options.workers`` wide), ``streaming`` (replay the trace through
    the incremental analyzer — the checkpoint/resume path), or ``auto``
    (parallel when ``options.workers > 1``, serial otherwise).  All
    modes return byte-identical race sets.

    ``integrity="salvage"`` analyses a damaged trace (crashed run,
    corrupted files): every defect truncates or skips instead of
    raising, the result carries an
    :class:`~repro.sword.integrity.IntegrityReport`, and the returned
    race set is a subset of what the undamaged trace would yield.
    Salvage always runs the serial driver.
    """
    if mode not in ANALYSIS_MODES:
        raise ValueError(
            f"unknown analysis mode {mode!r}; expected one of {ANALYSIS_MODES}"
        )
    options = options or AnalysisOptions()
    if integrity != "strict":
        options = options.copy(integrity=integrity)
    if options.integrity == "salvage":
        # Salvage needs the single code path that threads the integrity
        # ledger through planning and pair analysis.
        mode = "serial"
    if not isinstance(trace, TraceDir):
        trace = TraceDir(trace, integrity=options.integrity)
    if mode == "auto":
        mode = "parallel" if options.workers > 1 else "serial"
    if mode == "serial":
        return SerialOfflineAnalyzer(trace, obs=obs, options=options).analyze()
    if mode == "parallel":
        if options.workers <= 1:
            options = options.copy(workers=default_workers())
        return DistributedOfflineAnalyzer(
            trace, obs=obs, options=options
        ).analyze()
    analyzer = StreamAnalyzer(trace.path, options=options, obs=obs)
    replay_trace(trace, analyzer)
    return analyzer.result()


def watch(
    workload: Union[str, Workload],
    *,
    nthreads: int = 8,
    seed: int = 0,
    options: Optional[AnalysisOptions] = None,
    on_race=None,
    obs: Optional[Instrumentation] = None,
    stats_every: Optional[float] = None,
    on_stats=print,
    **params,
) -> WatchResult:
    """Run a workload with the streaming analyzer attached (watch mode).

    ``on_race(report)`` fires the moment each race is confirmed, while
    the program is still executing.  See :func:`repro.stream.watch.watch`
    for the full keyword surface; this facade forwards ``**params``.
    """
    return _watch(
        _resolve_workload(workload),
        nthreads=nthreads,
        seed=seed,
        options=options,
        on_race=on_race,
        obs=obs,
        stats_every=stats_every,
        on_stats=on_stats,
        **params,
    )


class Session:
    """Watch-style incremental analysis over one trace directory.

    Two ways to use it:

    * **live** — create the session, :meth:`attach` it to a
      :class:`~repro.sword.logger.SwordTool` before running the program,
      and read :meth:`result` when done; races stream through
      ``on_race`` as they are confirmed;
    * **replay** — point it at a closed trace directory and call
      :meth:`analyze`; with ``options.checkpoint_path`` set, repeated
      calls resume instead of starting over, and with
      ``options.fastpath.result_cache`` on, unchanged intervals and
      pairs are served from the persistent cache.
    """

    def __init__(
        self,
        trace_dir: Union[str, os.PathLike],
        *,
        options: Optional[AnalysisOptions] = None,
        on_race=None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.trace_dir = Path(trace_dir)
        self.options = options or AnalysisOptions()
        self._analyzer = StreamAnalyzer(
            self.trace_dir,
            options=self.options,
            on_race=on_race,
            obs=obs,
        )

    # -- live use -----------------------------------------------------------------

    def attach(self, tool) -> "Session":
        """Subscribe this session's analyzer to an online tool's bus."""
        tool.subscribe(self._analyzer)
        return self

    @property
    def races(self) -> RaceSet:
        """Races confirmed so far (live view)."""
        return self._analyzer.races

    @property
    def pairs_analyzed(self) -> int:
        return self._analyzer.pairs_analyzed

    def result(self) -> AnalysisResult:
        """Races plus stats accumulated so far (final after the run)."""
        return self._analyzer.result()

    # -- replay use ---------------------------------------------------------------

    def analyze(self) -> AnalysisResult:
        """Replay the (closed) trace through this session's analyzer."""
        replay_trace(TraceDir(self.trace_dir), self._analyzer)
        return self._analyzer.result()

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self._analyzer.engine is not None:
            self._analyzer.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
