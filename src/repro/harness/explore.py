"""Schedule-space exploration (the paper's production-use pattern).

The conclusion (§VI) describes how SWORD is meant to be used: "a user of
SWORD may employ available techniques to systematically explore the
execution-space of their application, and attempt to check for data races
within these [executions]".  This driver implements that loop: run one
workload under a tool across many scheduler seeds, union the per-seed race
sets, and report per-race *detection frequency* — which makes the
schedule-robustness contrast measurable (SWORD's verdicts are
seed-invariant for programs without data-dependent control flow; the
happens-before baseline's are not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..common.config import NodeConfig
from ..offline.report import RaceReport, RaceSet  # noqa: F401 (public API)
from ..workloads.base import Workload
from .tools import driver


@dataclass
class ExplorationResult:
    """Union of detections across a seed sweep."""

    workload: str
    tool: str
    seeds: tuple[int, ...]
    union: RaceSet
    per_seed: dict[int, frozenset] = field(default_factory=dict)
    ooms: list[int] = field(default_factory=list)

    @property
    def race_count(self) -> int:
        return len(self.union)

    def detection_rate(self, key: tuple[int, int]) -> float:
        """Fraction of completed runs that reported this pc pair."""
        completed = [s for s in self.seeds if s not in self.ooms]
        if not completed:
            return 0.0
        hits = sum(1 for s in completed if key in self.per_seed[s])
        return hits / len(completed)

    def stable_races(self) -> list[RaceReport]:
        """Races reported in every completed run."""
        return [r for r in self.union if self.detection_rate(r.key) == 1.0]

    def flaky_races(self) -> list[RaceReport]:
        """Races whose detection depends on the schedule."""
        return [r for r in self.union if 0 < self.detection_rate(r.key) < 1.0]

    def summary(self) -> str:
        lines = [
            f"{self.workload} under {self.tool}: {self.race_count} distinct "
            f"race(s) across {len(self.seeds)} schedules"
            + (f" ({len(self.ooms)} OOM runs)" if self.ooms else "")
        ]
        for race in self.union:
            rate = self.detection_rate(race.key)
            lines.append(f"  [{rate:4.0%}] {race.describe()}")
        return "\n".join(lines)


def explore_schedules(
    workload: Workload,
    tool: str = "sword",
    *,
    seeds: Sequence[int] = tuple(range(8)),
    nthreads: int = 8,
    node: Optional[NodeConfig] = None,
    **params: Any,
) -> ExplorationResult:
    """Run ``workload`` under ``tool`` across ``seeds`` and union the races."""
    result = ExplorationResult(
        workload=workload.name,
        tool=tool,
        seeds=tuple(seeds),
        union=RaceSet(),
    )
    for seed in seeds:
        run = driver(tool).run(
            workload, nthreads=nthreads, seed=seed, node=node, **params
        )
        if run.oom:
            result.ooms.append(seed)
            result.per_seed[seed] = frozenset()
            continue
        result.per_seed[seed] = frozenset(run.race_pairs)
        if run.races is not None:
            result.union.update(run.races)
    return result
