"""One experiment module per paper table/figure (see DESIGN.md §4).

========  ==========================  ==============================
Exp id    Paper artifact              Module
========  ==========================  ==============================
E1        §IV-A DataRaceBench         :mod:`.drb`
E2        Table II                    :mod:`.ompscr_races`
E3        Figure 6                    :mod:`.ompscr_overhead`
E4        Table III                   :mod:`.ompscr_offline`
E5        Table IV                    :mod:`.hpc_races`
E6        Figure 7 / Table V          :mod:`.hpc_overhead`
E7        Figure 8                    :mod:`.amg_scaling`
E8        Figure 1                    :mod:`.hb_masking`
E9        §III-A codec comparison     :mod:`.codec_compare`
E10       §II eviction / Figure 5     :mod:`.examples_demo`
========  ==========================  ==============================
"""

from . import (  # noqa: F401
    amg_scaling,
    codec_compare,
    drb,
    examples_demo,
    hb_masking,
    hpc_overhead,
    hpc_races,
    ompscr_offline,
    ompscr_races,
    ompscr_overhead,
)

__all__ = [
    "amg_scaling",
    "codec_compare",
    "drb",
    "examples_demo",
    "hb_masking",
    "hpc_overhead",
    "hpc_races",
    "ompscr_offline",
    "ompscr_races",
    "ompscr_overhead",
]
