"""E2 — Table II: data races reported in OmpSCR benchmarks.

The paper's Table II compares race counts per tool on OmpSCR; SWORD matches
ARCHER everywhere and finds additional undocumented races in ``c_md``,
``c_testPath``, and ``cpp_qsomp{1,2,5,6}`` (all manually confirmed real).
Race-free benchmarks are included to show the no-false-alarm property.
"""

from __future__ import annotations

from ..tables import Table
from .common import run_detection, suite_workloads

#: Benchmarks the paper names as carrying SWORD-only (undocumented) races.
SWORD_ONLY_BENCHMARKS = (
    "c_md",
    "c_testPath",
    "cpp_qsomp1",
    "cpp_qsomp2",
    "cpp_qsomp5",
    "cpp_qsomp6",
)


def run(nthreads: int = 8, seed: int = 0, include=None) -> Table:
    """Run the OmpSCR suite under all three tool configurations."""
    rows = run_detection(
        suite_workloads("ompscr", include=include),
        tools=("archer", "archer-low", "sword"),
        nthreads=nthreads,
        seed=seed,
    )
    table = Table(
        "E2 / Table II: OmpSCR data races per tool",
        ["benchmark", "documented", "archer", "archer-low", "sword", "new (sword-only)"],
    )
    for row in rows:
        w = row.workload
        archer = row.results["archer"]
        sword = row.results["sword"]
        new = len(sword.race_pairs - archer.race_pairs)
        table.add(
            w.name,
            w.documented_races,
            row.count("archer"),
            row.count("archer-low"),
            row.count("sword"),
            new,
        )
    table.note(
        "paper: SWORD finds every ARCHER race plus new ones in "
        + ", ".join(SWORD_ONLY_BENCHMARKS)
    )
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
