"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ...common.config import NodeConfig
from ...workloads.base import REGISTRY, Workload
from ..tools import RunResult, driver


@dataclass
class DetectionRow:
    """Per-benchmark detection outcome across tools."""

    workload: Workload
    results: dict[str, RunResult] = field(default_factory=dict)

    def count(self, tool: str) -> Any:
        res = self.results.get(tool)
        if res is None:
            return "-"
        if res.oom:
            return "OOM"
        return res.race_count


def run_detection(
    workloads: Iterable[Workload],
    tools: tuple[str, ...] = ("archer", "archer-low", "sword"),
    *,
    nthreads: int = 8,
    seed: int = 0,
    node: Optional[NodeConfig] = None,
    params_for=None,
    **driver_kwargs: Any,
) -> list[DetectionRow]:
    """Run every workload under every tool; collect race counts."""
    rows = []
    for w in workloads:
        row = DetectionRow(workload=w)
        params = dict(params_for(w)) if params_for else {}
        for tool in tools:
            row.results[tool] = driver(tool).run(
                w, nthreads=nthreads, seed=seed, node=node,
                **driver_kwargs, **params,
            )
        rows.append(row)
    return rows


def suite_workloads(suite: str, include=None, exclude=()) -> list[Workload]:
    """Workloads of one suite, optionally filtered by name."""
    selected = [
        w
        for w in REGISTRY.suite(suite)
        if (include is None or w.name in include) and w.name not in exclude
    ]
    if not selected:
        raise ValueError(f"no workloads selected from suite {suite!r}")
    return selected
