"""E10 — the paper's worked examples: §II shadow-cell eviction and the
§III-B interval-tree example (Figure 5).

Two demonstrations:

* **Eviction** (§II): ``a[i] = a[i] + a[0]`` — the master's write record of
  ``a[0]`` is purged from the 4 shadow cells by its own subsequent reads,
  so ARCHER misses the write/read race that SWORD's complete log retains.
* **Interval trees** (Fig. 5): ``a[i] = a[i-1]`` with two threads — build
  the per-thread summarised interval trees, show the overlapping node pair,
  render the paper's ILP constraint system for it, and report the race.
"""

from __future__ import annotations

import shutil
import tempfile
from typing import Sequence

from ...archer.tool import ArcherTool
from ...common.config import RunConfig, SchedulerConfig, SwordConfig
from ...common.sourceloc import pc_of
from ...ilp.model import OverlapSystem
from ...ilp.overlap import constraint_of
from ...itree.builder import TreeBuilder
from ...offline.analyzer import analyze_trace
from ...omp.recording import RecordingTool
from ...omp.runtime import OpenMPRuntime
from ...sword.logger import SwordTool
from ..tables import Table

PC_EVICT_W = pc_of("section2.c", 4, "loop")
PC_EVICT_R = pc_of("section2.c", 4, "loop_read_a0")
PC_FIG5_R = pc_of("figure5.c", 4, "loop")
PC_FIG5_W = pc_of("figure5.c", 4, "loop_store")


def eviction_program(m, n: int = 64):
    """§II: a[i] = a[i] + a[0] — exactly one thread writes a[0]."""
    a = m.alloc_array("a", n, fill=1)

    def body(ctx):
        for i in ctx.for_range(n):
            v0 = ctx.read(a, 0, pc=PC_EVICT_R)
            vi = ctx.read(a, i, pc=pc_of("section2.c", 4, "loop_read_ai"))
            ctx.write(a, i, vi + v0, pc=PC_EVICT_W)

    m.parallel(body)


def fig5_program(m, n: int = 1000):
    """Fig. 5: a[i] = a[i-1] with two threads."""
    a = m.alloc_array("a", n, fill=0)

    def body(ctx):
        for i in ctx.for_range(n - 1):
            v = ctx.read(a, i, pc=PC_FIG5_R)
            ctx.write(a, i + 1, v, pc=PC_FIG5_W)

    m.parallel(body, nthreads=2)


def run_eviction(nthreads: int = 8, seeds: Sequence[int] = (0, 1, 2, 3)) -> Table:
    """ARCHER vs SWORD on the §II eviction example."""
    table = Table(
        "E10a / §II eviction example: a[i] = a[i] + a[0]",
        ["seed", "archer races", "archer evictions", "sword races"],
    )
    for seed in seeds:
        archer = ArcherTool()
        OpenMPRuntime(
            RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
            tool=archer,
        ).run(eviction_program)
        tmp = tempfile.mkdtemp(prefix="evict-")
        try:
            sword = SwordTool(SwordConfig(log_dir=tmp))
            OpenMPRuntime(
                RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=seed)),
                tool=sword,
            ).run(eviction_program)
            sword_count = analyze_trace(tmp).race_count
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        table.add(seed, archer.race_count, archer.evictions, sword_count)
    table.note("the write record of a[0] is evicted by the writer's own reads")
    return table


def run_fig5(n: int = 1000) -> tuple[Table, str]:
    """Build the Figure-5 interval trees and show the overlap constraint."""
    rec = RecordingTool()
    rt = OpenMPRuntime(
        RunConfig(nthreads=2, scheduler=SchedulerConfig(seed=0)), tool=rec
    )
    rt.run(lambda m: fig5_program(m, n))

    builders = {}
    for entry in rec.accesses():
        builders.setdefault(entry.gid, TreeBuilder()).add_access(entry.access)
    trees = {gid: b.finish() for gid, b in builders.items()}

    table = Table(
        "E10b / Figure 5: per-thread summarised interval trees",
        ["thread", "tree nodes", "events summarised", "height"],
    )
    for gid in sorted(trees):
        tree = trees[gid]
        table.add(gid, len(tree), builders[gid].events_in, tree.height())

    # Find one overlapping cross-thread node pair and render its system.
    gids = sorted(trees)
    system_text = "no overlap found"
    for node in trees[gids[0]]:
        hits = list(trees[gids[1]].iter_overlaps(node.interval.low, node.interval.high))
        if hits:
            system = OverlapSystem(
                constraint_of(node.interval), constraint_of(hits[0].interval)
            )
            witness = system.solve()
            system_text = (
                system.pretty()
                + f"\nsatisfiable: {witness is not None}"
                + (f", witness address {witness.address:#x}" if witness else "")
            )
            break
    return table, system_text


def main() -> None:  # pragma: no cover - CLI convenience
    print(run_eviction().render())
    print()
    table, system_text = run_fig5()
    print(table.render())
    print()
    print("Overlap constraint system (paper §III-B form):")
    print(system_text)


if __name__ == "__main__":  # pragma: no cover
    main()
