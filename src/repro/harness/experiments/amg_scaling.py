"""E7 — Figure 8: AMG2013 problem-size scaling.

Figure 8 varies the AMG2013 grid from 10^3 to 40^3 and shows:

* baseline memory growing with the problem size;
* ARCHER's footprint tracking the baseline at 5-7x until it exceeds the
  32 GB node at 40^3 (OOM — no result);
* SWORD's footprint flat (bounded per-thread buffers), finishing all sizes;
* runtime growing with the problem size for every tool.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...common.config import NodeConfig
from ..tables import Figure, Table, fmt_bytes, fmt_seconds
from ..tools import driver
from .common import suite_workloads

TOOLS = ("baseline", "archer", "archer-low", "sword")


def run(
    sizes: Sequence[int] = (10, 20, 30, 40),
    nthreads: int = 8,
    seed: int = 0,
    node: Optional[NodeConfig] = None,
    sweeps: Optional[int] = None,
) -> tuple[Figure, Figure, Table]:
    """Return (memory figure, runtime figure, OOM summary table)."""
    node = node or NodeConfig()
    mem_fig = Figure(
        "E7 / Figure 8a: AMG2013 memory vs problem size", "grid", "bytes"
    )
    rt_fig = Figure(
        "E7 / Figure 8b: AMG2013 runtime vs problem size", "grid", "seconds"
    )
    oom_table = Table(
        "E7 / Figure 8: completion status", ["grid"] + list(TOOLS)
    )
    mem_series = {t: mem_fig.new_series(t) for t in TOOLS}
    rt_series = {t: rt_fig.new_series(t) for t in TOOLS}
    for size in sizes:
        (w,) = suite_workloads("hpc", include=[f"amg2013_{size}"])
        params = {} if sweeps is None else {"sweeps": sweeps}
        statuses = []
        for tool in TOOLS:
            res = driver(tool).run(
                w, nthreads=nthreads, seed=seed, node=node, **params
            )
            if res.oom:
                statuses.append("OOM")
                continue
            statuses.append("ok")
            total = float(res.app_bytes + res.tool_bytes)
            mem_series[tool].add(size, total)
            rt_series[tool].add(size, res.total_seconds)
        oom_table.add(size, *statuses)
    oom_table.note(f"simulated node memory limit: {fmt_bytes(node.memory_limit)}")
    return mem_fig, rt_fig, oom_table


def main() -> None:  # pragma: no cover - CLI convenience
    mem, rt, oom = run()
    print(mem.render())
    print()
    print(rt.render())
    print()
    print(oom.render())


if __name__ == "__main__":  # pragma: no cover
    main()
