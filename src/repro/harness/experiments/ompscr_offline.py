"""E4 — Table III: OmpSCR offline-analysis overheads.

Table III reports, per OmpSCR benchmark: the dynamic-analysis time of both
ARCHER configurations and of SWORD, plus SWORD's offline analysis run on a
single node (OA) and distributed across workers (MT).  The shape to
reproduce: OA stays within seconds at this scale and MT cuts it further;
SWORD's collection time is competitive with ARCHER's analysis time.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..tables import Table, fmt_seconds
from ..tools import driver
from .common import suite_workloads


def run(
    nthreads: int = 8,
    seed: int = 0,
    include: Optional[Iterable[str]] = None,
    mt_workers: int = 4,
) -> Table:
    """Measure DA/OA/MT per benchmark."""
    workloads = suite_workloads("ompscr", include=include)
    table = Table(
        "E4 / Table III: OmpSCR analysis overheads",
        ["benchmark", "archer DA", "archer-low DA", "sword DA", "sword OA", "sword MT"],
    )
    for w in workloads:
        archer = driver("archer").run(w, nthreads=nthreads, seed=seed)
        archer_low = driver("archer-low").run(w, nthreads=nthreads, seed=seed)
        sword = driver("sword").run(
            w, nthreads=nthreads, seed=seed, mt_workers=mt_workers
        )
        table.add(
            w.name,
            fmt_seconds(archer.dynamic_seconds),
            fmt_seconds(archer_low.dynamic_seconds),
            fmt_seconds(sword.dynamic_seconds),
            fmt_seconds(sword.offline_seconds),
            fmt_seconds(sword.offline_mt_seconds),
        )
    table.note("DA = dynamic analysis; OA = serial offline; MT = distributed offline")
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
