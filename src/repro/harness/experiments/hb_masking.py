"""E8 — Figure 1: schedule-dependent happens-before race masking.

Figure 1 shows two interleavings of the same program: in one the unlocked
write is concurrent with the other thread's locked accesses (race
detected); in the other, the lock's release->acquire edge orders them and a
happens-before checker reports nothing.  SWORD's offline analysis judges
concurrency from the barrier-interval structure and mutex sets, so it
reports the race under *every* schedule.

The experiment sweeps scheduler seeds: ARCHER's detection flips with the
seed, SWORD's never does.
"""

from __future__ import annotations

import tempfile
import shutil
from typing import Sequence

from ...archer.tool import ArcherTool
from ...common.config import RunConfig, SchedulerConfig, SwordConfig
from ...common.sourceloc import pc_of
from ...offline.analyzer import analyze_trace
from ...omp.runtime import OpenMPRuntime
from ...sword.logger import SwordTool
from ..tables import Table

PC_UNLOCKED = pc_of("figure1.c", 5, "thread0")
PC_LOCKED = pc_of("figure1.c", 9, "locked")


def figure1_program(m):
    """The Figure-1 program: unlocked write racing locked accesses.

    Thread 0 of the figure is modelled by worker slot 1 and Thread 1 by
    worker slot 2, so that which one enters its critical section first is a
    seed-dependent scheduling outcome (the master, which would always lead,
    stays out of the racy pair).
    """
    a = m.alloc_scalar("a")
    lock = m.new_lock("L")

    def body(ctx):
        if ctx.tid == 1:
            ctx.write(a, 0, 1.0, pc=PC_UNLOCKED)  # the racy write
            with ctx.locked(lock):
                ctx.write(a, 0, 2.0, pc=PC_LOCKED)
        elif ctx.tid == 2:
            with ctx.locked(lock):
                _ = ctx.read(a, 0, pc=PC_LOCKED)
                ctx.write(a, 0, 3.0, pc=PC_LOCKED)

    m.parallel(body, nthreads=3)


def run(seeds: Sequence[int] = tuple(range(12))) -> Table:
    """Sweep seeds; report per-seed detection for both tools."""
    table = Table(
        "E8 / Figure 1: happens-before masking across schedules",
        ["seed", "archer races", "sword races", "masked for HB?"],
    )
    for seed in seeds:
        archer = ArcherTool()
        OpenMPRuntime(
            RunConfig(nthreads=3, scheduler=SchedulerConfig(seed=seed)),
            tool=archer,
        ).run(figure1_program)

        tmp = tempfile.mkdtemp(prefix="fig1-")
        try:
            sword = SwordTool(SwordConfig(log_dir=tmp))
            OpenMPRuntime(
                RunConfig(nthreads=3, scheduler=SchedulerConfig(seed=seed)),
                tool=sword,
            ).run(figure1_program)
            sword_count = analyze_trace(tmp).race_count
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        table.add(
            seed,
            archer.race_count,
            sword_count,
            "yes" if archer.race_count == 0 else "no",
        )
    table.note("paper Fig. 1: the same program, caught or masked by schedule")
    table.note("sword detects the race under every schedule")
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
