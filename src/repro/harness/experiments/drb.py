"""E1 — DataRaceBench results (paper §IV-A, reported in prose).

Reproduces the §IV-A findings as a table:

* no tool reports false alarms on the race-free group;
* ``indirectaccess{1-4}-orig-yes`` are missed by every tool (the race is on
  an unexecuted data-dependent path);
* SWORD detects the ``nowait-orig-yes`` / ``privatemissing-orig-yes`` races
  ARCHER loses to shadow-cell eviction;
* the undocumented extra races in ``plusplus-orig-yes`` (all tools) and
  ``privatemissing-orig-yes`` (SWORD) appear.
"""

from __future__ import annotations

from ..tables import Table
from .common import run_detection, suite_workloads


def run(nthreads: int = 8, seed: int = 0, include=None) -> Table:
    """Run the suite under both tools and render the detection table."""
    rows = run_detection(
        suite_workloads("dataracebench", include=include),
        tools=("archer", "sword"),
        nthreads=nthreads,
        seed=seed,
    )
    table = Table(
        "E1 / DataRaceBench detection (paper §IV-A)",
        ["benchmark", "racy", "documented", "archer", "sword", "sword-only"],
    )
    for row in rows:
        w = row.workload
        archer = row.results["archer"]
        sword = row.results["sword"]
        extra = len(sword.race_pairs - archer.race_pairs)
        table.add(
            w.name,
            "yes" if w.racy else "no",
            w.documented_races,
            archer.race_count,
            sword.race_count,
            extra,
        )
    table.note("indirectaccess1-4: race on an unexecuted path; all tools miss")
    table.note("plusplus/privatemissing extras are real undocumented races")
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
