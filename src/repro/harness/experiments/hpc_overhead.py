"""E6 — Figure 7 / Table V: HPC slowdown and memory overhead vs threads.

Figure 7 plots per-benchmark slowdown (tool runtime over baseline) and
memory overhead while varying the thread count.  The observations to
reproduce:

* ARCHER's slowdown grows faster with thread count than SWORD's dynamic
  phase, except on LULESH where SWORD's log collection is region/I-O bound;
* ``archer-low`` trades extra runtime for a modestly smaller footprint;
* ARCHER's memory overhead is proportional to the baseline footprint
  (5-7x), while SWORD's stays flat at ~3.3 MB per thread.

Table V additionally accounts SWORD's offline phase, which :func:`run`
reports via the ``sword-total`` series.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ...common.config import NodeConfig
from ..tables import Figure
from ..tools import driver
from .common import suite_workloads

TOOLS = ("archer", "archer-low", "sword")


def run(
    benchmarks: Sequence[str] = ("hpccg", "minife", "lulesh", "amg2013_10"),
    thread_counts: Sequence[int] = (8, 16, 24),
    seed: int = 0,
    params_for=None,
) -> dict[str, tuple[Figure, Figure]]:
    """Per benchmark: (slowdown figure, memory-overhead figure)."""
    out: dict[str, tuple[Figure, Figure]] = {}
    for name in benchmarks:
        (w,) = suite_workloads("hpc", include=[name])
        params = dict(params_for(w)) if params_for else {}
        slow_fig = Figure(
            f"E6 / Figure 7: {name} slowdown", "threads", "x over baseline"
        )
        mem_fig = Figure(
            f"E6 / Figure 7: {name} tool memory", "threads", "tool bytes"
        )
        series_slow = {t: slow_fig.new_series(t) for t in TOOLS}
        series_slow["sword-total"] = slow_fig.new_series("sword-total")
        series_mem = {t: mem_fig.new_series(t) for t in TOOLS}
        for nthreads in thread_counts:
            base = driver("baseline").run(
                w, nthreads=nthreads, seed=seed, node=NodeConfig(), **params
            )
            denom = max(base.dynamic_seconds, 1e-9)
            for tool in TOOLS:
                res = driver(tool).run(
                    w, nthreads=nthreads, seed=seed, node=NodeConfig(), **params
                )
                series_slow[tool].add(nthreads, res.dynamic_seconds / denom)
                series_mem[tool].add(nthreads, float(res.tool_bytes))
                if tool == "sword":
                    series_slow["sword-total"].add(
                        nthreads, res.total_seconds / denom
                    )
        out[name] = (slow_fig, mem_fig)
    return out


def run_static(
    benchmarks: Sequence[str] = ("hpccg", "minife", "lulesh", "amg2013_10"),
    thread_counts: Sequence[int] = (8, 16, 24),
    seed: int = 0,
    params_for=None,
) -> dict[str, tuple[Figure, Figure]]:
    """E6 extension: per-benchmark SWORD slowdown with pre-screening
    on vs. off, plus the elided-event fraction.

    Returns ``{benchmark: (slowdown figure, elision figure)}``; the
    slowdown figure carries ``sword`` and ``sword-nostatic`` series
    (dynamic seconds over baseline).  Race-set parity is asserted.
    """
    from ...common.config import SwordConfig

    out: dict[str, tuple[Figure, Figure]] = {}
    for name in benchmarks:
        (w,) = suite_workloads("hpc", include=[name])
        params = dict(params_for(w)) if params_for else {}
        slow_fig = Figure(
            f"E6+: {name} SWORD slowdown, static pre-screening on/off",
            "threads",
            "x over baseline",
        )
        elision_fig = Figure(
            f"E6+: {name} events elided by static pre-screening",
            "threads",
            "fraction of full-instrumentation events",
        )
        on_s = slow_fig.new_series("sword")
        off_s = slow_fig.new_series("sword-nostatic")
        frac = elision_fig.new_series("elided-fraction")
        for nthreads in thread_counts:
            base = driver("baseline").run(
                w, nthreads=nthreads, seed=seed, node=NodeConfig(), **params
            )
            denom = max(base.dynamic_seconds, 1e-9)
            on = driver("sword").run(
                w, nthreads=nthreads, seed=seed, node=NodeConfig(), **params
            )
            off = driver("sword").run(
                w,
                nthreads=nthreads,
                seed=seed,
                node=NodeConfig(),
                sword_config=SwordConfig(static_prescreen=False),
                **params,
            )
            if on.races.pc_pairs() != off.races.pc_pairs():
                raise AssertionError(
                    f"{name}: static pre-screening changed the race set"
                )
            on_s.add(nthreads, on.dynamic_seconds / denom)
            off_s.add(nthreads, off.dynamic_seconds / denom)
            frac.add(
                nthreads,
                on.stats["events_elided"] / max(off.stats["events"], 1),
            )
        out[name] = (slow_fig, elision_fig)
    return out


def main() -> None:  # pragma: no cover - CLI convenience
    for name, (slow, mem) in run().items():
        print(slow.render())
        print()
        print(mem.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
