"""E5 — Table IV: data races reported in HPC benchmarks (with OOM).

The paper's Table IV:

====================  ======  ==========  =====
benchmark             archer  archer-low  sword
====================  ======  ==========  =====
miniFE                0       0           0
HPCCG                 1       1           1
LULESH                0       0           0
AMG2013_10..30        4       4           14
AMG2013_40            OOM     OOM         14
====================  ======  ==========  =====

ARCHER's proportional shadow memory exceeds the 32 GB node at the 40^3
problem size; SWORD's bounded buffers complete every size and detect the 10
eviction-missed races at all sizes.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ...common.config import NodeConfig
from ..tables import Table
from .common import run_detection, suite_workloads

#: Order matching the paper's Table IV.
DEFAULT_ORDER = (
    "minife",
    "hpccg",
    "lulesh",
    "amg2013_10",
    "amg2013_20",
    "amg2013_30",
    "amg2013_40",
)


def run(
    nthreads: int = 8,
    seed: int = 0,
    include: Optional[Iterable[str]] = None,
    node: Optional[NodeConfig] = None,
    params_for=None,
) -> Table:
    """Run the HPC suite under all tools against the simulated 32 GB node."""
    order = tuple(include) if include is not None else DEFAULT_ORDER
    by_name = {w.name: w for w in suite_workloads("hpc", include=order)}
    workloads = [by_name[name] for name in order if name in by_name]
    rows = run_detection(
        workloads,
        tools=("archer", "archer-low", "sword"),
        nthreads=nthreads,
        seed=seed,
        node=node or NodeConfig(),
        params_for=params_for,
    )
    table = Table(
        "E5 / Table IV: HPC data races (OOM = out of simulated node memory)",
        ["benchmark", "archer", "archer-low", "sword"],
    )
    for row in rows:
        table.add(
            row.workload.name,
            row.count("archer"),
            row.count("archer-low"),
            row.count("sword"),
        )
    table.note("paper: archer/archer-low OOM on AMG2013_40; sword completes (14 races)")
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
