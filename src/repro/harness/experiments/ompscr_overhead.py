"""E3 — Figure 6: OmpSCR geometric-mean runtime and memory overheads.

Figure 6 plots, per thread count, the geometric mean across the OmpSCR
suite of (a) runtime and (b) memory usage for baseline / archer /
archer-low / sword.  The paper's observations to reproduce:

* runtime overhead is small for all tools at this scale, with SWORD's data
  collection at or below ARCHER's;
* memory overhead relative to the tiny baselines looks large but stays
  < 100 MB absolute; SWORD's is a constant ~3.3 MB per thread.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ...common.config import NodeConfig
from ..tables import Figure, geomean
from ..tools import driver
from .common import suite_workloads

TOOLS = ("baseline", "archer", "archer-low", "sword")


def run(
    thread_counts: Sequence[int] = (8, 16, 24),
    include: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> tuple[Figure, Figure]:
    """Return (runtime figure, memory figure) over the thread sweep."""
    workloads = suite_workloads("ompscr", include=include)
    runtime_fig = Figure(
        "E3 / Figure 6a: OmpSCR geomean runtime", "threads", "seconds (geomean)"
    )
    memory_fig = Figure(
        "E3 / Figure 6b: OmpSCR geomean memory", "threads", "bytes (geomean)"
    )
    series_rt = {t: runtime_fig.new_series(t) for t in TOOLS}
    series_mem = {t: memory_fig.new_series(t) for t in TOOLS}
    for nthreads in thread_counts:
        times: dict[str, list[float]] = {t: [] for t in TOOLS}
        mems: dict[str, list[float]] = {t: [] for t in TOOLS}
        for w in workloads:
            for tool in TOOLS:
                res = driver(tool).run(
                    w, nthreads=nthreads, seed=seed, node=NodeConfig()
                )
                times[tool].append(res.dynamic_seconds)
                mems[tool].append(float(res.app_bytes + res.tool_bytes))
        for tool in TOOLS:
            series_rt[tool].add(nthreads, geomean(times[tool]))
            series_mem[tool].add(nthreads, geomean(mems[tool]))
    return runtime_fig, memory_fig


def run_static(
    thread_counts: Sequence[int] = (8, 16, 24),
    include: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> tuple[Figure, Figure]:
    """E3 extension: SWORD with static pre-screening on vs. off.

    Returns (runtime figure, elision figure).  The runtime figure has a
    ``sword`` and a ``sword-nostatic`` series (geomean dynamic seconds);
    the elision figure tracks, per thread count, the fraction of the
    full-instrumentation event stream the pre-screener elided across the
    suite.  Race-set parity between the two configurations is asserted
    on every run — the overhead column is only meaningful if results are
    unchanged.
    """
    from ...common.config import SwordConfig

    workloads = suite_workloads("ompscr", include=include)
    runtime_fig = Figure(
        "E3+: OmpSCR geomean SWORD runtime, static pre-screening on/off",
        "threads",
        "seconds (geomean)",
    )
    elision_fig = Figure(
        "E3+: OmpSCR events elided by static pre-screening",
        "threads",
        "fraction of full-instrumentation events",
    )
    on_rt = runtime_fig.new_series("sword")
    off_rt = runtime_fig.new_series("sword-nostatic")
    frac = elision_fig.new_series("elided-fraction")
    for nthreads in thread_counts:
        t_on: list[float] = []
        t_off: list[float] = []
        elided = 0
        full = 0
        for w in workloads:
            on = driver("sword").run(
                w, nthreads=nthreads, seed=seed, node=NodeConfig()
            )
            off = driver("sword").run(
                w,
                nthreads=nthreads,
                seed=seed,
                node=NodeConfig(),
                sword_config=SwordConfig(static_prescreen=False),
            )
            if on.races.pc_pairs() != off.races.pc_pairs():
                raise AssertionError(
                    f"{w.name}: static pre-screening changed the race set"
                )
            t_on.append(on.dynamic_seconds)
            t_off.append(off.dynamic_seconds)
            elided += on.stats["events_elided"]
            full += off.stats["events"]
        on_rt.add(nthreads, geomean(t_on))
        off_rt.add(nthreads, geomean(t_off))
        frac.add(nthreads, elided / max(full, 1))
    return runtime_fig, elision_fig


def main() -> None:  # pragma: no cover - CLI convenience
    rt, mem = run()
    print(rt.render())
    print()
    print(mem.render())


if __name__ == "__main__":  # pragma: no cover
    main()
