"""E9 — §III-A codec comparison (LZO vs Snappy vs LZ4).

The paper: "We compared several open-source compression algorithms, namely
LZO, Snappy, and LZ4.  In our case, they all have similar performance and
compression ratios, and we chose LZO since it was easier to integrate."

This experiment regenerates that comparison on a real trace corpus: it runs
a workload under SWORD once, takes the raw (uncompressed) event blocks, and
measures each codec's ratio and throughput on them — once on the plain
bytes and once with the delta preconditioning filter
(:mod:`repro.sword.compression.filters`) applied first, so the table also
answers "what does the filter buy each codec".
"""

from __future__ import annotations

import time
from typing import Optional

from ...common.config import RunConfig, SchedulerConfig
from ...omp.recording import RecordingTool
from ...omp.runtime import OpenMPRuntime
from ...sword.compression import available, by_name, filters
from ...workloads.base import REGISTRY
from ..tables import Table, fmt_bytes


def trace_corpus(workload_name: str = "c_md", nthreads: int = 8, **params) -> bytes:
    """Raw event bytes of one workload's trace (pre-compression)."""
    from ...common.events import accesses_to_records

    rec = RecordingTool()
    rt = OpenMPRuntime(
        RunConfig(nthreads=nthreads, scheduler=SchedulerConfig(seed=0)),
        tool=rec,
    )
    w = REGISTRY.get(workload_name)
    rt.run(lambda m: w.run_program(m, **params))
    accesses = [e.access for e in rec.accesses()]
    return accesses_to_records(accesses).tobytes()


def run(
    workload_name: str = "c_md",
    nthreads: int = 8,
    codecs: Optional[list[str]] = None,
    repeats: int = 3,
    **params,
) -> Table:
    """Compress one trace corpus with every codec; compare ratio and speed.

    Each codec appears twice: on the plain corpus and on the
    delta-filtered corpus (suffix ``+delta``); the filtered rows include
    the filter's encode time in the compression throughput, so the
    comparison reflects what the online logger actually pays.
    """
    corpus = trace_corpus(workload_name, nthreads, **params)
    filtered = filters.encode(filters.FILTER_DELTA, corpus)
    table = Table(
        f"E9 / codec comparison on {workload_name} trace "
        f"({fmt_bytes(len(corpus))} of events)",
        ["codec", "compressed", "ratio", "compress MB/s", "decompress MB/s"],
    )
    mb = len(corpus) / 1e6
    for name in codecs or available():
        codec = by_name(name)
        for label, data, filter_id in (
            (name, corpus, filters.FILTER_NONE),
            (f"{name}+delta", filtered, filters.FILTER_DELTA),
        ):
            best_c = float("inf")
            best_d = float("inf")
            compressed = b""
            for _ in range(repeats):
                t0 = time.perf_counter()
                if filter_id:
                    compressed = codec.compress(
                        filters.encode(filter_id, corpus)
                    )
                else:
                    compressed = codec.compress(corpus)
                best_c = min(best_c, time.perf_counter() - t0)
                t1 = time.perf_counter()
                out = codec.decompress(compressed, len(data))
                if filter_id:
                    out = filters.decode(filter_id, out)
                best_d = min(best_d, time.perf_counter() - t1)
                if out != corpus:
                    raise AssertionError(f"{label}: corrupted roundtrip")
            table.add(
                label,
                fmt_bytes(len(compressed)),
                f"{len(corpus) / max(len(compressed), 1):.2f}x",
                f"{mb / best_c:.1f}" if best_c else "-",
                f"{mb / best_d:.1f}" if best_d else "-",
            )
    table.note("paper: candidates performed similarly; LZO chosen for integration ease")
    table.note("+delta rows precondition addr/pc with the v2 frame delta filter")
    return table


def main() -> None:  # pragma: no cover - CLI convenience
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
