"""ASCII table and series rendering for experiment outputs.

The benchmark harness prints every reproduced table/figure as plain text
rows so the regeneration is self-contained (no plotting dependencies); the
figure experiments emit their data as labelled series, one row per x value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


def fmt_bytes(n: float) -> str:
    """Human-readable byte count."""
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} TiB"  # pragma: no cover - unreachable


def fmt_seconds(s: float) -> str:
    """Human-readable duration."""
    if s < 1e-3:
        return f"{s * 1e6:.0f} us"
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    if s < 120.0:
        return f"{s:.2f} s"
    return f"{s / 60:.1f} min"


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the aggregation Figure 6 uses); 0 for empty input."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class Table:
    """A titled ASCII table."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(self.columns[i])), *(len(r[i]) for r in cells), 1)
            if cells
            else len(str(self.columns[i]))
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * max(len(self.title), len(sep))]
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()

    def column(self, name: str) -> list[Any]:
        """Extract a column by name (experiment assertions use this)."""
        i = list(self.columns).index(name)
        return [row[i] for row in self.rows]


@dataclass
class Series:
    """One labelled line of a reproduced figure (x -> y)."""

    label: str
    points: list[tuple[Any, float]] = field(default_factory=list)

    def add(self, x: Any, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> list[float]:
        return [y for _, y in self.points]


@dataclass
class Figure:
    """A reproduced figure: multiple series over a shared x axis."""

    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def render(self) -> str:
        xs: list[Any] = []
        for s in self.series:
            for x, _ in s.points:
                if x not in xs:
                    xs.append(x)
        table = Table(
            f"{self.title}  [{self.ylabel} vs {self.xlabel}]",
            [self.xlabel] + [s.label for s in self.series],
        )
        for x in xs:
            row: list[Any] = [x]
            for s in self.series:
                match = [y for (sx, y) in s.points if sx == x]
                row.append(f"{match[0]:.4g}" if match else "-")
            table.add(*row)
        return table.render()

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.render()
