"""Tool drivers: run one workload under baseline / archer / archer-low / sword.

Mirrors the paper's four experimental configurations (§IV):

* ``baseline``   — the workload with race checking disabled;
* ``archer``     — the happens-before tool, default configuration;
* ``archer-low`` — ARCHER with the shadow-flush option ("flush shadow");
* ``sword``      — online collection, then the offline analysis (whose
  serial OA and distributed MT costs are reported separately, as in
  Tables III/V).

Every run gets a fresh runtime, address space, and node-memory accountant,
and returns a uniform :class:`RunResult` the experiment modules aggregate.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from ..archer.tool import ArcherTool
from ..common.config import (
    ArcherConfig,
    NodeConfig,
    OfflineConfig,
    RunConfig,
    SchedulerConfig,
    SwordConfig,
)
from ..common.errors import SimulatedOOMError
from ..memory.accounting import NodeMemory
from ..obs import Instrumentation, get_obs, run_stats
from ..offline.analyzer import SerialOfflineAnalyzer
from ..offline.options import AnalysisOptions
from ..offline.parallel import DistributedOfflineAnalyzer
from ..offline.report import RaceSet
from ..omp.runtime import OpenMPRuntime
from ..sword.logger import SwordTool
from ..sword.reader import TraceDir
from ..workloads.base import Workload

TOOL_NAMES = ("baseline", "archer", "archer-low", "sword")


@dataclass
class RunResult:
    """Uniform outcome of one (workload, tool, config) execution."""

    workload: str
    tool: str
    nthreads: int
    oom: bool = False
    races: Optional[RaceSet] = None
    dynamic_seconds: float = 0.0
    offline_seconds: float = 0.0       # SWORD serial offline analysis (OA)
    offline_mt_seconds: float = 0.0    # SWORD distributed offline (MT)
    app_bytes: int = 0                 # peak application footprint
    tool_bytes: int = 0                # peak tool + shadow footprint
    total_bytes: int = 0               # peak node usage
    trace_bytes: int = 0               # compressed log volume (sword)
    stats: dict = field(default_factory=dict)
    #: Metrics-registry snapshot (empty under the null backend).
    metrics: dict = field(default_factory=dict)
    #: Salvage-mode ledger (None for strict runs) — see
    #: :class:`repro.sword.integrity.IntegrityReport`.
    integrity: Optional[object] = None

    @property
    def race_count(self) -> int:
        return len(self.races) if self.races is not None else 0

    @property
    def race_pairs(self) -> set:
        return self.races.pc_pairs() if self.races is not None else set()

    @property
    def memory_overhead(self) -> float:
        """Tool bytes over application bytes (the Figures' metric)."""
        return self.tool_bytes / self.app_bytes if self.app_bytes else 0.0

    @property
    def total_seconds(self) -> float:
        """Dynamic plus (serial) offline time."""
        return self.dynamic_seconds + self.offline_seconds


def _execute(
    workload: Workload,
    tool,
    *,
    nthreads: int,
    seed: int,
    node: NodeConfig,
    yield_every: int,
    params: dict,
) -> tuple[OpenMPRuntime, NodeMemory, float, bool]:
    """Run the model program once; returns (runtime, accountant, secs, oom)."""
    accountant = NodeMemory(node.memory_limit)
    rt = OpenMPRuntime(
        RunConfig(
            nthreads=nthreads,
            scheduler=SchedulerConfig(seed=seed, yield_every=yield_every),
            node=node,
        ),
        tool=tool,
        accountant=accountant,
    )
    t0 = time.perf_counter()
    oom = False
    try:
        rt.run(lambda master: workload.run_program(master, **params))
    except SimulatedOOMError:
        oom = True
    elapsed = time.perf_counter() - t0
    return rt, accountant, elapsed, oom


def _fill_memory(result: RunResult, accountant: NodeMemory) -> None:
    snap = accountant.snapshot()
    result.app_bytes = snap.by_category_peak.get(NodeMemory.APP, 0)
    result.tool_bytes = snap.by_category_peak.get(
        NodeMemory.TOOL, 0
    ) + snap.by_category_peak.get(NodeMemory.SHADOW, 0)
    result.total_bytes = snap.peak_total


class BaselineDriver:
    """Race checking disabled — the denominator of every overhead figure."""

    name = "baseline"

    def run(
        self,
        workload: Workload,
        *,
        nthreads: int = 8,
        seed: int = 0,
        node: Optional[NodeConfig] = None,
        yield_every: int = 0,
        obs: Optional[Instrumentation] = None,
        **params: Any,
    ) -> RunResult:
        node = node or NodeConfig()
        obs = obs or get_obs()
        result = RunResult(workload=workload.name, tool=self.name, nthreads=nthreads)
        with obs.tracer.span(
            "run", category="run", workload=workload.name, tool=self.name
        ):
            _rt, accountant, secs, oom = _execute(
                workload, None, nthreads=nthreads, seed=seed, node=node,
                yield_every=yield_every, params=params,
            )
        result.dynamic_seconds = secs
        result.oom = oom
        _fill_memory(result, accountant)
        result.metrics = obs.registry.snapshot()
        return result


class ArcherDriver:
    """The happens-before baseline tool, default or low-memory flavour."""

    def __init__(self, flush_shadow: bool = False) -> None:
        self.flush_shadow = flush_shadow
        self.name = "archer-low" if flush_shadow else "archer"

    def run(
        self,
        workload: Workload,
        *,
        nthreads: int = 8,
        seed: int = 0,
        node: Optional[NodeConfig] = None,
        yield_every: int = 0,
        archer_config: Optional[ArcherConfig] = None,
        obs: Optional[Instrumentation] = None,
        **params: Any,
    ) -> RunResult:
        node = node or NodeConfig()
        obs = obs or get_obs()
        config = archer_config or ArcherConfig()
        config.flush_shadow = self.flush_shadow
        result = RunResult(workload=workload.name, tool=self.name, nthreads=nthreads)
        accountant = NodeMemory(node.memory_limit)
        tool = ArcherTool(config, accountant, obs=obs)
        rt = OpenMPRuntime(
            RunConfig(
                nthreads=nthreads,
                scheduler=SchedulerConfig(seed=seed, yield_every=yield_every),
                node=node,
            ),
            tool=tool,
            accountant=accountant,
        )
        t0 = time.perf_counter()
        with obs.tracer.span(
            "online", category="run", workload=workload.name, tool=self.name
        ):
            try:
                rt.run(lambda master: workload.run_program(master, **params))
            except SimulatedOOMError:
                result.oom = True
        result.dynamic_seconds = time.perf_counter() - t0
        if not result.oom:
            result.races = tool.races
        result.stats = run_stats(tool, extra={"evictions": tool.evictions})
        _fill_memory(result, accountant)
        result.metrics = obs.registry.snapshot()
        return result


class SwordDriver:
    """SWORD: bounded-buffer collection + offline analysis."""

    name = "sword"

    def run(
        self,
        workload: Workload,
        *,
        nthreads: int = 8,
        seed: int = 0,
        node: Optional[NodeConfig] = None,
        yield_every: int = 0,
        sword_config: Optional[SwordConfig] = None,
        offline_config: Optional[OfflineConfig] = None,
        analysis_options: Optional[AnalysisOptions] = None,
        trace_dir: Optional[str] = None,
        keep_trace: bool = False,
        run_offline: bool = True,
        mt_workers: int = 0,
        obs: Optional[Instrumentation] = None,
        **params: Any,
    ) -> RunResult:
        node = node or NodeConfig()
        obs = obs or get_obs()
        owns_dir = trace_dir is None
        trace_path = Path(trace_dir or tempfile.mkdtemp(prefix="sword-trace-"))
        result = RunResult(workload=workload.name, tool=self.name, nthreads=nthreads)
        analyses: dict = {}
        tool = None
        try:
            config = sword_config or SwordConfig()
            config.log_dir = str(trace_path)
            accountant = NodeMemory(node.memory_limit)
            tool = SwordTool(config, accountant, obs=obs)
            rt = OpenMPRuntime(
                RunConfig(
                    nthreads=nthreads,
                    scheduler=SchedulerConfig(seed=seed, yield_every=yield_every),
                    node=node,
                ),
                tool=tool,
                accountant=accountant,
            )
            t0 = time.perf_counter()
            with obs.tracer.span(
                "online", category="run", workload=workload.name,
                tool=self.name,
            ):
                try:
                    rt.run(
                        lambda master: workload.run_program(master, **params)
                    )
                except SimulatedOOMError:
                    result.oom = True
            result.dynamic_seconds = time.perf_counter() - t0
            result.trace_bytes = tool.stats["bytes_compressed"]
            _fill_memory(result, accountant)
            if result.oom or not run_offline:
                return result

            integrity_mode = (
                analysis_options.integrity
                if analysis_options is not None
                else "strict"
            )
            trace = TraceDir(trace_path, integrity=integrity_mode)
            t1 = time.perf_counter()
            analysis = SerialOfflineAnalyzer(
                trace, offline_config, obs=obs, options=analysis_options
            ).analyze()
            result.offline_seconds = time.perf_counter() - t1
            result.races = analysis.races
            result.integrity = analysis.integrity
            analyses["offline"] = analysis.stats
            # Salvage has a single (serial) code path; skip the MT pass.
            if mt_workers > 1 and integrity_mode == "strict":
                t2 = time.perf_counter()
                if analysis_options is not None:
                    mt_opts = analysis_options.copy(workers=mt_workers)
                else:
                    mt_opts = AnalysisOptions(
                        chunk_events=(
                            offline_config or OfflineConfig()
                        ).chunk_events,
                        workers=mt_workers,
                    )
                mt = DistributedOfflineAnalyzer(
                    TraceDir(trace_path), obs=obs, options=mt_opts
                ).analyze()
                result.offline_mt_seconds = time.perf_counter() - t2
                analyses["offline_mt"] = mt.stats
                if mt.races.pc_pairs() != analysis.races.pc_pairs():
                    raise AssertionError(
                        "distributed analysis disagrees with serial analysis"
                    )
            return result
        finally:
            # One shared snapshot on every exit path: the tool's online
            # counters plus every analysis phase that actually ran.
            extra = None
            if tool is not None and result.dynamic_seconds > 0:
                extra = {
                    "events_per_second": (
                        tool.stats["events"] / result.dynamic_seconds
                    )
                }
            result.stats = run_stats(tool, extra=extra, analyses=analyses)
            result.metrics = obs.registry.snapshot()
            if owns_dir and not keep_trace:
                shutil.rmtree(trace_path, ignore_errors=True)


def driver(name: str):
    """Driver factory by experiment-facing tool name."""
    if name == "baseline":
        return BaselineDriver()
    if name == "archer":
        return ArcherDriver(flush_shadow=False)
    if name == "archer-low":
        return ArcherDriver(flush_shadow=True)
    if name == "sword":
        return SwordDriver()
    raise ValueError(f"unknown tool {name!r}; expected one of {TOOL_NAMES}")
