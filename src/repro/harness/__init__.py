"""Experiment harness: tool drivers, metrics, tables, experiments."""

from .tables import Figure, Series, Table, fmt_bytes, fmt_seconds, geomean
from .tools import (
    ArcherDriver,
    BaselineDriver,
    RunResult,
    SwordDriver,
    TOOL_NAMES,
    driver,
)

__all__ = [
    "ArcherDriver",
    "BaselineDriver",
    "Figure",
    "RunResult",
    "Series",
    "SwordDriver",
    "TOOL_NAMES",
    "Table",
    "driver",
    "fmt_bytes",
    "fmt_seconds",
    "geomean",
]
