"""Concurrency judgment over barrier intervals.

SWORD's offline phase decides, for every pair of (thread, barrier-interval)
trace chunks, whether their events may run concurrently — only such pairs are
race-checked.  The information available per interval is exactly a Table-I
meta-data row: the parallel-region instance (``pid``), its parent (``ppid``),
the thread's ``offset``/``span`` within the team, the barrier-interval index
``bid``, and the nesting ``level``.

An :class:`IntervalLabel` is the offset-span label of an interval with the
lineage kept explicit: one :class:`IntervalPair` ``(region, slot, bid, span)``
per nesting level.  Ancestor levels record the forking thread's position (its
region, slot, and barrier interval at the moment it forked the next level);
the leaf level is the interval itself.  Folding ``slot + bid * span`` into a
single offset recovers the classic Mellor-Crummey label
(:func:`to_classic`); keeping the components separate lets the judgment also
honour *barrier ordering* (all-to-all) and *fork serialisation*, which plain
offset-span congruence cannot express but the pid/ppid metadata makes
decidable.

Judgment for two distinct interval labels, at the first level where their
pairs differ:

* different regions            -> **sequential**  (two regions reached from
  the same parent position are forked one after the other — nested regions
  join before their parent proceeds);
* same region, same slot       -> **sequential**  (same thread, program
  order; the classic case-2 congruence);
* same region, different bids  -> **sequential**  (a team barrier separates
  the intervals);
* same region, same bid, different slots -> **concurrent** (teammates inside
  one barrier interval — the paper's R1, and, for ancestor levels, the
  nested-region races R2/R3 of Figure 2).

If no level differs, one label is a prefix of the other: the forking thread
is suspended while its nested region runs (paper case 1) -> sequential.

Property tests validate this judgment against a brute-force happens-before
oracle computed from the simulator's full synchronisation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .labels import Label, OSPair


@dataclass(frozen=True, slots=True)
class IntervalPair:
    """One nesting level of a barrier-interval label.

    Attributes:
        region: parallel-region instance id (``pid``).
        slot: thread number within the team (Table I ``offset``).
        bid: barrier-interval index within the region.
        span: team size (Table I ``span``).
    """

    region: int
    slot: int
    bid: int
    span: int

    def __post_init__(self) -> None:
        if self.span <= 0:
            raise ValueError("span must be positive")
        if not 0 <= self.slot < self.span:
            raise ValueError(f"slot {self.slot} not in [0, {self.span})")
        if self.bid < 0:
            raise ValueError("bid must be non-negative")

    def to_os_pair(self) -> OSPair:
        """Fold the barrier phase into a classic offset-span pair."""
        return OSPair(self.slot + self.bid * self.span, self.span)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"(r{self.region}:{self.slot}@{self.bid}/{self.span})"


IntervalLabel = Tuple[IntervalPair, ...]


def to_classic(label: IntervalLabel) -> Label:
    """Classic offset-span label of an interval label."""
    return tuple(p.to_os_pair() for p in label)


def make_interval_label(*levels: tuple[int, int, int, int]) -> IntervalLabel:
    """Build a label from ``(region, slot, bid, span)`` tuples (tests)."""
    return tuple(IntervalPair(*lvl) for lvl in levels)


def sequential_intervals(l1: IntervalLabel, l2: IntervalLabel) -> bool:
    """True when every event of one interval is ordered against the other.

    Equal labels denote the same interval; callers never race-check an
    interval against itself, but the judgment is still well defined (a
    single thread is sequential with itself).
    """
    if l1 == l2:
        return True
    n = min(len(l1), len(l2))
    for i in range(n):
        a, b = l1[i], l2[i]
        if a == b:
            continue
        if a.region != b.region:
            # Both lineages passed through the *same* position (all previous
            # pairs equal), so one parent thread forked both regions, one
            # after the other: fork-join nesting serialises them.
            return True
        if a.slot == b.slot:
            # Same thread slot of the same team: program order.
            return True
        if a.bid != b.bid:
            # Same team, different barrier intervals: a barrier is between.
            return True
        # Same team, same barrier interval, different threads.
        return False
    # No divergent level: one label is a prefix of the other (case 1: the
    # forking thread around its nested region).
    return True


def concurrent_intervals(l1: IntervalLabel, l2: IntervalLabel) -> bool:
    """May events of the two intervals interleave?"""
    return not sequential_intervals(l1, l2)
