"""Offset-span labels (Mellor-Crummey) for OpenMP concurrency structure.

An offset-span label tags an execution point with its lineage through forks
and joins: a sequence of ``[offset, span]`` pairs, where ``span`` is the
number of threads created by the fork a pair originates from and ``offset``
distinguishes siblings.  The paper (§II) uses labels over
``OSL = (N x N)*`` and classifies two labels as *sequential* when

* **case 1**: one label is a prefix of the other
  (``osl1 = P`` and ``osl2 = P.S``), or
* **case 2**: they share a prefix ``P`` followed by pairs ``[o_x, s]`` and
  ``[o_y, s]`` with ``o_x < o_y`` and ``o_x ≡ o_y (mod s)``,

and as *concurrent* otherwise.  Joins and barriers advance a pair's offset by
its span, which is what makes the case-2 congruence identify "the same
thread slot, later phase".

SWORD's offline analysis works on *barrier-interval labels* — see
:mod:`repro.osl.concurrency` — where each level keeps the thread slot and the
barrier-interval index separate (they are the ``offset``/``span`` plus
``bid`` columns of the Table-I meta-data rows).  This module provides the
classic label algebra; the interval judgment builds on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True, slots=True)
class OSPair:
    """One ``[offset, span]`` pair of an offset-span label."""

    offset: int
    span: int

    def __post_init__(self) -> None:
        if self.span <= 0:
            raise ValueError("span must be positive")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")

    @property
    def slot(self) -> int:
        """The thread slot this pair denotes (offset modulo span)."""
        return self.offset % self.span

    @property
    def phase(self) -> int:
        """How many joins/barriers have advanced this pair (offset // span)."""
        return self.offset // self.span

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.offset},{self.span}]"


Label = Tuple[OSPair, ...]


def initial_label() -> Label:
    """Label of the initial (master) thread: ``[0, 1]``."""
    return (OSPair(0, 1),)


def fork(parent: Label, child_index: int, span: int) -> Label:
    """Label of child ``child_index`` of an ``span``-way fork of ``parent``."""
    if not 0 <= child_index < span:
        raise ValueError(f"child index {child_index} not in [0, {span})")
    return parent + (OSPair(child_index, span),)


def after_join(parent: Label) -> Label:
    """Parent label after its children joined: last offset advances by span.

    Mellor-Crummey's join rule; it makes every pre-join child label
    sequential with the continuation via the case-2 congruence.
    """
    if not parent:
        raise ValueError("cannot join an empty label")
    last = parent[-1]
    return parent[:-1] + (OSPair(last.offset + last.span, last.span),)


def after_barrier(label: Label) -> Label:
    """Thread label after a team barrier: last offset advances by span."""
    if not label:
        raise ValueError("cannot barrier an empty label")
    last = label[-1]
    return label[:-1] + (OSPair(last.offset + last.span, last.span),)


def parse_label(text: str) -> Label:
    """Parse ``"[0,1][0,2][1,2]"`` into a label (tests / CLI convenience)."""
    pairs = []
    stripped = text.replace(" ", "")
    if stripped:
        if not (stripped.startswith("[") and stripped.endswith("]")):
            raise ValueError(f"malformed label {text!r}")
        for chunk in stripped[1:-1].split("]["):
            o, s = chunk.split(",")
            pairs.append(OSPair(int(o), int(s)))
    return tuple(pairs)


def format_label(label: Iterable[OSPair]) -> str:
    """Inverse of :func:`parse_label`."""
    return "".join(str(p) for p in label)


def is_prefix(shorter: Label, longer: Label) -> bool:
    """True when ``shorter`` is a proper prefix of ``longer``."""
    return len(shorter) < len(longer) and longer[: len(shorter)] == shorter


def sequential_classic(osl1: Label, osl2: Label) -> bool:
    """The paper's §II judgment: are the two labels ordered (non-concurrent)?

    Returns True when case 1 or case 2 applies in either direction.  Equal
    labels denote the same execution point and are trivially sequential.
    """
    if osl1 == osl2:
        return True
    # Case 1: prefix relation (fork lineage orders ancestor around child).
    if is_prefix(osl1, osl2) or is_prefix(osl2, osl1):
        return True
    # Case 2: common prefix, then same-span pairs whose offsets are congruent
    # modulo the span (same thread slot, different phase).
    n = min(len(osl1), len(osl2))
    for i in range(n):
        a, b = osl1[i], osl2[i]
        if a == b:
            continue
        if a.span != b.span:
            return False
        return a.offset % a.span == b.offset % b.span
    # One exhausted without divergence -> prefix, handled above.
    return False


def concurrent_classic(osl1: Label, osl2: Label) -> bool:
    """Negation of :func:`sequential_classic` (the paper's phrasing)."""
    return not sequential_classic(osl1, osl2)
