"""Offset-span labels and the barrier-interval concurrency judgment."""

from .labels import (
    Label,
    OSPair,
    after_barrier,
    after_join,
    concurrent_classic,
    fork,
    format_label,
    initial_label,
    is_prefix,
    parse_label,
    sequential_classic,
)
from .concurrency import (
    IntervalLabel,
    IntervalPair,
    concurrent_intervals,
    make_interval_label,
    sequential_intervals,
    to_classic,
)

__all__ = [
    "IntervalLabel",
    "IntervalPair",
    "Label",
    "OSPair",
    "after_barrier",
    "after_join",
    "concurrent_classic",
    "concurrent_intervals",
    "fork",
    "format_label",
    "initial_label",
    "is_prefix",
    "make_interval_label",
    "parse_label",
    "sequential_classic",
    "sequential_intervals",
    "to_classic",
]
