"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-workloads [--suite S]``      — show the benchmark registry;
* ``check <workload> [options]``      — run one workload under a tool and
  print race reports and overheads;
* ``watch <workload> [options]``      — run one workload with the streaming
  analyzer attached, printing races as they are confirmed mid-run;
* ``experiment <id> [--fast]``        — regenerate one paper table/figure
  (E1..E10, see DESIGN.md);
* ``analyze <trace-dir> [--mode M]``  — offline-analyze an existing
  SWORD trace directory (``--salvage`` recovers what it can from a
  corrupt or truncated trace and reports the loss);
* ``faults inject|sweep``             — deterministic fault injection:
  mutate a trace from a seeded plan, or run the kill-point sweep that
  proves salvage analysis completes at every truncation point;
* ``serve [options]``                 — boot the fleet analysis service
  and drive a load-generator burst through it (jobs/sec, p99
  time-to-first-race, cross-job cache hits, parity check).

Exit codes are uniform (:mod:`repro.common.exitcodes`): ``0`` clean,
``1`` races found, ``2`` error (OOM, torn trace in strict mode, sweep
property violation).  ``--json`` payloads repeat the code under
``"exit_code"``/``"exit_meaning"``.

Every subcommand routes through :mod:`repro.api` and accepts ``--json``
for a machine-readable report (the shared races/stats schema, versioned
by a top-level ``"schema_version"`` key — see DESIGN.md; runs include
the metrics snapshot under the ``"metrics"`` key).  ``check``,
``watch``, and ``analyze`` additionally take ``--metrics <path>`` (write
the metrics snapshot as JSON, or Prometheus text with a ``.prom``
suffix) and ``--trace-events <path>`` (write a Chrome trace-event file
of the run's nested phases — open it at ``chrome://tracing`` or
https://ui.perfetto.dev).
"""

from __future__ import annotations

import argparse
import json
import sys

from . import api
from . import obs as obslib
from .common.config import SwordConfig
from .common.errors import ReproError
from .common.exitcodes import (
    EXIT_CLEAN,
    EXIT_ERROR,
    exit_meaning,
    race_exit_code,
)
from .harness.tables import fmt_bytes, fmt_seconds
from .harness.tools import TOOL_NAMES
from .obs import prometheus_text, write_json
from .offline.options import AnalysisOptions, FastPathOptions, PruningOptions
from .workloads import REGISTRY


def _make_obs(args: argparse.Namespace) -> "obslib.Instrumentation":
    """A live bundle when any machine-readable output was requested;
    the ambient (null by default) bundle otherwise."""
    if (
        args.json
        or args.metrics
        or args.trace_events
        or getattr(args, "stats_every", None) is not None
    ):
        return obslib.live()
    return obslib.get_obs()


def _export_obs(args: argparse.Namespace, obs: "obslib.Instrumentation") -> None:
    """Honour ``--metrics`` / ``--trace-events`` after a run."""
    if args.metrics:
        if args.metrics.endswith(".prom"):
            from pathlib import Path

            Path(args.metrics).write_text(
                prometheus_text(obs.registry.snapshot())
            )
        else:
            write_json(obs.registry.snapshot(), args.metrics)
    if args.trace_events:
        obs.tracer.write_chrome(args.trace_events)


def _add_obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.add_argument(
        "--metrics",
        metavar="PATH",
        help="write the metrics snapshot (JSON; .prom for Prometheus text)",
    )
    p.add_argument(
        "--trace-events",
        metavar="PATH",
        help="write Chrome trace-event JSON of the run's phases",
    )


def _stats_bytes_inflated(stats: dict | None) -> int:
    """Sum ``bytes_inflated`` over a run's nested per-mode stats dicts."""
    if not isinstance(stats, dict):
        return 0
    total = 0
    for value in stats.values():
        if isinstance(value, dict):
            if "bytes_inflated" in value:
                total += int(value.get("bytes_inflated") or 0)
            else:
                total += _stats_bytes_inflated(value)
    return total


def _print_json(payload: dict, exit_code: int | None = None) -> None:
    payload["schema_version"] = api.JSON_SCHEMA_VERSION
    if exit_code is not None:
        payload["exit_code"] = exit_code
        payload["exit_meaning"] = exit_meaning(exit_code)
    print(json.dumps(payload, indent=2, sort_keys=True))


def cmd_list_workloads(args: argparse.Namespace) -> int:
    workloads = REGISTRY.suite(args.suite) if args.suite else list(REGISTRY)
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": w.name,
                        "suite": w.suite,
                        "racy": w.racy,
                        "seeded_races": w.seeded_races,
                        "archer_misses": w.archer_misses,
                    }
                    for w in workloads
                ],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(f"{'name':30s} {'suite':14s} {'racy':5s} {'seeded':>6s} {'archer misses':>13s}")
    for w in workloads:
        print(
            f"{w.name:30s} {w.suite:14s} {'yes' if w.racy else 'no':5s} "
            f"{w.seeded_races:>6d} {w.archer_misses:>13d}"
        )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    obs = _make_obs(args)
    options = None
    if getattr(args, "salvage", False):
        options = AnalysisOptions(integrity="salvage")
    sword_config = None
    if getattr(args, "no_static", False):
        sword_config = SwordConfig(static_prescreen=False)
    result = api.detect(
        args.workload,
        tool=args.tool,
        nthreads=args.threads,
        seed=args.seed,
        obs=obs,
        options=options,
        sword_config=sword_config,
    )
    _export_obs(args, obs)
    if args.json:
        payload = {
            "workload": result.workload,
            "tool": result.tool,
            "nthreads": result.nthreads,
            "oom": result.oom,
            "races": (
                result.races.to_json()
                if result.races is not None
                else None
            ),
            "dynamic_seconds": result.dynamic_seconds,
            "offline_seconds": result.offline_seconds,
            "app_bytes": result.app_bytes,
            "tool_bytes": result.tool_bytes,
            "stats": result.stats,
            "bytes_inflated": _stats_bytes_inflated(result.stats),
            "metrics": result.metrics,
        }
        if result.integrity is not None:
            payload["integrity"] = result.integrity.to_json()
        code = (
            EXIT_ERROR if result.oom else race_exit_code(result.race_count)
        )
        _print_json(payload, exit_code=code)
        return code
    if result.oom:
        print(f"{args.tool} ran OUT OF MEMORY on the simulated node")
        return EXIT_ERROR
    print(
        f"tool={args.tool} threads={args.threads} "
        f"dynamic={fmt_seconds(result.dynamic_seconds)} "
        f"offline={fmt_seconds(result.offline_seconds)} "
        f"app={fmt_bytes(result.app_bytes)} tool-mem={fmt_bytes(result.tool_bytes)}"
    )
    if result.races is None:
        print("(baseline: race checking disabled)")
        return EXIT_CLEAN
    if result.integrity is not None:
        print(result.integrity.summary())
    print(f"races: {result.race_count}")
    for race in result.races:
        print(" ", race.describe())
    return race_exit_code(result.race_count)


def cmd_watch(args: argparse.Namespace) -> int:
    obs = _make_obs(args)

    def live_feed(report) -> None:
        if not args.json:
            print(f"  [live] {report.describe()}", flush=True)

    result = api.watch(
        args.workload,
        nthreads=args.threads,
        seed=args.seed,
        on_race=live_feed,
        obs=obs,
        stats_every=args.stats_every,
        on_stats=(lambda line: None) if args.json else print,
    )
    _export_obs(args, obs)
    if args.json:
        code = (
            EXIT_ERROR if result.oom else race_exit_code(result.race_count)
        )
        payload = result.to_json()
        payload["bytes_inflated"] = _stats_bytes_inflated(payload.get("stats"))
        _print_json(payload, exit_code=code)
        return code
    if result.oom:
        print("watch ran OUT OF MEMORY on the simulated node")
        return EXIT_ERROR
    ttfr = (
        fmt_seconds(result.time_to_first_race)
        if result.time_to_first_race is not None
        else "-"
    )
    print(
        f"watched {result.workload} threads={result.nthreads} "
        f"elapsed={fmt_seconds(result.elapsed_seconds)} "
        f"first-race={ttfr} pairs={result.pairs_analyzed}"
    )
    print(f"races: {result.race_count}")
    for race in result.races:
        print(" ", race.describe())
    return race_exit_code(result.race_count)


def cmd_experiment(args: argparse.Namespace) -> int:
    import repro.harness.experiments as E

    experiments = {
        "E1": E.drb.main,
        "E2": E.ompscr_races.main,
        "E3": E.ompscr_overhead.main,
        "E4": E.ompscr_offline.main,
        "E5": E.hpc_races.main,
        "E6": E.hpc_overhead.main,
        "E7": E.amg_scaling.main,
        "E8": E.hb_masking.main,
        "E9": E.codec_compare.main,
        "E10": E.examples_demo.main,
    }
    main = experiments.get(args.id.upper())
    if main is None:
        print(f"unknown experiment {args.id!r}; known: {sorted(experiments)}")
        return 1
    main()
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    obs = _make_obs(args)
    options = AnalysisOptions(
        workers=args.workers,
        integrity="salvage" if args.salvage else "strict",
        fastpath=FastPathOptions(
            enabled=not args.no_fastpath,
            result_cache=bool(args.cache or args.cache_dir),
            cache_dir=args.cache_dir,
        ),
        pruning=PruningOptions(
            lazy_inflate=not args.no_lazy,
            static_skip=not args.no_static,
        ),
    )
    with obs.tracer.span("analyze", category="run"):
        result = api.analyze(
            args.trace_dir, mode=args.mode, options=options, obs=obs
        )
    _export_obs(args, obs)
    if args.json:
        payload = result.to_json()
        payload["bytes_inflated"] = result.stats.bytes_inflated
        payload["metrics"] = obs.registry.snapshot()
        code = race_exit_code(result.race_count)
        _print_json(payload, exit_code=code)
        return code
    stats = result.stats
    print(
        f"intervals={stats.intervals} concurrent_pairs={stats.concurrent_pairs} "
        f"trees={stats.trees_built} nodes={stats.tree_nodes} "
        f"time={fmt_seconds(stats.total_seconds)}"
    )
    if result.integrity is not None:
        print(result.integrity.summary())
    print(f"races: {result.race_count}")
    for race in result.races:
        print(" ", race.describe())
    return race_exit_code(result.race_count)


def cmd_faults(args: argparse.Namespace) -> int:
    from .faults.cli import run_faults_command

    return run_faults_command(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SWORD reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list-workloads", help="show the benchmark registry")
    p.add_argument("--suite", choices=["dataracebench", "ompscr", "hpc"])
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_list_workloads)

    p = sub.add_parser("check", help="run one workload under one tool")
    p.add_argument("workload")
    p.add_argument("--tool", choices=TOOL_NAMES, default="sword")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--salvage",
        action="store_true",
        help="tolerate trace damage during the offline phase and report "
        "what was lost (sword only)",
    )
    p.add_argument(
        "--no-static",
        action="store_true",
        help="disable the static pre-screening pass: instrument every "
        "access site instead of eliding PROVEN_FREE ones (sword only)",
    )
    _add_obs_flags(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "watch", help="run one workload with live streaming race analysis"
    )
    p.add_argument("workload")
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--stats-every",
        type=float,
        metavar="SECONDS",
        help="print a live stats line at most this often (needs metrics on)",
    )
    _add_obs_flags(p)
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser("experiment", help="regenerate one paper table/figure")
    p.add_argument("id", help="E1..E10 (see DESIGN.md)")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("analyze", help="offline-analyze a trace directory")
    p.add_argument("trace_dir")
    p.add_argument(
        "--mode",
        choices=list(api.ANALYSIS_MODES),
        default="auto",
        help="analysis strategy (auto: parallel when --workers > 1)",
    )
    p.add_argument("--workers", type=int, default=1)
    p.add_argument(
        "--no-fastpath",
        action="store_true",
        help="disable digest pruning and solver memoization",
    )
    p.add_argument(
        "--no-lazy",
        action="store_true",
        help="disable the meta-digest pre-filter (always inflate frames)",
    )
    p.add_argument(
        "--no-static",
        action="store_true",
        help="disable the PROVEN_FREE site-pair skip (synthesized "
        "DEFINITE_RACE reports are still injected)",
    )
    p.add_argument(
        "--cache",
        action="store_true",
        help="persist per-interval trees and pair verdicts next to the trace",
    )
    p.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="result-cache location (implies --cache)",
    )
    p.add_argument(
        "--salvage",
        action="store_true",
        help="tolerate trace damage: truncate at torn frames, analyze "
        "what survives, and attach an integrity report",
    )
    _add_obs_flags(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "serve",
        help="boot the fleet analysis service and drive a load burst",
    )
    from .serve.cli import add_serve_arguments, run_serve_command

    add_serve_arguments(p)
    p.set_defaults(func=lambda a: run_serve_command(a))

    p = sub.add_parser(
        "faults",
        help="fault-injection harness (inject faults into a trace, or "
        "sweep kill points over a workload)",
    )
    from .faults.cli import add_faults_subcommands

    add_faults_subcommands(p)
    p.set_defaults(func=cmd_faults)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # Uniform error surface: a torn trace in strict mode, a missing
        # directory, a bad config -- report, don't traceback.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
