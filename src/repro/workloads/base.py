"""Workload framework: model programs with documented race ground truth.

A workload is a model OpenMP program plus its metadata: which suite it
belongs to (DataRaceBench / OmpSCR / HPC), whether it is racy, how many
races its original authors documented, and how many distinct race site
pairs our model actually contains (``seeded_races`` — the reproduction's
ground truth, which SWORD is expected to find).

Programs receive ``(master, params)`` where ``params`` is a namespace of
the workload's tunables (sizes, iterations) merged with overrides — the
harness uses this for the problem-size sweeps (AMG 10^3..40^3) and thread
sweeps of Figures 7/8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Any, Callable, Optional

from ..omp.context import MasterContext

ProgramFn = Callable[[MasterContext, SimpleNamespace], Any]


@dataclass(frozen=True)
class Workload:
    """One registered model program."""

    name: str
    suite: str
    fn: ProgramFn
    racy: bool
    documented_races: int
    seeded_races: int
    description: str
    params: dict = field(default_factory=dict)
    #: Races the happens-before baseline is expected to miss (by mechanism:
    #: shadow-cell eviction or schedule masking) under the default seed.
    archer_misses: int = 0
    #: True when the happens-before verdict flips with the scheduler seed
    #: (the Figure-1 programs); such workloads have no fixed archer count.
    archer_schedule_dependent: bool = False
    notes: str = ""

    def make_params(self, **overrides: Any) -> SimpleNamespace:
        merged = dict(self.params)
        for key, value in overrides.items():
            if key not in merged:
                raise KeyError(
                    f"{self.name}: unknown parameter {key!r}; "
                    f"available: {sorted(merged)}"
                )
            merged[key] = value
        return SimpleNamespace(**merged)

    def run_program(self, master: MasterContext, **overrides: Any) -> Any:
        return self.fn(master, self.make_params(**overrides))


class WorkloadRegistry:
    """Name -> workload mapping with suite views."""

    def __init__(self) -> None:
        self._by_name: dict[str, Workload] = {}

    def add(self, workload: Workload) -> Workload:
        if workload.name in self._by_name:
            raise ValueError(f"duplicate workload {workload.name!r}")
        self._by_name[workload.name] = workload
        return workload

    def get(self, name: str) -> Workload:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r}; known: {sorted(self._by_name)}"
            ) from None

    def suite(self, suite: str) -> list[Workload]:
        return sorted(
            (w for w in self._by_name.values() if w.suite == suite),
            key=lambda w: w.name,
        )

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def __iter__(self):
        return iter(sorted(self._by_name.values(), key=lambda w: w.name))

    def __len__(self) -> int:
        return len(self._by_name)


#: The process-wide registry all suite modules populate at import time.
REGISTRY = WorkloadRegistry()


def workload(
    name: str,
    suite: str,
    *,
    racy: bool,
    documented_races: int = 0,
    seeded_races: Optional[int] = None,
    archer_misses: int = 0,
    archer_schedule_dependent: bool = False,
    description: str = "",
    notes: str = "",
    **params: Any,
) -> Callable[[ProgramFn], ProgramFn]:
    """Decorator registering a model program in :data:`REGISTRY`."""

    def _decorate(fn: ProgramFn) -> ProgramFn:
        REGISTRY.add(
            Workload(
                name=name,
                suite=suite,
                fn=fn,
                racy=racy,
                documented_races=documented_races,
                seeded_races=(
                    seeded_races if seeded_races is not None else documented_races
                ),
                description=description or (fn.__doc__ or "").strip().split("\n")[0],
                params=params,
                archer_misses=archer_misses,
                archer_schedule_dependent=archer_schedule_dependent,
                notes=notes,
            )
        )
        return fn

    return _decorate
