"""HPC benchmark models (paper §IV-C, Tables IV/V, Figures 7/8).

Scaled-down models of the four applications the paper evaluates, preserving
the structural properties its results depend on:

* **HPCCG** (Mantevo): CG solver; one documented write-write race where all
  threads store the same value into a shared residual variable — benign
  looking, undefined behaviour per the C/C++ standard (both tools find it).
* **miniFE** (CORAL): FE assembly + CG, race-free; medium footprint.
* **LULESH** (CORAL): race-free, but executes a very large number of small
  parallel regions and barriers — the property that makes SWORD's log
  collection I/O-bound (its one slowdown loss, Figure 7c) and its offline
  analysis expensive (Table V).
* **AMG2013** (CORAL): algebraic multigrid with a parameterised grid size
  (10^3..40^3).  Its one large parallel region carries 4 "known" races plus
  10 read-write races whose write records ARCHER loses to shadow-cell
  eviction; its footprint scales with the problem size (``sim_scale``
  models the production per-node footprint), so ARCHER's proportional
  shadow memory OOMs the simulated 32 GB node at 40^3 while SWORD's
  bounded per-thread buffers never do (Table IV, Figure 8).
"""

from __future__ import annotations

import numpy as np

from ...common.sourceloc import pc_of
from ...static import AffineSite, RegionSpec
from ..base import workload

_SUITE = "hpc"


def _pc(bench: str, line: int, func: str = "main") -> int:
    return pc_of(f"{bench}.c", line, func)


# ---------------------------------------------------------------------------
# HPCCG — CG with the documented benign-looking write-write race
# ---------------------------------------------------------------------------


@workload(
    "hpccg",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Conjugate gradient; shared residual written by every thread.",
    notes=(
        "The race: every thread stores the *same* residual value into a "
        "shared variable without synchronisation — undefined behaviour the "
        "paper highlights (§IV-C).  One write-write site pair."
    ),
    n=512,
    iters=6,
)
def hpccg(m, p):
    n = p.n
    # 1-D Laplacian in CSR-like dense diagonals (models the 27-pt stencil).
    x = m.alloc_array("x", n, fill=0)
    b = m.alloc_array("b", n, fill=1)
    r = m.alloc_array("r", n)
    pk = m.alloc_array("p", n)
    ap = m.alloc_array("Ap", n)
    rtrans = m.alloc_scalar("rtrans")
    alpha_den = m.alloc_scalar("alpha_den")
    normr = m.alloc_scalar("normr")  # the racy shared residual
    pc_race = _pc("hpccg", 142, "cg_iter")

    def spmv_chunk(ctx, src, dst, lo, hi):
        mid = ctx.read_slice(src, lo, hi, pc=_pc("hpccg", 98, "spmv"))
        left = ctx.read_slice(src, max(lo - 1, 0), max(hi - 1, 0),
                              pc=_pc("hpccg", 99, "spmv"))
        right = ctx.read_slice(src, min(lo + 1, n), min(hi + 1, n),
                               pc=_pc("hpccg", 100, "spmv"))
        left = np.pad(left, (mid.shape[0] - left.shape[0], 0))
        right = np.pad(right, (0, mid.shape[0] - right.shape[0]))
        ctx.write_slice(dst, lo, hi, 2.0 * mid - left - right,
                        pc=_pc("hpccg", 101, "spmv"))

    # The affine slice sites: every one chunk-disjoint, so the whole CG
    # data movement elides.  The single-thread scalar stores (rtrans /
    # alpha_den seeds), the reductions, and the racy normr store stay
    # undeclared and fully instrumented — the race is still found
    # dynamically.  Phases follow one iteration's barrier pattern
    # (singles carry an implicit exit barrier).
    spec = RegionSpec(
        iterations=n,
        sites=(
            AffineSite(_pc("hpccg", 120, "init"), b),
            AffineSite(_pc("hpccg", 121, "init"), r, is_write=True),
            AffineSite(_pc("hpccg", 122, "init"), pk, is_write=True),
            AffineSite(_pc("hpccg", 132, "ddot"), r, phase=2),
            AffineSite(_pc("hpccg", 98, "spmv"), pk, phase=3),
            AffineSite(_pc("hpccg", 99, "spmv"), pk, offset=-1, phase=3),
            AffineSite(_pc("hpccg", 100, "spmv"), pk, offset=1, phase=3),
            AffineSite(_pc("hpccg", 101, "spmv"), ap, is_write=True, phase=3),
            AffineSite(_pc("hpccg", 137, "ddot"), pk, phase=5),
            AffineSite(_pc("hpccg", 138, "ddot"), ap, phase=5),
            AffineSite(_pc("hpccg", 140, "waxpby"), x, phase=6),
            AffineSite(_pc("hpccg", 141, "waxpby"), x, is_write=True, phase=6),
            AffineSite(_pc("hpccg", 141, "waxpby2"), r, is_write=True, phase=6),
            AffineSite(_pc("hpccg", 145, "waxpby"), r, phase=7),
            AffineSite(_pc("hpccg", 146, "waxpby"), pk, is_write=True, phase=7),
        ),
        complete=False,
    )

    def body(ctx):
        lo, hi = ctx.static_chunk(n)
        bv = ctx.read_slice(b, lo, hi, pc=_pc("hpccg", 120, "init"))
        ctx.write_slice(r, lo, hi, bv, pc=_pc("hpccg", 121, "init"))
        ctx.write_slice(pk, lo, hi, bv, pc=_pc("hpccg", 122, "init"))
        ctx.barrier()
        for _ in range(p.iters):
            # rtrans = r . r  (correct reduction)
            with ctx.single() as mine:
                if mine:
                    ctx.write(rtrans, 0, 0.0, pc=_pc("hpccg", 130, "ddot"))
            rv = ctx.read_slice(r, lo, hi, pc=_pc("hpccg", 132, "ddot"))
            ctx.reduce_add(rtrans, 0, float(rv @ rv), pc=_pc("hpccg", 133, "ddot"))
            ctx.barrier()
            spmv_chunk(ctx, pk, ap, lo, hi)
            ctx.barrier()
            with ctx.single() as mine:
                if mine:
                    ctx.write(alpha_den, 0, 0.0, pc=_pc("hpccg", 136, "ddot"))
            pv = ctx.read_slice(pk, lo, hi, pc=_pc("hpccg", 137, "ddot"))
            av = ctx.read_slice(ap, lo, hi, pc=_pc("hpccg", 138, "ddot"))
            ctx.reduce_add(alpha_den, 0, float(pv @ av), pc=_pc("hpccg", 139, "ddot"))
            ctx.barrier()
            num = float(m.data(rtrans)[0])
            den = float(m.data(alpha_den)[0]) or 1.0
            alpha = num / den
            xv = ctx.read_slice(x, lo, hi, pc=_pc("hpccg", 140, "waxpby"))
            ctx.write_slice(x, lo, hi, xv + alpha * pv, pc=_pc("hpccg", 141, "waxpby"))
            ctx.write_slice(r, lo, hi, rv - alpha * av, pc=_pc("hpccg", 141, "waxpby2"))
            # THE RACE: every thread stores the same residual value.
            ctx.write(normr, 0, float(np.sqrt(max(num, 0.0))), pc=pc_race)
            ctx.barrier()
            beta = 1.0 / max(num, 1e-30) * max(num * 0.5, 1e-30)
            rv2 = ctx.read_slice(r, lo, hi, pc=_pc("hpccg", 145, "waxpby"))
            ctx.write_slice(pk, lo, hi, rv2 + beta * pv, pc=_pc("hpccg", 146, "waxpby"))
            ctx.barrier()

    m.parallel(body, static=spec)


# ---------------------------------------------------------------------------
# miniFE — race-free FE assembly + CG
# ---------------------------------------------------------------------------


@workload(
    "minife",
    _SUITE,
    racy=False,
    description="Finite-element assembly and CG solve, correctly synchronised.",
    n=400,
    iters=5,
)
def minife(m, p):
    n = p.n
    diag = m.alloc_array("diag", n, fill=4)
    off = m.alloc_array("off", n, fill=-1)
    rhs = m.alloc_array("rhs", n)
    x = m.alloc_array("x", n, fill=0)
    r = m.alloc_array("r", n)
    dot = m.alloc_scalar("dot")

    # The dot scalar stays undeclared: it is written inside the single
    # (outside reduce_add), so the reduction contract does not hold.
    spec = RegionSpec(
        iterations=n,
        sites=(
            AffineSite(_pc("minife", 77, "assemble"), diag, is_write=True),
            AffineSite(_pc("minife", 78, "assemble"), rhs, is_write=True),
            AffineSite(_pc("minife", 90, "solve"), diag, phase=1),
            AffineSite(_pc("minife", 91, "solve"), off, phase=1),
            AffineSite(_pc("minife", 92, "solve"), x, phase=1),
            AffineSite(_pc("minife", 93, "solve"), rhs, phase=1),
            AffineSite(_pc("minife", 94, "solve"), r, is_write=True, phase=1),
            AffineSite(_pc("minife", 99, "solve"), x, is_write=True, phase=2),
        ),
        complete=False,
    )

    def body(ctx):
        lo, hi = ctx.static_chunk(n)
        # Assembly: each thread owns disjoint rows.
        ctx.write_slice(diag, lo, hi, 4.0 + np.zeros(hi - lo),
                        pc=_pc("minife", 77, "assemble"))
        ctx.write_slice(rhs, lo, hi, np.ones(hi - lo),
                        pc=_pc("minife", 78, "assemble"))
        ctx.barrier()
        for _ in range(p.iters):
            d = ctx.read_slice(diag, lo, hi, pc=_pc("minife", 90, "solve"))
            o = ctx.read_slice(off, lo, hi, pc=_pc("minife", 91, "solve"))
            xv = ctx.read_slice(x, lo, hi, pc=_pc("minife", 92, "solve"))
            bv = ctx.read_slice(rhs, lo, hi, pc=_pc("minife", 93, "solve"))
            res = bv - d * xv - o * xv
            ctx.write_slice(r, lo, hi, res, pc=_pc("minife", 94, "solve"))
            with ctx.single() as mine:
                if mine:
                    ctx.write(dot, 0, 0.0, pc=_pc("minife", 96, "solve"))
            ctx.reduce_add(dot, 0, float(res @ res), pc=_pc("minife", 97, "solve"))
            ctx.barrier()
            ctx.write_slice(x, lo, hi, xv + 0.25 * res, pc=_pc("minife", 99, "solve"))
            ctx.barrier()

    m.parallel(body, static=spec)


# ---------------------------------------------------------------------------
# LULESH — race-free; very many small regions (I/O pressure for SWORD)
# ---------------------------------------------------------------------------


@workload(
    "lulesh",
    _SUITE,
    racy=False,
    description="Shock hydro time stepping: many small regions and barriers.",
    notes=(
        "The structural point (Figure 7c / Table V): ~8 parallel regions "
        "per time step over many steps inflate SWORD's per-region metadata "
        "and I/O, making its collection slower than ARCHER's here."
    ),
    nelem=96,
    steps=40,
)
def lulesh(m, p):
    n = p.nelem
    coords = m.alloc_array("coords", n, fill=0)
    vel = m.alloc_array("vel", n, fill=0)
    force = m.alloc_array("force", n, fill=0)
    energy = m.alloc_array("energy", n, fill=1)
    pressure = m.alloc_array("pressure", n, fill=1)
    q = m.alloc_array("q", n, fill=0)
    vol = m.alloc_array("vol", n, fill=1)
    dt = m.alloc_scalar("dt", fill=1e-3)

    def kernel(name, line, reads, writes, f):
        """One LULESH sub-kernel = one parallel region."""

        spec = RegionSpec(
            iterations=n,
            sites=tuple(
                [
                    AffineSite(_pc("lulesh", line + k, name), a)
                    for k, a in enumerate(reads)
                ]
                + [
                    AffineSite(
                        _pc("lulesh", line + 10 + k, name), a, is_write=True
                    )
                    for k, a in enumerate(writes)
                ]
            ),
            complete=True,
        )

        def body(ctx):
            lo, hi = ctx.static_chunk(n)
            ins = [
                ctx.read_slice(a, lo, hi, pc=_pc("lulesh", line + k, name))
                for k, a in enumerate(reads)
            ]
            outs = f(*ins)
            if not isinstance(outs, tuple):
                outs = (outs,)
            for k, (a, v) in enumerate(zip(writes, outs)):
                ctx.write_slice(a, lo, hi, v, pc=_pc("lulesh", line + 10 + k, name))

        m.parallel(body, static=spec)

    for _step in range(p.steps):
        kernel("CalcForce", 100, [pressure, q], [force],
               lambda pr, qq: -(pr + qq))
        kernel("CalcAccel", 120, [force], [vel],
               lambda fo: fo * 1e-3)
        kernel("CalcPos", 140, [coords, vel], [coords],
               lambda c, v: c + v * 1e-3)
        kernel("CalcKinematics", 160, [coords], [vol],
               lambda c: 1.0 + 0.01 * np.abs(c))
        kernel("CalcQ", 180, [vel, vol], [q],
               lambda v, vo: np.abs(v) / vo)
        kernel("CalcEOS", 200, [energy, vol], [pressure],
               lambda e, vo: e / vo)
        kernel("CalcEnergy", 220, [pressure, vol], [energy],
               lambda pr, vo: np.maximum(pr * vo, 1e-9))

        # The dt store is master-only (not affine), so it stays
        # undeclared and instrumented; only the vel sweep elides.
        dt_spec = RegionSpec(
            iterations=n,
            sites=(AffineSite(_pc("lulesh", 240, "UpdateDt"), vel),),
            complete=False,
        )

        def update_dt(ctx):
            # Courant reduction: every thread reads its chunk's velocities;
            # only the master stores the new dt (after the implicit join of
            # the previous region, so this is race-free).
            lo, hi = ctx.static_chunk(n)
            v = ctx.read_slice(vel, lo, hi, pc=_pc("lulesh", 240, "UpdateDt"))
            _ = float(np.abs(v).max()) if v.shape[0] else 0.0
            ctx.barrier()
            if ctx.master():
                ctx.write(dt, 0, 1e-3, pc=_pc("lulesh", 244, "UpdateDt"))

        m.parallel(update_dt, static=dt_spec)


# ---------------------------------------------------------------------------
# AMG2013 — grid-size-parameterised multigrid with the seeded race families
# ---------------------------------------------------------------------------

#: Simulated per-gridpoint footprint: calibrated so the 40^3 problem's
#: application memory times ARCHER's 5-7x overhead exceeds a 32 GiB node
#: while 30^3 fits (Table IV / Figure 8 crossover).
AMG_SIM_BYTES_PER_POINT = 110 * 1024

#: Number of eviction-missed read-write races in the large region (paper:
#: 10 additional races SWORD detects that ARCHER misses at every size).
AMG_HIDDEN_RACES = 10
#: Number of "known" races both tools detect.
AMG_KNOWN_RACES = 4


def _amg_program(m, p):
    npts = p.size ** 3
    sim_scale = max(1, AMG_SIM_BYTES_PER_POINT // 8 // 6)
    u = m.alloc_array("amg.u", npts, fill=0, sim_scale=sim_scale)
    f = m.alloc_array("amg.f", npts, fill=1, sim_scale=sim_scale)
    r = m.alloc_array("amg.r", npts, fill=0, sim_scale=sim_scale)
    coarse = m.alloc_array("amg.coarse", max(npts // 8, 8), fill=0,
                           sim_scale=sim_scale)
    aux = m.alloc_array("amg.aux", npts, fill=0, sim_scale=sim_scale)
    work = m.alloc_array("amg.work", npts, fill=0, sim_scale=sim_scale)
    # Shared scalars carrying the seeded races.
    known = [m.alloc_scalar(f"amg.known{k}") for k in range(AMG_KNOWN_RACES)]
    hidden = [m.alloc_scalar(f"amg.hidden{k}") for k in range(AMG_HIDDEN_RACES)]
    pc_known_w = [
        _pc("amg2013", 300 + k, "solve_store") for k in range(AMG_KNOWN_RACES)
    ]
    pc_hidden_w = [_pc("amg2013", 400 + k, "setup") for k in range(AMG_HIDDEN_RACES)]
    pc_hidden_r = [
        _pc("amg2013", 420 + k, "solve") for k in range(AMG_HIDDEN_RACES)
    ]
    # Columnar fast path: the per-sweep flag stores and stat polls are
    # irregular (scattered scalars, one pc each), so they batch through
    # record_batch with parallel addr/pc columns rather than touch_range.
    known_addrs = np.array([c.addr(0) for c in known], dtype=np.uint64)
    hidden_addrs = np.array([c.addr(0) for c in hidden], dtype=np.uint64)
    known_pcs = np.array(pc_known_w, dtype=np.uint64)
    hidden_r_pcs = np.array(pc_hidden_r, dtype=np.uint64)
    hidden_w_pcs = np.array(pc_hidden_w, dtype=np.uint64)

    # Declared: the chunk-disjoint fine-grid sweeps (relax + prolong).
    # Left out on purpose: the racy flag/stat scalars (the seeded races
    # must stay instrumented), the residual array r (its restrict read
    # iterates the coarse index space — not expressible in one spec's
    # iteration count — so both r sites stay instrumented), and coarse.
    spec = RegionSpec(
        iterations=npts,
        sites=(
            AffineSite(_pc("amg2013", 210, "relax"), u),
            AffineSite(_pc("amg2013", 211, "relax"), f),
            AffineSite(_pc("amg2013", 212, "relax"), u, is_write=True),
            AffineSite(_pc("amg2013", 214, "relax"), work, is_write=True),
            AffineSite(_pc("amg2013", 260, "prolong"), u, phase=2),
            AffineSite(_pc("amg2013", 261, "prolong"), aux, is_write=True, phase=2),
        ),
        complete=False,
    )

    def body(ctx):
        # --- one large parallel region (~the paper's 400-LOC region) ---
        lo, hi = ctx.static_chunk(npts)
        # Hidden-race seeds: the claiming thread (the master, which has the
        # head start) writes each stat cell once, then re-reads them all
        # every sweep — evicting its own write records from ARCHER's cells.
        with ctx.single(nowait=True) as mine:
            if mine:
                if p.batched:
                    for k, cell in enumerate(hidden):
                        cell.data.reshape(-1)[0] = float(k)
                    ctx.record_batch(
                        hidden_addrs, size=8, is_write=True, pc=hidden_w_pcs
                    )
                else:
                    for k, cell in enumerate(hidden):
                        ctx.write(cell, 0, float(k), pc=pc_hidden_w[k])
        for sweep in range(p.sweeps):
            # Relaxation: disjoint chunks, race-free.
            uv = ctx.read_slice(u, lo, hi, pc=_pc("amg2013", 210, "relax"))
            fv = ctx.read_slice(f, lo, hi, pc=_pc("amg2013", 211, "relax"))
            ctx.write_slice(u, lo, hi, 0.8 * uv + 0.2 * fv,
                            pc=_pc("amg2013", 212, "relax"))
            ctx.write_slice(r, lo, hi, fv - uv, pc=_pc("amg2013", 213, "relax"))
            ctx.write_slice(work, lo, hi, uv * 0.5, pc=_pc("amg2013", 214, "relax"))
            # Known races: unsynchronised convergence flags (every thread
            # stores into them each sweep -> one write-write pair per flag).
            # Hidden races: everyone polls the stat cells each sweep; the
            # master's polls evicted its own writes long before workers run.
            if p.batched:
                for cell in known:
                    cell.data.reshape(-1)[0] = float(sweep)
                ctx.record_batch(
                    known_addrs, size=8, is_write=True, pc=known_pcs
                )
                ctx.record_batch(
                    hidden_addrs, size=8, is_write=False, pc=hidden_r_pcs
                )
            else:
                for k, cell in enumerate(known):
                    ctx.write(cell, 0, float(sweep), pc=pc_known_w[k])
                for k, cell in enumerate(hidden):
                    ctx.read(cell, 0, pc=pc_hidden_r[k])
        ctx.barrier()
        # Coarse-grid correction (race-free: disjoint coarse chunks).
        clo, chi = ctx.static_chunk(len(coarse))
        if chi > clo:
            rv = ctx.read_slice(r, clo * 8, min(chi * 8, npts),
                                pc=_pc("amg2013", 240, "restrict"))
            agg = rv.reshape(-1, 8).mean(axis=1) if rv.shape[0] >= 8 else rv[:1]
            agg = np.resize(agg, chi - clo)
            ctx.write_slice(coarse, clo, chi, agg, pc=_pc("amg2013", 241, "restrict"))
        ctx.barrier()
        av = ctx.read_slice(u, lo, hi, pc=_pc("amg2013", 260, "prolong"))
        ctx.write_slice(aux, lo, hi, av, pc=_pc("amg2013", 261, "prolong"))

    m.parallel(body, static=spec)


for _size in (10, 20, 30, 40):
    workload(
        f"amg2013_{_size}",
        _SUITE,
        racy=True,
        documented_races=AMG_KNOWN_RACES,
        seeded_races=AMG_KNOWN_RACES + AMG_HIDDEN_RACES,
        archer_misses=AMG_HIDDEN_RACES,
        description=f"Algebraic multigrid, {_size}^3 grid (paper's AMG2013_{_size}).",
        notes=(
            "4 known counter races (both tools) + 10 eviction-missed stat "
            "races (SWORD only).  Footprint scales as size^3 via sim_scale."
        ),
        size=_size,
        sweeps=6,
        batched=1,
    )(_amg_program)
