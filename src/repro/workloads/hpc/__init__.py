"""HPC mini-app models (HPCCG, miniFE, LULESH, AMG2013)."""
