"""Model workloads: DataRaceBench, OmpSCR, and HPC suites.

Importing this package populates :data:`repro.workloads.base.REGISTRY` with
every benchmark.
"""

from .base import REGISTRY, Workload, WorkloadRegistry, workload

# Suite modules register themselves on import.
from .dataracebench import suite as _drb_suite  # noqa: F401
from .ompscr import suite as _ompscr_suite  # noqa: F401
from .hpc import suite as _hpc_suite  # noqa: F401
from .paper import suite as _paper_suite  # noqa: F401
from .staticlab import suite as _staticlab_suite  # noqa: F401
from .tasking import suite as _tasking_suite  # noqa: F401

__all__ = ["REGISTRY", "Workload", "WorkloadRegistry", "workload"]
