"""OmpSCR model suite (paper §IV-B, Tables II/III, Figure 6).

Ports of the OmpSCR benchmarks preserving each one's documented race
mechanism plus the *undocumented* races the paper reports SWORD finding
(in ``c_md``, ``c_testPath``, ``cpp_qsomp{1,2,5,6}``):

* documented races are plain unordered conflicts both tools catch;
* the SWORD-only races are seeded with the two mechanisms §I/§II describe —
  shadow-cell eviction (a writer's own re-reads purge its write record
  before any reader arrives) and happens-before masking (an unlocked access
  ordered behind a lock edge by the observed schedule);
* the race-free benchmarks (pi, jacobi, lu, fft, loop solutions) are the
  false-positive control and also carry the compute kernels used for the
  Figure-6 overhead measurements.
"""

from __future__ import annotations

import numpy as np

from ...common.sourceloc import pc_of
from ...static import AffineSite, RegionSpec
from ..base import workload

_SUITE = "ompscr"


def _pc(bench: str, line: int, func: str = "main") -> int:
    return pc_of(f"{bench}.c", line, func)


# ---------------------------------------------------------------------------
# Racy benchmarks
# ---------------------------------------------------------------------------


@workload(
    "c_loopA.badSolution",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Wavefront loop parallelised ignoring the true dependence.",
    n=128,
    batched=1,
)
def loopa_bad(m, p):
    a = m.alloc_array("a", p.n, fill=1)
    pc_r = _pc("c_loopA.badSolution", 40)
    pc_w = _pc("c_loopA.badSolution", 40, "store")

    def body(ctx):
        if p.batched:
            # Columnar fast path: one batch of reads and one of writes per
            # loop nest.  The chunk's sequential semantics cascade a[lo]
            # forward, so the data movement vectorises exactly.
            lo, hi = ctx.static_chunk(p.n - 1)
            if hi > lo:
                flat = m.data(a)
                flat[lo + 1 : hi + 1] = flat[lo] + np.arange(1, hi - lo + 1)
                ctx.touch_range(a, lo, hi, is_write=False, pc=pc_r)
                ctx.touch_range(a, lo + 1, hi + 1, is_write=True, pc=pc_w)
            ctx.barrier()
        else:
            for i in ctx.for_range(p.n - 1):
                v = ctx.read(a, i, pc=pc_r)
                ctx.write(a, i + 1, v + 1.0, pc=pc_w)

    m.parallel(body)


@workload(
    "c_loopB.badSolution1",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Doubly nested wavefront with the inner dependence ignored.",
    n=96,
    batched=1,
)
def loopb_bad(m, p):
    a = m.alloc_array("a", p.n, fill=2)
    pc_r = _pc("c_loopB.badSolution1", 47)
    pc_w = _pc("c_loopB.badSolution1", 47, "store")

    def body(ctx):
        for _sweep in range(2):
            if p.batched:
                # a[i] = 0.5*a[i+2] has no intra-chunk dependence (every
                # read index is ahead of every prior write index).
                lo, hi = ctx.static_chunk(p.n - 2)
                if hi > lo:
                    flat = m.data(a)
                    flat[lo:hi] = 0.5 * flat[lo + 2 : hi + 2]
                    ctx.touch_range(a, lo + 2, hi + 2, is_write=False, pc=pc_r)
                    ctx.touch_range(a, lo, hi, is_write=True, pc=pc_w)
                ctx.barrier()
            else:
                for i in ctx.for_range(p.n - 2):
                    v = ctx.read(a, i + 2, pc=pc_r)
                    ctx.write(a, i, 0.5 * v, pc=pc_w)

    m.parallel(body)


@workload(
    "c_md",
    _SUITE,
    racy=True,
    documented_races=2,
    seeded_races=5,
    archer_misses=1,
    description="Molecular dynamics: racy force scatter + potential update.",
    notes=(
        "Documented: the unsynchronised force scatter f[j] and the shared "
        "potential accumulation.  SWORD additionally finds the kinetic-"
        "energy seed write, which ARCHER loses to shadow eviction (the "
        "writer re-reads it every iteration of its chunk)."
    ),
    nparts=48,
    neighbors=4,
)
def c_md(m, p):
    n = p.nparts
    pos = m.alloc_array("pos", n, fill=0)
    f = m.alloc_array("f", n)
    pot = m.alloc_scalar("pot")
    kin = m.alloc_scalar("kin")
    m.data(pos)[:] = np.linspace(0.0, 1.0, n)
    pc_fr = _pc("c_md", 88, "compute")
    pc_fw = _pc("c_md", 88, "compute_store")
    pc_pr = _pc("c_md", 92, "compute")
    pc_pw = _pc("c_md", 92, "compute_store")
    pc_kw = _pc("c_md", 70, "init")
    pc_kr = _pc("c_md", 96, "compute")

    def body(ctx):
        # The kinetic seed: written once by whichever thread initialises it
        # (the master, which then re-reads it along its whole chunk).
        with ctx.single(nowait=True) as mine:
            if mine:
                ctx.write(kin, 0, 1.0, pc=pc_kw)
        for i in ctx.for_range(n):
            xi = ctx.read(pos, i, pc=_pc("c_md", 85, "compute"))
            for dj in range(1, p.neighbors + 1):
                j = (i + dj) % n
                xj = ctx.read(pos, j, pc=_pc("c_md", 86, "compute"))
                d = float(xj - xi) or 1e-9
                # Documented race 1: unsynchronised scatter to f[j].
                fj = ctx.read(f, j, pc=pc_fr)
                ctx.write(f, j, fj + 1.0 / (d * d), pc=pc_fw)
            # Documented race 2: shared potential without reduction.
            pv = ctx.read(pot, 0, pc=pc_pr)
            ctx.write(pot, 0, pv + abs(float(xi)), pc=pc_pw)
            # SWORD-only: every iteration re-reads the kinetic seed.
            ctx.read(kin, 0, pc=pc_kr)

    m.parallel(body)


@workload(
    "c_mandel",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=2,
    description="Mandelbrot area: numoutside counter updated without sync.",
    notes="The read-write half of the increment is the undocumented extra.",
    width=24,
    max_iter=12,
)
def c_mandel(m, p):
    n = p.width * p.width
    outside = m.alloc_scalar("numoutside", dtype=np.int64)
    pc_r = _pc("c_mandel", 73, "testpoint")
    pc_w = _pc("c_mandel", 73, "testpoint_store")

    def body(ctx):
        for k in ctx.for_range(n, schedule="dynamic", chunk=8):
            cx = -2.0 + 2.5 * (k % p.width) / p.width
            cy = -1.125 + 2.25 * (k // p.width) / p.width
            z = complex(0.0, 0.0)
            c = complex(cx, cy)
            escaped = False
            for _ in range(p.max_iter):
                z = z * z + c
                if (z.real * z.real + z.imag * z.imag) > 4.0:
                    escaped = True
                    break
            if escaped:
                v = ctx.read(outside, 0, pc=pc_r)
                ctx.write(outside, 0, v + 1, pc=pc_w)

    m.parallel(body)


@workload(
    "c_testPath",
    _SUITE,
    racy=True,
    documented_races=0,
    seeded_races=1,
    archer_misses=1,
    description="Path tester: unlocked best-cost fast path vs locked update.",
    notes=(
        "The SWORD-only race the paper reports: the encountering thread "
        "seeds best[0] without the lock before entering the locked update "
        "protocol; the observed release->acquire order masks it from the "
        "happens-before baseline."
    ),
    npaths=32,
)
def c_testpath(m, p):
    best = m.alloc_scalar("best", fill=1e18)
    costs = m.alloc_array("costs", p.npaths, fill=0)
    m.data(costs)[:] = np.abs(np.sin(np.arange(p.npaths))) * 100 + 1
    lock_line = _pc("c_testPath", 66, "update")
    pc_seed = _pc("c_testPath", 58, "seed")

    def body(ctx):
        if ctx.tid == 0:
            # Unlocked seeding write (the race).
            ctx.write(best, 0, 999.0, pc=pc_seed)
        for i in ctx.for_range(p.npaths):
            cost = float(m.data(costs)[i])
            with ctx.critical("best"):
                cur = ctx.read(best, 0, pc=lock_line)
                if cost < cur:
                    ctx.write(best, 0, cost, pc=_pc("c_testPath", 68, "update"))

    m.parallel(body)


def _qsomp(bench: str, *, documented: int, n: int):
    """Quicksort-over-shared-stack family (cpp_qsomp*).

    All variants sort for real using an explicit work stack guarded by one
    lock.  The seeded SWORD-only race: the encountering thread initialises
    the stack top *before* taking the lock; every later stack operation is
    locked, so the observed lock chain happens-before-orders the seed write
    for ARCHER while SWORD's mutex-set comparison still flags it.  Variants
    with a documented race additionally publish the sorted-range counter
    without synchronisation.
    """

    pc_seed = _pc(bench, 41, "init")
    pc_pop = _pc(bench, 55, "worker")
    pc_done_w = _pc(bench, 70, "worker")
    pc_done_r = _pc(bench, 72, "worker")

    def program(m, p):
        data = m.alloc_array("data", p.n)
        m.data(data)[:] = np.sin(np.arange(p.n)) * 1000
        stack = m.alloc_array("stack", 2 * (p.n + 4), dtype=np.int64)
        top = m.alloc_scalar("top", dtype=np.int64)
        done = m.alloc_scalar("done", dtype=np.int64)
        # Runtime-internal termination state (not part of the modelled
        # access stream, like a real runtime's taskwait bookkeeping).
        state = {"remaining": p.n}

        def body(ctx):
            if ctx.tid == 0:
                # Racy unlocked seeding of the shared stack top.
                ctx.write(stack, 0, 0, pc=pc_seed)
                ctx.write(stack, 1, p.n - 1, pc=pc_seed)
                ctx.write(top, 0, 1, pc=_pc(bench, 43, "init"))
            flat = m.data(data)
            while state["remaining"] > 0:
                with ctx.critical(f"{bench}.stack"):
                    t = int(ctx.read(top, 0, pc=pc_pop))
                    if t <= 0:
                        job = None
                    else:
                        lo = int(ctx.read(stack, 2 * (t - 1), pc=pc_pop))
                        hi = int(ctx.read(stack, 2 * (t - 1) + 1, pc=pc_pop))
                        ctx.write(top, 0, t - 1, pc=pc_pop)
                        job = (lo, hi)
                if job is None:
                    # Nothing to steal yet: poll again (the lock acquire is
                    # the scheduling point that lets producers progress).
                    continue
                lo, hi = job
                if hi - lo < 8:
                    flat[lo : hi + 1] = np.sort(flat[lo : hi + 1])
                    ctx.write_slice(data, lo, hi + 1, flat[lo : hi + 1],
                                    pc=_pc(bench, 60, "worker"))
                    if documented:
                        # Documented race: unsynchronised progress counter.
                        d = ctx.read(done, 0, pc=pc_done_r)
                        ctx.write(done, 0, d + (hi - lo + 1), pc=pc_done_w)
                    state["remaining"] -= hi - lo + 1
                    continue
                pivot = flat[(lo + hi) // 2]
                i, j = lo, hi
                while i <= j:
                    while flat[i] < pivot:
                        i += 1
                    while flat[j] > pivot:
                        j -= 1
                    if i <= j:
                        flat[i], flat[j] = flat[j], flat[i]
                        i += 1
                        j -= 1
                ctx.write_slice(data, lo, hi + 1, flat[lo : hi + 1],
                                pc=_pc(bench, 64, "worker"))
                pushes = []
                if lo < j:
                    pushes.append((lo, j))
                if i < hi:
                    pushes.append((i, hi))
                with ctx.critical(f"{bench}.stack"):
                    t = int(ctx.read(top, 0, pc=pc_pop))
                    for (plo, phi) in pushes:
                        ctx.write(stack, 2 * t, plo, pc=_pc(bench, 67, "worker"))
                        ctx.write(stack, 2 * t + 1, phi, pc=_pc(bench, 67, "worker"))
                        t += 1
                    ctx.write(top, 0, t, pc=_pc(bench, 68, "worker"))
                # Elements outside the pushed sub-ranges are in final
                # position; account for them in one atomic-enough update.
                pushed = sum(phi - plo + 1 for (plo, phi) in pushes)
                state["remaining"] -= (hi - lo + 1) - pushed
            ctx.barrier()

        m.parallel(body)
        assert (np.diff(m.data(data)) >= 0).all(), f"{bench}: sort failed"

    return program


for _name, _doc in (
    ("cpp_qsomp1", 1),
    ("cpp_qsomp2", 1),
    ("cpp_qsomp5", 0),
    ("cpp_qsomp6", 1),
):
    workload(
        _name,
        _SUITE,
        racy=True,
        documented_races=_doc,
        # SWORD-only pairs: 4 from the unlocked stack seeding (masked for
        # happens-before by the observed lock chain) + 2 from data-range
        # writebacks handed off through the locked work queue (ordered for
        # happens-before, concurrent-by-design under SWORD's barrier-
        # interval semantics).  The documented counter race adds 2 pairs
        # (R-W and W-W) that both tools see.
        seeded_races=(_doc * 2) + 6,
        archer_misses=6,
        description="Quicksort over a shared lock-guarded work stack.",
        notes=(
            "The 6 SWORD-only pairs model the paper's undocumented qsomp "
            "races: lock-masked seeding plus queue-handoff writebacks."
        ),
        n=64,
    )(_qsomp(_name, documented=_doc, n=64))


# ---------------------------------------------------------------------------
# Race-free benchmarks (compute kernels for the Figure-6 overhead runs)
# ---------------------------------------------------------------------------


@workload(
    "c_loopA.solution1",
    _SUITE,
    racy=False,
    description="Wavefront loop fixed by phase splitting.",
    n=128,
)
def loopa_ok(m, p):
    a = m.alloc_array("a", p.n, fill=1)
    b = m.alloc_array("b", p.n)
    pc_ra = _pc("c_loopA.solution1", 52)
    pc_wb = _pc("c_loopA.solution1", 53)
    pc_rb = _pc("c_loopA.solution1", 55)
    pc_wa = _pc("c_loopA.solution1", 56)
    spec = RegionSpec(
        iterations=p.n - 1,
        sites=(
            AffineSite(pc_ra, a),
            AffineSite(pc_wb, b, offset=1, is_write=True),
            AffineSite(pc_rb, b, offset=1, phase=1),
            AffineSite(pc_wa, a, offset=1, is_write=True, phase=1),
        ),
        complete=True,
    )

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n - 1)
        src = ctx.read_slice(a, lo, hi, pc=pc_ra)
        ctx.write_slice(b, lo + 1, hi + 1, src + 1.0, pc=pc_wb)
        ctx.barrier()
        dst = ctx.read_slice(b, lo + 1, hi + 1, pc=pc_rb)
        ctx.write_slice(a, lo + 1, hi + 1, dst, pc=pc_wa)

    m.parallel(body, static=spec)


@workload(
    "cpp_qsomp3",
    _SUITE,
    racy=False,
    description="Quicksort variant with fully locked stack protocol.",
    n=64,
)
def qsomp3_ok(m, p):
    data = m.alloc_array("data", p.n)
    m.data(data)[:] = np.cos(np.arange(p.n)) * 500
    pc_w = _pc("cpp_qsomp3", 49)
    spec = RegionSpec(
        iterations=p.n,
        sites=(AffineSite(pc_w, data, is_write=True),),
        complete=True,
    )

    def body(ctx):
        # The fixed variant partitions statically: each thread sorts its own
        # slice, then the master merges after the implicit barrier.
        lo, hi = ctx.static_chunk(p.n)
        flat = m.data(data)
        flat[lo:hi] = np.sort(flat[lo:hi])
        ctx.write_slice(data, lo, hi, flat[lo:hi], pc=pc_w)

    m.parallel(body, static=spec)
    arr = m.data(data)
    arr[:] = np.sort(arr)


@workload(
    "c_pi",
    _SUITE,
    racy=False,
    description="Pi by numerical integration with a proper reduction.",
    n=4096,
)
def c_pi(m, p):
    total = m.alloc_scalar("pi")
    xs = m.alloc_array("xs", p.n)
    m.data(xs)[:] = (np.arange(p.n) + 0.5) / p.n
    pc_x = _pc("c_pi", 38)
    pc_red = _pc("c_pi", 40)
    spec = RegionSpec(
        iterations=p.n,
        sites=(AffineSite(pc_x, xs),),
        reduction_pcs=(pc_red,),
        complete=True,
    )

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        x = ctx.read_slice(xs, lo, hi, pc=pc_x)
        local = float((4.0 / (1.0 + x * x)).sum() / p.n)
        ctx.reduce_add(total, 0, local, pc=pc_red)
        ctx.barrier()

    m.parallel(body, static=spec)
    assert abs(m.data(total)[0] - np.pi) < 1e-3


@workload(
    "c_jacobi01",
    _SUITE,
    racy=False,
    description="Jacobi solver: barriered sweep with double buffering.",
    n=128,
    sweeps=4,
)
def c_jacobi01(m, p):
    u = m.alloc_array("u", p.n, fill=0)
    unew = m.alloc_array("unew", p.n, fill=0)
    m.data(u)[0] = 1.0
    m.data(u)[-1] = 1.0
    pc_l = _pc("c_jacobi01", 66)
    pc_r = _pc("c_jacobi01", 67)
    pc_w = _pc("c_jacobi01", 68)
    pc_cp_r = _pc("c_jacobi01", 70)
    pc_cp_w = _pc("c_jacobi01", 71)
    # One sweep's phase pattern; every sweep repeats the same pcs in the
    # same relative phases, and sweeps are barrier-separated.
    spec = RegionSpec(
        iterations=p.n - 2,
        sites=(
            AffineSite(pc_l, u),
            AffineSite(pc_r, u, offset=2),
            AffineSite(pc_w, unew, offset=1, is_write=True),
            AffineSite(pc_cp_r, unew, offset=1, phase=1),
            AffineSite(pc_cp_w, u, offset=1, is_write=True, phase=1),
        ),
        complete=True,
    )

    def body(ctx):
        for _ in range(p.sweeps):
            lo, hi = ctx.static_chunk(p.n - 2)
            lo, hi = lo + 1, hi + 1
            left = ctx.read_slice(u, lo - 1, hi - 1, pc=pc_l)
            right = ctx.read_slice(u, lo + 1, hi + 1, pc=pc_r)
            ctx.write_slice(unew, lo, hi, 0.5 * (left + right), pc=pc_w)
            ctx.barrier()
            vals = ctx.read_slice(unew, lo, hi, pc=pc_cp_r)
            ctx.write_slice(u, lo, hi, vals, pc=pc_cp_w)
            ctx.barrier()

    m.parallel(body, static=spec)


@workload(
    "c_jacobi02",
    _SUITE,
    racy=False,
    description="Jacobi variant with residual reduction per sweep.",
    n=128,
    sweeps=3,
)
def c_jacobi02(m, p):
    u = m.alloc_array("u", p.n, fill=0)
    unew = m.alloc_array("unew", p.n, fill=0)
    resid = m.alloc_scalar("resid")
    m.data(u)[0] = 1.0
    pc_l = _pc("c_jacobi02", 70)
    pc_r = _pc("c_jacobi02", 71)
    pc_w = _pc("c_jacobi02", 72)
    pc_old = _pc("c_jacobi02", 73)
    pc_red = _pc("c_jacobi02", 74)
    pc_cp_r = _pc("c_jacobi02", 76)
    pc_cp_w = _pc("c_jacobi02", 77)
    spec = RegionSpec(
        iterations=p.n - 2,
        sites=(
            AffineSite(pc_l, u),
            AffineSite(pc_r, u, offset=2),
            AffineSite(pc_w, unew, offset=1, is_write=True),
            AffineSite(pc_old, u, offset=1),
            AffineSite(pc_cp_r, unew, offset=1, phase=1),
            AffineSite(pc_cp_w, u, offset=1, is_write=True, phase=1),
        ),
        reduction_pcs=(pc_red,),
        complete=True,
    )

    def body(ctx):
        for _ in range(p.sweeps):
            lo, hi = ctx.static_chunk(p.n - 2)
            lo, hi = lo + 1, hi + 1
            left = ctx.read_slice(u, lo - 1, hi - 1, pc=pc_l)
            right = ctx.read_slice(u, lo + 1, hi + 1, pc=pc_r)
            new = 0.5 * (left + right)
            ctx.write_slice(unew, lo, hi, new, pc=pc_w)
            old = ctx.read_slice(u, lo, hi, pc=pc_old)
            ctx.reduce_add(resid, 0, float(np.abs(new - old).sum()), pc=pc_red)
            ctx.barrier()
            ctx.write_slice(u, lo, hi,
                            ctx.read_slice(unew, lo, hi, pc=pc_cp_r),
                            pc=pc_cp_w)
            ctx.barrier()

    m.parallel(body, static=spec)


@workload(
    "c_lu",
    _SUITE,
    racy=False,
    description="LU decomposition, row-parallel elimination with barriers.",
    n=16,
)
def c_lu(m, p):
    n = p.n
    a = m.alloc_array("A", (n, n))
    rng = np.random.default_rng(7)
    mat = rng.random((n, n)) + np.eye(n) * n
    m.data(a)[:] = mat

    def body(ctx):
        flat = m.data(a)
        for k in range(n - 1):
            pivot_row = ctx.read_slice(a, k * n + k, k * n + n, pc=_pc("c_lu", 58))
            for i in ctx.for_range(n - k - 1):
                r = k + 1 + i
                rik = ctx.read(a, r * n + k, pc=_pc("c_lu", 60))
                factor = float(rik) / float(pivot_row[0])
                row = ctx.read_slice(a, r * n + k, r * n + n, pc=_pc("c_lu", 62))
                ctx.write_slice(a, r * n + k, r * n + n,
                                row - factor * pivot_row, pc=_pc("c_lu", 63))
                flat.reshape(-1)[r * n + k] = factor  # store multiplier (L)

    m.parallel(body)


@workload(
    "c_arraysweep",
    _SUITE,
    racy=False,
    description="Dense per-element sweep: the columnar fast-path benchmark.",
    notes=(
        "Each thread touches every element of its chunk individually — "
        "one read of a[i] and one write of b[i] — so the per-event "
        "instrumentation cost dominates.  ``batched=0`` emits scalar "
        "events through ctx.read/ctx.write; ``batched=1`` emits the "
        "identical event stream as two columnar batches per sweep.  Both "
        "variants order events reads-then-writes, so their traces (and "
        "race reports) are byte-identical."
    ),
    n=4096,
    sweeps=2,
    batched=1,
)
def c_arraysweep(m, p):
    a = m.alloc_array("a", p.n, fill=1)
    b = m.alloc_array("b", p.n)
    pc_r = _pc("c_arraysweep", 31)
    pc_w = _pc("c_arraysweep", 32)
    spec = RegionSpec(
        iterations=p.n,
        sites=(
            AffineSite(pc_r, a),
            AffineSite(pc_w, b, is_write=True),
        ),
        complete=True,
    )

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        for _ in range(p.sweeps):
            m.data(b)[lo:hi] = 2.0 * m.data(a)[lo:hi]
            if p.batched:
                ctx.touch_range(a, lo, hi, is_write=False, pc=pc_r)
                ctx.touch_range(b, lo, hi, is_write=True, pc=pc_w)
            else:
                for i in range(lo, hi):
                    ctx.read(a, i, pc=pc_r)
                for i in range(lo, hi):
                    ctx.write(b, i, m.data(b)[i], pc=pc_w)
            ctx.barrier()

    m.parallel(body, static=spec)


@workload(
    "c_fft",
    _SUITE,
    racy=False,
    description="Iterative FFT butterflies with a barrier per stage.",
    log2n=7,
)
def c_fft(m, p):
    n = 1 << p.log2n
    re = m.alloc_array("re", n)
    im = m.alloc_array("im", n)
    m.data(re)[:] = np.sin(np.arange(n))

    def body(ctx):
        size = 2
        while size <= n:
            half = size // 2
            nblocks = n // size
            for blk in ctx.for_range(nblocks):
                base = blk * size
                ang = -2j * np.pi * np.arange(half) / size
                tw = np.exp(ang)
                r_lo = ctx.read_slice(re, base, base + half, pc=_pc("c_fft", 81))
                r_hi = ctx.read_slice(re, base + half, base + size, pc=_pc("c_fft", 82))
                i_lo = ctx.read_slice(im, base, base + half, pc=_pc("c_fft", 83))
                i_hi = ctx.read_slice(im, base + half, base + size, pc=_pc("c_fft", 84))
                z_lo = r_lo + 1j * i_lo
                z_hi = (r_hi + 1j * i_hi) * tw
                out_lo = z_lo + z_hi
                out_hi = z_lo - z_hi
                ctx.write_slice(re, base, base + half, out_lo.real, pc=_pc("c_fft", 86))
                ctx.write_slice(im, base, base + half, out_lo.imag, pc=_pc("c_fft", 87))
                ctx.write_slice(re, base + half, base + size, out_hi.real, pc=_pc("c_fft", 88))
                ctx.write_slice(im, base + half, base + size, out_hi.imag, pc=_pc("c_fft", 89))
            size *= 2

    m.parallel(body)
