"""OmpSCR model-program ports."""
