"""Static pre-screening lab workloads (see suite.py)."""
