"""Static pre-screening lab: workloads exercising the verdict lattice.

Small synthetic programs whose parallel regions are *fully* described by
a :class:`~repro.static.model.RegionSpec`, one per verdict:

* ``staticlab_disjoint``  — every site PROVEN_FREE: the run collects zero
  access events and still reports zero races;
* ``staticlab_wshift``    — a write-write chunk-boundary collision the
  analyzer proves statically: the DEFINITE_RACE report is synthesised
  with zero events collected, byte-identical to the dynamic report;
* ``staticlab_rshift``    — the read-write flavour of the same collision;
* ``staticlab_incomplete``— the same collision *without* the completeness
  contract: racy sites demote to UNKNOWN, the region stays instrumented,
  and the dynamic path reports the race.

Every body emits its accesses through ``touch_range`` so the dynamic
event stream coalesces into exactly the strided intervals the analyzer
reasons over — that is what makes the static-on and static-off race sets
byte-identical (the parity tests' contract).
"""

from __future__ import annotations

import numpy as np

from ...common.sourceloc import pc_of
from ...static import AffineSite, RegionSpec
from ..base import workload

_SUITE = "staticlab"


def _pc(bench: str, line: int, func: str = "main") -> int:
    return pc_of(f"{bench}.c", line, func)


@workload(
    "staticlab_disjoint",
    _SUITE,
    racy=False,
    description="Chunk-disjoint sweep: every site PROVEN_FREE, zero events.",
    n=64,
)
def staticlab_disjoint(m, p):
    a = m.alloc_array("a", p.n)
    b = m.alloc_array("b", p.n, fill=1)
    pc_r = _pc("staticlab_disjoint", 20)
    pc_w = _pc("staticlab_disjoint", 21)
    spec = RegionSpec(
        iterations=p.n,
        sites=(
            AffineSite(pc_r, b),
            AffineSite(pc_w, a, is_write=True),
        ),
        complete=True,
    )

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        if hi > lo:
            vals = m.data(b)[lo:hi]
            ctx.touch_range(b, lo, hi, is_write=False, pc=pc_r)
            m.data(a)[lo:hi] = 2.0 * vals
            ctx.touch_range(a, lo, hi, is_write=True, pc=pc_w)

    m.parallel(body, static=spec)


def _shifted(bench: str, *, second_writes: bool):
    """Two sweeps over one array, the second shifted by one element.

    Thread ``s``'s shifted sweep covers ``[lo_s + 1, hi_s + 1)`` and so
    collides with thread ``s+1``'s unshifted sweep at element ``hi_s`` —
    one conflicting address per adjacent thread pair, a race the static
    analyzer proves from the footprints alone.
    """

    pc_w0 = _pc(bench, 30)
    pc_s1 = _pc(bench, 31)

    def build_spec(a, complete: bool) -> RegionSpec:
        return RegionSpec(
            iterations=len(a) - 1,
            sites=(
                AffineSite(pc_w0, a, is_write=True),
                AffineSite(pc_s1, a, offset=1, is_write=second_writes),
            ),
            complete=complete,
        )

    def program(m, p):
        a = m.alloc_array("a", p.n + 1)
        spec = build_spec(a, complete=bool(p.complete))

        def body(ctx):
            lo, hi = ctx.static_chunk(p.n)
            if hi > lo:
                flat = m.data(a)
                flat[lo:hi] += 1.0
                ctx.touch_range(a, lo, hi, is_write=True, pc=pc_w0)
                if second_writes:
                    flat[lo + 1 : hi + 1] += 1.0
                else:
                    _ = float(flat[lo + 1 : hi + 1].sum())
                ctx.touch_range(
                    a, lo + 1, hi + 1, is_write=second_writes, pc=pc_s1
                )

        m.parallel(body, static=spec)

    return program


workload(
    "staticlab_wshift",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Write-write chunk collision proven statically (zero events).",
    n=64,
    complete=1,
)(_shifted("staticlab_wshift", second_writes=True))

workload(
    "staticlab_rshift",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Read-write chunk collision proven statically (zero events).",
    n=64,
    complete=1,
)(_shifted("staticlab_rshift", second_writes=False))

workload(
    "staticlab_incomplete",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Same collision without the completeness contract: racy "
    "sites demote to UNKNOWN and the dynamic path reports the race.",
    n=64,
    complete=0,
)(_shifted("staticlab_incomplete", second_writes=True))
