"""DataRaceBench model suite (paper §IV-A).

Model-program ports of the DataRaceBench microbenchmarks the paper's
evaluation discusses, preserving each benchmark's *race mechanism*:

* the ``indirectaccess{1-4}-orig-yes`` races live on unexecuted
  data-dependent paths — no dynamic tool can see them (all tools miss);
* ``nowait-orig-yes`` and ``privatemissing-orig-yes`` carry read-write races
  whose write record ARCHER loses to shadow-cell eviction (the §II
  mechanism) while SWORD's complete logs retain it;
* ``plusplus-orig-yes`` contains the "additional unknown race" every tool
  reports beyond the documented one (read-write next to the documented
  write-write on the same increment);
* the ``*-no`` group is the false-positive control: every tool must stay
  silent.

Sizes are scaled to laptop budgets; mechanisms, synchronisation shapes, and
schedule sensitivities are what the experiments measure.
"""

from __future__ import annotations

import numpy as np

from ...common.sourceloc import pc_of
from ..base import workload

_SUITE = "dataracebench"


def _pc(bench: str, line: int, func: str = "main") -> int:
    return pc_of(f"{bench}.c", line, func)


# ---------------------------------------------------------------------------
# Racy benchmarks ("-yes")
# ---------------------------------------------------------------------------


@workload(
    "antidep1-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Loop-carried anti-dependence: a[i] = a[i+1] + 1.",
    n=128,
)
def antidep1_yes(m, p):
    a = m.alloc_array("a", p.n + 1, fill=1)
    pc_r = _pc("antidep1-orig-yes", 58)
    pc_w = _pc("antidep1-orig-yes", 58, "store")

    def body(ctx):
        for i in ctx.for_range(p.n):
            v = ctx.read(a, i + 1, pc=pc_r)
            ctx.write(a, i, v + 1.0, pc=pc_w)

    m.parallel(body)


@workload(
    "antidep2-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Anti-dependence under a dynamic schedule.",
    n=96,
)
def antidep2_yes(m, p):
    a = m.alloc_array("a", p.n + 1, fill=2)
    pc_r = _pc("antidep2-orig-yes", 61)
    pc_w = _pc("antidep2-orig-yes", 61, "store")

    def body(ctx):
        for i in ctx.for_range(p.n, schedule="dynamic", chunk=4):
            v = ctx.read(a, i + 1, pc=pc_r)
            ctx.write(a, i, v + 1.0, pc=pc_w)

    m.parallel(body)


def _indirect_yes(bench: str, n: int, gap: int):
    """Shared builder for the indirectaccess family.

    The original benchmarks write ``xa1[idx[i]]`` and ``xa2[idx2[i]]`` where
    the index sets *can* collide for some inputs, but not for the packaged
    one: the race needs a data-dependent path that this execution never
    takes.  Dynamic tools (ARCHER and SWORD alike) analyse only the executed
    path, so nobody reports it (paper §IV-A).
    """

    def program(m, p):
        base = m.alloc_array(f"{bench}.base", n, dtype=np.float64)
        # Index sets are disjoint for this input (offset by `gap`).
        idx1 = np.arange(0, n // 2 - gap)
        idx2 = np.arange(n // 2 + gap, n)
        pc1 = _pc(bench, 70)
        pc2 = _pc(bench, 75)

        def body(ctx):
            lo, hi = ctx.static_chunk(len(idx1))
            ctx.write_elems(base, idx1[lo:hi], 1.0, pc=pc1)
            lo2, hi2 = ctx.static_chunk(len(idx2))
            ctx.write_elems(base, idx2[lo2:hi2], 2.0, pc=pc2)

        m.parallel(body)

    return program


for _k, _gap in ((1, 1), (2, 2), (3, 3), (4, 4)):
    workload(
        f"indirectaccess{_k}-orig-yes",
        _SUITE,
        racy=True,
        documented_races=1,
        seeded_races=0,
        description="Race on a data-dependent path not taken by this input.",
        notes="No dynamic tool can detect it (paper: all tools miss these).",
        n=64,
    )(_indirect_yes(f"indirectaccess{_k}-orig-yes", 64, _gap))


@workload(
    "plusplus-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=2,
    description="Unprotected counter increment by every thread.",
    notes="All tools also report the undocumented read-write pair (§IV-A).",
    iters=8,
)
def plusplus_yes(m, p):
    count = m.alloc_scalar("count", dtype=np.int64)
    pc_r = _pc("plusplus-orig-yes", 57, "load")
    pc_w = _pc("plusplus-orig-yes", 57, "store")

    def body(ctx):
        for _ in range(p.iters):
            v = ctx.read(count, 0, pc=pc_r)
            ctx.write(count, 0, v + 1, pc=pc_w)

    m.parallel(body)


@workload(
    "minusminus-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=2,
    description="Unprotected counter decrement (numNodes--).",
    iters=6,
)
def minusminus_yes(m, p):
    num_nodes = m.alloc_scalar("numNodes", dtype=np.int64, fill=1000)
    pc_r = _pc("minusminus-orig-yes", 62, "load")
    pc_w = _pc("minusminus-orig-yes", 62, "store")

    def body(ctx):
        for _ in range(p.iters):
            v = ctx.read(num_nodes, 0, pc=pc_r)
            ctx.write(num_nodes, 0, v - 1, pc=pc_w)

    m.parallel(body)


@workload(
    "nowait-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    archer_misses=1,
    description="Missing barrier via nowait: write a[0] races later reads.",
    notes=(
        "ARCHER loses the write record to eviction: the writing thread's own "
        "re-reads of a[0] overwrite all four shadow cells before any other "
        "thread reads (paper §II / §IV-A)."
    ),
    n=96,
)
def nowait_yes(m, p):
    a = m.alloc_array("a", p.n, fill=3)
    b = m.alloc_array("b", p.n)
    pc_w = _pc("nowait-orig-yes", 58)
    pc_r0 = _pc("nowait-orig-yes", 62)

    def body(ctx):
        for i in ctx.for_range(p.n, nowait=True):
            ctx.write(a, i, float(i), pc=pc_w)
        # Second loop in the same barrier interval reads a[0] every
        # iteration: the owner's re-reads evict its own write record.
        for i in ctx.for_range(p.n):
            v = ctx.read(a, 0, pc=pc_r0)
            ctx.write(b, i, v + i, pc=_pc("nowait-orig-yes", 63))

    m.parallel(body)


@workload(
    "privatemissing-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=2,
    archer_misses=2,
    description="Shared temp that should be private: one write, many reads.",
    notes=(
        "SWORD additionally reports the second undocumented read site "
        "(paper §IV-A); ARCHER misses both pairs to eviction."
    ),
    n=80,
)
def privatemissing_yes(m, p):
    tmp = m.alloc_scalar("tmp")
    out = m.alloc_array("out", p.n)
    pc_w = _pc("privatemissing-orig-yes", 55)
    pc_r1 = _pc("privatemissing-orig-yes", 59)
    pc_r2 = _pc("privatemissing-orig-yes", 60)

    def body(ctx):
        with ctx.single(nowait=True) as mine:
            if mine:
                ctx.write(tmp, 0, 42.0, pc=pc_w)
        for i in ctx.for_range(p.n):
            v1 = ctx.read(tmp, 0, pc=pc_r1)
            v2 = ctx.read(tmp, 0, pc=pc_r2)
            ctx.write(out, i, v1 + v2, pc=_pc("privatemissing-orig-yes", 61))

    m.parallel(body)


@workload(
    "outputdep-orig-yes",
    _SUITE,
    racy=True,
    documented_races=2,
    seeded_races=2,
    description="Output dependence: every thread writes and reads shared x.",
    n=48,
)
def outputdep_yes(m, p):
    x = m.alloc_scalar("x", fill=10)
    a = m.alloc_array("a", p.n)
    pc_w = _pc("outputdep-orig-yes", 56)
    pc_r = _pc("outputdep-orig-yes", 57)

    def body(ctx):
        for i in ctx.for_range(p.n):
            ctx.write(x, 0, float(i), pc=pc_w)
            v = ctx.read(x, 0, pc=pc_r)
            ctx.write(a, i, v, pc=_pc("outputdep-orig-yes", 58))

    m.parallel(body)


@workload(
    "reductionmissing-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=2,
    description="Sum accumulated into a shared variable without reduction.",
    n=64,
)
def reductionmissing_yes(m, p):
    data = m.alloc_array("data", p.n, fill=1)
    total = m.alloc_scalar("total")
    pc_r = _pc("reductionmissing-orig-yes", 60, "load")
    pc_w = _pc("reductionmissing-orig-yes", 60, "store")

    def body(ctx):
        for i in ctx.for_range(p.n):
            v = ctx.read(data, i, pc=_pc("reductionmissing-orig-yes", 59))
            s = ctx.read(total, 0, pc=pc_r)
            ctx.write(total, 0, s + v, pc=pc_w)

    m.parallel(body)


@workload(
    "nobarrier-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Missing barrier between a write phase and a shifted read.",
    n=96,
)
def nobarrier_yes(m, p):
    a = m.alloc_array("a", p.n, fill=1)
    b = m.alloc_array("b", p.n)
    pc_w = _pc("nobarrier-orig-yes", 54)
    pc_r = _pc("nobarrier-orig-yes", 57)

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        for i in range(lo, hi):
            ctx.write(a, i, float(i), pc=pc_w)
        # Missing ctx.barrier() here.
        for i in range(lo, hi):
            v = ctx.read(a, (i + 1) % p.n, pc=pc_r)
            ctx.write(b, i, v, pc=_pc("nobarrier-orig-yes", 58))
        ctx.barrier()

    m.parallel(body)


@workload(
    "sections-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Two sections on different threads write the same variable.",
)
def sections_yes(m, p):
    x = m.alloc_scalar("x")
    pc_1 = _pc("sections-orig-yes", 55)
    pc_2 = _pc("sections-orig-yes", 58)

    def body(ctx):
        # Section bodies pinned to distinct threads (models the racy
        # distribution the original exhibits).
        if ctx.tid == 0:
            ctx.write(x, 0, 1.0, pc=pc_1)
        elif ctx.tid == 1 % ctx.nthreads:
            ctx.write(x, 0, 2.0, pc=pc_2)
        ctx.barrier()

    m.parallel(body)


@workload(
    "simdtruedep-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="True dependence a[i] = a[i-1] (the paper's Fig-5 example).",
    n=128,
)
def simdtruedep_yes(m, p):
    a = m.alloc_array("a", p.n, fill=1)
    pc_r = _pc("simdtruedep-orig-yes", 52)
    pc_w = _pc("simdtruedep-orig-yes", 52, "store")

    def body(ctx):
        for i in ctx.for_range(p.n - 1):
            v = ctx.read(a, i, pc=pc_r)
            ctx.write(a, i + 1, v, pc=pc_w)

    m.parallel(body)


@workload(
    "lastprivatemissing-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Loop live-out variable written by every thread.",
    n=40,
)
def lastprivatemissing_yes(m, p):
    x = m.alloc_scalar("x")
    pc_w = _pc("lastprivatemissing-orig-yes", 53)

    def body(ctx):
        for i in ctx.for_range(p.n):
            ctx.write(x, 0, float(i), pc=pc_w)

    m.parallel(body)


@workload(
    "criticalmissing-orig-yes",
    _SUITE,
    racy=True,
    documented_races=2,
    seeded_races=2,
    description="Balance updates without the intended critical section.",
    iters=6,
)
def criticalmissing_yes(m, p):
    balance = m.alloc_scalar("balance", fill=100)
    pc_r = _pc("criticalmissing-orig-yes", 48, "load")
    pc_w = _pc("criticalmissing-orig-yes", 48, "store")

    def body(ctx):
        for _ in range(p.iters):
            v = ctx.read(balance, 0, pc=pc_r)
            ctx.write(balance, 0, v + 1.0, pc=pc_w)

    m.parallel(body)


@workload(
    "nestedparallel-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Figure-2 style: nested sibling regions race on shared y.",
    inner=2,
)
def nestedparallel_yes(m, p):
    y = m.alloc_scalar("y")
    pc_w = _pc("nestedparallel-orig-yes", 60)

    def inner(ctx2):
        ctx2.write(y, 0, float(ctx2.tid), pc=pc_w)

    def outer(ctx):
        ctx.parallel(inner, nthreads=p.inner)

    m.parallel(outer, nthreads=2)


# ---------------------------------------------------------------------------
# Race-free benchmarks ("-no"): the false-positive control group
# ---------------------------------------------------------------------------


@workload(
    "antidep1-var-no",
    _SUITE,
    racy=False,
    description="Anti-dependence resolved by splitting phases with a barrier.",
    n=128,
)
def antidep1_no(m, p):
    a = m.alloc_array("a", p.n + 1, fill=1)
    b = m.alloc_array("b", p.n + 1)
    pc_r = _pc("antidep1-var-no", 44)
    pc_w = _pc("antidep1-var-no", 48)

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        vals = ctx.read_slice(a, lo + 1, hi + 1, pc=pc_r)
        ctx.write_slice(b, lo, hi, vals + 1.0, pc=_pc("antidep1-var-no", 45))
        ctx.barrier()
        ctx.write_slice(a, lo, hi, ctx.read_slice(b, lo, hi, pc=pc_w), pc=pc_w)

    m.parallel(body)


@workload(
    "critical-orig-no",
    _SUITE,
    racy=False,
    description="Shared counter correctly guarded by a critical section.",
    iters=6,
)
def critical_no(m, p):
    count = m.alloc_scalar("count", dtype=np.int64)
    pc_r = _pc("critical-orig-no", 51, "load")
    pc_w = _pc("critical-orig-no", 51, "store")

    def body(ctx):
        for _ in range(p.iters):
            with ctx.critical("count"):
                v = ctx.read(count, 0, pc=pc_r)
                ctx.write(count, 0, v + 1, pc=pc_w)

    m.parallel(body)


@workload(
    "atomic-orig-no",
    _SUITE,
    racy=False,
    description="Shared counter updated with omp atomic.",
    iters=8,
)
def atomic_no(m, p):
    count = m.alloc_scalar("count", dtype=np.int64)
    pc = _pc("atomic-orig-no", 49)

    def body(ctx):
        for _ in range(p.iters):
            ctx.atomic_add(count, 0, 1, pc=pc)

    m.parallel(body)


@workload(
    "barrier-orig-no",
    _SUITE,
    racy=False,
    description="Write phase and shifted read phase separated by a barrier.",
    n=96,
)
def barrier_no(m, p):
    a = m.alloc_array("a", p.n, fill=1)
    b = m.alloc_array("b", p.n)

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        for i in range(lo, hi):
            ctx.write(a, i, float(i), pc=_pc("barrier-orig-no", 44))
        ctx.barrier()
        for i in range(lo, hi):
            v = ctx.read(a, (i + 1) % p.n, pc=_pc("barrier-orig-no", 47))
            ctx.write(b, i, v, pc=_pc("barrier-orig-no", 48))

    m.parallel(body)


@workload(
    "reduction-orig-no",
    _SUITE,
    racy=False,
    description="Proper reduction: private accumulation + guarded combine.",
    n=64,
)
def reduction_no(m, p):
    data = m.alloc_array("data", p.n, fill=2)
    total = m.alloc_scalar("total")
    pc_r = _pc("reduction-orig-no", 52)

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        local = float(ctx.read_slice(data, lo, hi, pc=pc_r).sum())
        ctx.reduce_add(total, 0, local, pc=_pc("reduction-orig-no", 54))
        ctx.barrier()

    m.parallel(body)
    assert m.data(total)[0] == 2.0 * p.n


@workload(
    "single-orig-no",
    _SUITE,
    racy=False,
    description="Init inside single (with its implicit barrier), then reads.",
    n=48,
)
def single_no(m, p):
    init = m.alloc_scalar("init")
    out = m.alloc_array("out", p.n)

    def body(ctx):
        with ctx.single() as mine:  # implicit barrier at the end
            if mine:
                ctx.write(init, 0, 7.0, pc=_pc("single-orig-no", 43))
        lo, hi = ctx.static_chunk(p.n)
        for i in range(lo, hi):
            v = ctx.read(init, 0, pc=_pc("single-orig-no", 46))
            ctx.write(out, i, v, pc=_pc("single-orig-no", 47))

    m.parallel(body)


@workload(
    "firstprivate-orig-no",
    _SUITE,
    racy=False,
    description="Private temporaries, disjoint output slices.",
    n=96,
)
def firstprivate_no(m, p):
    out = m.alloc_array("out", p.n)

    def body(ctx):
        tmp = 3.0  # genuinely private (a Python local)
        lo, hi = ctx.static_chunk(p.n)
        ctx.write_slice(
            out, lo, hi, tmp * np.arange(lo, hi), pc=_pc("firstprivate-orig-no", 45)
        )

    m.parallel(body)


@workload(
    "indirectaccess-orig-no",
    _SUITE,
    racy=False,
    description="Indirect writes through provably disjoint index sets.",
    n=64,
)
def indirectaccess_no(m, p):
    base = m.alloc_array("base", 2 * p.n)
    idx = np.arange(p.n) * 2  # even slots only

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        ctx.write_elems(base, idx[lo:hi], 1.0, pc=_pc("indirectaccess-orig-no", 52))

    m.parallel(body)


@workload(
    "matrixvector-orig-no",
    _SUITE,
    racy=False,
    description="Row-parallel matrix-vector product (shared reads only).",
    n=24,
)
def matrixvector_no(m, p):
    n = p.n
    a = m.alloc_array("A", (n, n), fill=1)
    x = m.alloc_array("x", n, fill=2)
    y = m.alloc_array("y", n)

    def body(ctx):
        for i in ctx.for_range(n):
            row = ctx.read_slice(a, i * n, (i + 1) * n, pc=_pc("matrixvector-orig-no", 47))
            vec = ctx.read_slice(x, 0, n, pc=_pc("matrixvector-orig-no", 48))
            ctx.write(y, i, float(row @ vec), pc=_pc("matrixvector-orig-no", 49))

    m.parallel(body)
    assert np.allclose(m.data(y), 2.0 * n)


@workload(
    "nowait-orig-no",
    _SUITE,
    racy=False,
    description="nowait loops touching disjoint arrays (no cross dependence).",
    n=96,
)
def nowait_no(m, p):
    a = m.alloc_array("a", p.n)
    b = m.alloc_array("b", p.n)

    def body(ctx):
        for i in ctx.for_range(p.n, nowait=True):
            ctx.write(a, i, float(i), pc=_pc("nowait-orig-no", 44))
        for i in ctx.for_range(p.n):
            ctx.write(b, i, float(i) * 2, pc=_pc("nowait-orig-no", 46))

    m.parallel(body)


@workload(
    "masterbarrier-orig-no",
    _SUITE,
    racy=False,
    description="Master writes, explicit barrier, everyone reads.",
    n=48,
)
def masterbarrier_no(m, p):
    flag = m.alloc_scalar("flag")
    out = m.alloc_array("out", p.n)

    def body(ctx):
        if ctx.master():
            ctx.write(flag, 0, 5.0, pc=_pc("masterbarrier-orig-no", 42))
        ctx.barrier()
        lo, hi = ctx.static_chunk(p.n)
        for i in range(lo, hi):
            v = ctx.read(flag, 0, pc=_pc("masterbarrier-orig-no", 45))
            ctx.write(out, i, v, pc=_pc("masterbarrier-orig-no", 46))

    m.parallel(body)


@workload(
    "sectionslock-orig-no",
    _SUITE,
    racy=False,
    description="Thread-dispatched writers sharing one lock.",
)
def sectionslock_no(m, p):
    x = m.alloc_scalar("x")

    def body(ctx):
        lock_pc = _pc("sectionslock-orig-no", 51)
        if ctx.tid == 0:
            with ctx.critical("x"):
                ctx.write(x, 0, 1.0, pc=lock_pc)
        elif ctx.tid == 1 % ctx.nthreads:
            with ctx.critical("x"):
                ctx.write(x, 0, 2.0, pc=_pc("sectionslock-orig-no", 54))
        ctx.barrier()

    m.parallel(body)


@workload(
    "master-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    archer_misses=1,
    description="Master writes without a barrier; teammates read.",
    notes=(
        "Another §II eviction instance: the master's own per-iteration "
        "re-reads of init purge its write record before any teammate reads."
    ),
    n=24,
)
def master_yes(m, p):
    init = m.alloc_scalar("init")
    out = m.alloc_array("out", p.n)
    pc_w = _pc("master-orig-yes", 44)
    pc_r = _pc("master-orig-yes", 47)

    def body(ctx):
        if ctx.master():
            ctx.write(init, 0, 5.0, pc=pc_w)
        # Missing barrier: master has no implied synchronisation.
        lo, hi = ctx.static_chunk(p.n)
        for i in range(lo, hi):
            v = ctx.read(init, 0, pc=pc_r)
            ctx.write(out, i, v, pc=_pc("master-orig-yes", 48))

    m.parallel(body)


@workload(
    "truedeplinear-orig-yes",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Linear-offset true dependence: a[i+7] = a[i] + 1.",
    n=120,
)
def truedeplinear_yes(m, p):
    a = m.alloc_array("a", p.n + 7, fill=1)
    pc_r = _pc("truedeplinear-orig-yes", 52)
    pc_w = _pc("truedeplinear-orig-yes", 52, "store")

    def body(ctx):
        for i in ctx.for_range(p.n):
            v = ctx.read(a, i, pc=pc_r)
            ctx.write(a, i + 7, v + 1.0, pc=pc_w)

    m.parallel(body)


@workload(
    "doall1-orig-no",
    _SUITE,
    racy=False,
    description="Embarrassingly parallel loop: disjoint element writes.",
    n=128,
)
def doall1_no(m, p):
    a = m.alloc_array("a", p.n)

    def body(ctx):
        for i in ctx.for_range(p.n):
            ctx.write(a, i, float(i), pc=_pc("doall1-orig-no", 43))

    m.parallel(body)
    assert m.data(a)[p.n - 1] == float(p.n - 1)


@workload(
    "doallchar-orig-no",
    _SUITE,
    racy=False,
    description="Disjoint single-byte writes (sub-word shadow masks).",
    n=64,
)
def doallchar_no(m, p):
    import numpy as _np

    a = m.alloc_array("chars", p.n, dtype=_np.int8)

    def body(ctx):
        lo, hi = ctx.static_chunk(p.n)
        for i in range(lo, hi):
            ctx.write(a, i, i % 100, pc=_pc("doallchar-orig-no", 41))

    m.parallel(body)
    assert int(m.data(a)[1]) == 1
