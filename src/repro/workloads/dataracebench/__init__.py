"""DataRaceBench model-program ports."""
