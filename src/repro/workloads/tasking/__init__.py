"""Tasking-extension workloads (beyond-paper: §VI future work)."""
