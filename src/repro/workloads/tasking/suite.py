"""Tasking-extension workloads (beyond the paper: its §VI future work).

The paper's SWORD cannot analyse OpenMP tasking (§III-C); this suite
exercises the reproduction's task-ordering extension on task-parallel
idioms:

* ``task-fib`` — a divide-and-conquer task tree with taskwait joins,
  race-free (the canonical tasking example);
* ``task-reduce-racy`` — sibling tasks accumulating into a shared cell
  without synchronisation (racy);
* ``task-pipeline`` — producer code racing a deferred consumer task that
  was created before the produce (racy, creator-vs-task: the pattern a
  happens-before tool misses whenever the creator drains its own task);
* ``task-farm`` — a taskwait-synchronised task farm, race-free.
"""

from __future__ import annotations

import numpy as np

from ...common.sourceloc import pc_of
from ..base import workload

_SUITE = "tasking"


def _pc(bench: str, line: int, func: str = "main") -> int:
    return pc_of(f"{bench}.c", line, func)


@workload(
    "task-fib",
    _SUITE,
    racy=False,
    description="Fibonacci task tree with taskwait joins (race-free).",
    n=8,
)
def task_fib(m, p):
    # Results table: slot per (node id); ids handed out sequentially.
    results = m.alloc_array("fib", 2 ** (p.n + 1), dtype=np.int64)
    counter = {"next": 0}

    def fib(ctx, n, slot):
        if n < 2:
            ctx.write(results, slot, n, pc=_pc("task-fib", 12, "fib"))
            return
        counter["next"] += 2
        left, right = counter["next"] - 1, counter["next"]
        ctx.task(fib, n - 1, left)
        ctx.task(fib, n - 2, right)
        ctx.taskwait()
        a = ctx.read(results, left, pc=_pc("task-fib", 17, "fib"))
        b = ctx.read(results, right, pc=_pc("task-fib", 18, "fib"))
        ctx.write(results, slot, a + b, pc=_pc("task-fib", 19, "fib"))

    def body(ctx):
        with ctx.single() as mine:
            if mine:
                counter["next"] = 0
                fib(ctx, p.n, 0)

    m.parallel(body, nthreads=4)
    expected = [0, 1]
    for _ in range(p.n - 1):
        expected.append(expected[-1] + expected[-2])
    assert m.data(results)[0] == expected[p.n]


@workload(
    "task-reduce-racy",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=2,
    description="Sibling tasks accumulate into a shared sum without sync.",
    notes="Two pc pairs: the read-write and write-write halves of sum += v.",
    ntasks=8,
)
def task_reduce_racy(m, p):
    data = m.alloc_array("data", p.ntasks, fill=3)
    total = m.alloc_scalar("sum")
    pc_r = _pc("task-reduce", 14, "load")
    pc_w = _pc("task-reduce", 14, "store")

    def accumulate(ctx, i):
        v = ctx.read(data, i, pc=_pc("task-reduce", 13, "worker"))
        s = ctx.read(total, 0, pc=pc_r)
        ctx.write(total, 0, s + v, pc=pc_w)

    def body(ctx):
        if ctx.tid == 0:
            for i in range(p.ntasks):
                ctx.task(accumulate, i)

    m.parallel(body, nthreads=4)


@workload(
    "task-pipeline",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Deferred consumer task races the produce after its creation.",
    notes=(
        "The §III-C showcase for offset-span labels: without task identity "
        "the creator and its task look like one serial thread.  Both our "
        "extended judgment and the task-edge-aware HB baseline report it."
    ),
    n=16,
)
def task_pipeline(m, p):
    buf = m.alloc_array("buf", p.n, fill=0)
    pc_consume = _pc("task-pipeline", 9, "consumer")
    pc_produce = _pc("task-pipeline", 15, "producer")

    def consumer(ctx):
        ctx.read_slice(buf, 0, p.n, pc=pc_consume)

    def body(ctx):
        if ctx.tid == 0:
            ctx.task(consumer)  # consumer deferred BEFORE the produce
            ctx.write_slice(buf, 0, p.n, np.arange(p.n, dtype=float),
                            pc=pc_produce)

    m.parallel(body, nthreads=4)


@workload(
    "task-farm",
    _SUITE,
    racy=False,
    description="Task farm over disjoint slices, joined by taskwait.",
    n=64,
    ntasks=8,
)
def task_farm(m, p):
    data = m.alloc_array("data", p.n, fill=1)
    out = m.alloc_array("out", p.n)
    chunk = p.n // p.ntasks

    def work(ctx, k):
        lo, hi = k * chunk, (k + 1) * chunk
        vals = ctx.read_slice(data, lo, hi, pc=_pc("task-farm", 11, "worker"))
        ctx.write_slice(out, lo, hi, vals * 2.0, pc=_pc("task-farm", 12, "worker"))

    def body(ctx):
        with ctx.single(nowait=True) as mine:
            if mine:
                for k in range(p.ntasks):
                    ctx.task(work, k)
                ctx.taskwait()
                total = ctx.read_slice(out, 0, p.n, pc=_pc("task-farm", 18, "sum"))
                assert float(total.sum()) == 2.0 * p.n
        ctx.barrier()

    m.parallel(body, nthreads=4)
