"""Model programs for the paper's worked examples (Figures 1, 2, 5; §II).

These are the programs the paper uses to *explain* SWORD, registered as
workloads so the harness, tests, and benchmarks can exercise them exactly
like the evaluation suites:

* ``figure2-nested`` — the concurrency structure of Figure 2: two levels of
  nesting with barriers, seeded with the figure's three races: R1 (two
  threads of one nested team, same barrier interval), R2 and R3 (threads
  of *sibling* nested regions, which barrier intervals alone cannot order).
* ``figure1-masking`` — the unlocked-write/locked-access pair whose
  detection by happens-before depends on the schedule.
* ``section2-eviction`` — ``a[i] = a[i] + a[0]``, the §II shadow-cell
  eviction example.
* ``figure5-truedep`` — ``a[i] = a[i-1]`` with two threads, the §III-B
  interval-tree example.
"""

from __future__ import annotations

import numpy as np

from ...common.sourceloc import pc_of
from ..base import workload

_SUITE = "paper"


def _pc(bench: str, line: int, func: str = "main") -> int:
    return pc_of(f"{bench}.c", line, func)


@workload(
    "figure2-nested",
    _SUITE,
    racy=True,
    documented_races=3,
    seeded_races=3,
    archer_schedule_dependent=True,
    description="Figure 2: nested regions with races R1, R2, R3.",
    notes=(
        "R1: write-write on y inside one nested team's barrier interval. "
        "R2: writes to y from two sibling nested regions. "
        "R3: write/read of x across sibling nested regions.  The happens-"
        "before baseline masks R2/R3 under some schedules: a pool worker "
        "reused across the sibling regions carries the first region's fork "
        "edge into the second — incidental runtime-internal ordering, the "
        "paper's §II masking phenomenon in its nested form."
    ),
)
def figure2_nested(m, p):
    x = m.alloc_scalar("x")
    y = m.alloc_scalar("y")
    pc_r1 = _pc("figure2", 21, "inner_a")      # y writes inside region A
    pc_r2 = _pc("figure2", 31, "inner_b")      # y write inside region B
    pc_x_w = _pc("figure2", 12, "outer")       # x write before the fork
    pc_x_r = _pc("figure2", 33, "inner_b")     # x read inside region B

    def inner_a(ctx):
        # R1: both threads of this team write y in the same interval.
        ctx.write(y, 0, 1.0 + ctx.tid, pc=pc_r1)
        ctx.barrier()

    def inner_b(ctx):
        if ctx.tid == 0:
            # R2: conflicts with inner_a's writes to y (sibling regions).
            ctx.write(y, 0, 9.0, pc=pc_r2)
        else:
            # R3: reads x, written by outer thread 0 in the same outer
            # interval (before it forked region A).
            ctx.read(x, 0, pc=pc_x_r)
        ctx.barrier()

    def outer(ctx):
        if ctx.tid == 0:
            ctx.write(x, 0, 5.0, pc=pc_x_w)
            ctx.parallel(inner_a, nthreads=2)
        else:
            ctx.parallel(inner_b, nthreads=2)
        ctx.barrier()

    m.parallel(outer, nthreads=2)


@workload(
    "figure1-masking",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    archer_schedule_dependent=True,
    description="Figure 1: unlocked write vs locked accesses (maskable).",
    notes=(
        "Happens-before detection of this race flips with the scheduler "
        "seed: the racy pair is between two workers whose lock order is "
        "schedule-dependent (experiment E8 sweeps it)."
    ),
)
def figure1_masking(m, p):
    a = m.alloc_scalar("a")
    lock = m.new_lock("L")
    pc_u = _pc("figure1", 5, "thread0")
    pc_l = _pc("figure1", 9, "locked")

    def body(ctx):
        if ctx.tid == 1:
            ctx.write(a, 0, 1.0, pc=pc_u)
            with ctx.locked(lock):
                ctx.write(a, 0, 2.0, pc=pc_l)
        elif ctx.tid == 2 % ctx.nthreads:
            with ctx.locked(lock):
                ctx.read(a, 0, pc=pc_l)
                ctx.write(a, 0, 3.0, pc=pc_l)

    m.parallel(body, nthreads=3)


@workload(
    "section2-eviction",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    archer_misses=1,
    description="§II: a[i] = a[i] + a[0]; the write of a[0] gets evicted.",
    notes=(
        "One site pair: the master's write of a[0] vs every other thread's "
        "per-iteration read.  Under the default master-first schedule the "
        "owner's own re-reads purge the write record from the four shadow "
        "cells before any worker reads, so the happens-before baseline "
        "misses it."
    ),
    n=64,
    batched=1,
)
def section2_eviction(m, p):
    a = m.alloc_array("a", p.n, fill=1)
    pc_r0 = _pc("section2", 4, "loop_read_a0")
    pc_ri = _pc("section2", 4, "loop_read_ai")
    pc_w = _pc("section2", 4, "loop")

    def body(ctx):
        if p.batched:
            # Columnar fast path: the loop's three access sites become
            # three batches (the repeated a[0] reads, the a[i] reads, the
            # a[i] writes); within each site the element order is the
            # same as the scalar loop's.
            lo, hi = ctx.static_chunk(p.n)
            if hi > lo:
                flat = m.data(a)
                start = lo
                if lo == 0:
                    # Keep i == 0 scalar: the master's write of a[0] must
                    # precede its later a[0] polls, or the shadow-cell
                    # eviction this workload exists to exhibit vanishes.
                    v0 = ctx.read(a, 0, pc=pc_r0)
                    vi = ctx.read(a, 0, pc=pc_ri)
                    ctx.write(a, 0, vi + v0, pc=pc_w)
                    start = 1
                if hi > start:
                    flat[start:hi] += flat[0]
                    ctx.record_batch(
                        np.full(hi - start, a.addr(0), dtype=np.uint64),
                        size=a.itemsize, is_write=False, pc=pc_r0,
                    )
                    ctx.touch_range(a, start, hi, is_write=False, pc=pc_ri)
                    ctx.touch_range(a, start, hi, is_write=True, pc=pc_w)
            ctx.barrier()
        else:
            for i in ctx.for_range(p.n):
                v0 = ctx.read(a, 0, pc=pc_r0)
                vi = ctx.read(a, i, pc=pc_ri)
                ctx.write(a, i, vi + v0, pc=pc_w)

    m.parallel(body)


@workload(
    "figure5-truedep",
    _SUITE,
    racy=True,
    documented_races=1,
    seeded_races=1,
    description="Figure 5: a[i] = a[i-1], two threads, one boundary race.",
    n=1000,
    batched=1,
)
def figure5_truedep(m, p):
    a = m.alloc_array("a", p.n, fill=0)
    pc_r = _pc("figure5", 4, "loop")
    pc_w = _pc("figure5", 4, "loop_store")

    def body(ctx):
        if p.batched:
            # a[i+1] = a[i] cascades a[lo] through the whole chunk.
            lo, hi = ctx.static_chunk(p.n - 1)
            if hi > lo:
                flat = m.data(a)
                flat[lo + 1 : hi + 1] = flat[lo]
                ctx.touch_range(a, lo, hi, is_write=False, pc=pc_r)
                ctx.touch_range(a, lo + 1, hi + 1, is_write=True, pc=pc_w)
            ctx.barrier()
        else:
            for i in ctx.for_range(p.n - 1):
                v = ctx.read(a, i, pc=pc_r)
                ctx.write(a, i + 1, v, pc=pc_w)

    m.parallel(body, nthreads=2)
