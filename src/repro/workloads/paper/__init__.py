"""Paper worked-example model programs (Figures 1/2/5, §II)."""
