"""Operational semantics of OpenMP concurrency structure (paper §I/§II).

SWORD "builds on an operational semantics that formally captures the notion
of concurrent accesses within OpenMP regions" and its offline analysis is
"driven by these semantic rules".  This module is that semantics made
executable: a small-step state machine over the structural event alphabet

    parallel_begin(pid) . task_begin(gid, pid, slot) . barrier_arrive .
    barrier_depart . task_end . parallel_end . access . mutex ops

which reconstructs — *independently of the runtime's own bookkeeping* —
the region tree, every thread's barrier-interval position, and the classic
Mellor-Crummey offset-span label (fork appends ``[slot, span]``; barriers
and joins advance an offset by its span).

The replay validates the structural well-formedness rules as it goes
(threads only barrier inside regions, all arrivals precede any departure of
a barrier instance, nesting is properly bracketed) and emits, per access,
the interval label used by the concurrency judgment.  Tests replay
recorded executions and assert that the semantics' reconstruction matches
both the runtime's view and the trace-metadata reconstruction — the
"faithful realization of our semantics" claim, checked mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..common.errors import AnalysisError
from ..common.events import Access
from ..osl.concurrency import IntervalLabel, IntervalPair, concurrent_intervals
from ..osl.labels import Label, after_barrier, after_join, fork, initial_label


@dataclass(slots=True)
class SemRegion:
    """A parallel-region instance in the semantic state."""

    pid: int
    ppid: int
    span: int
    level: int
    parent_gid: int
    parent_slot: int
    parent_bid: int
    chain_prefix: IntervalLabel
    fork_label: Label
    active_members: int = 0
    # Barrier rendezvous bookkeeping: arrivals per bid.
    arrivals: dict[int, int] = field(default_factory=dict)
    departures: dict[int, int] = field(default_factory=dict)


@dataclass(slots=True)
class SemFrame:
    """One thread's membership of one region."""

    region: SemRegion
    slot: int
    bid: int = 0


@dataclass(slots=True)
class SemThread:
    """A thread in the semantic state."""

    gid: int
    frames: list[SemFrame] = field(default_factory=list)
    classic: Label = field(default_factory=initial_label)
    held: set = field(default_factory=set)

    def chain(self) -> IntervalLabel:
        if not self.frames:
            return ()
        f = self.frames[-1]
        return f.region.chain_prefix + (
            IntervalPair(f.region.pid, f.slot, f.bid, f.region.span),
        )


@dataclass(frozen=True, slots=True)
class SemAccess:
    """An access annotated with its semantic position."""

    gid: int
    chain: IntervalLabel
    classic: Label
    access: Access
    mutexes: frozenset


class SemanticsReplay:
    """Small-step replay of a structural event tape."""

    def __init__(self) -> None:
        self.threads: dict[int, SemThread] = {}
        self.regions: dict[int, SemRegion] = {}
        self.accesses: list[SemAccess] = []
        self.intervals: set[tuple[int, int, int]] = set()  # (gid, pid, bid)

    # -- helpers ----------------------------------------------------------------

    def _thread(self, gid: int) -> SemThread:
        th = self.threads.get(gid)
        if th is None:
            th = SemThread(gid=gid)
            self.threads[gid] = th
        return th

    def _region(self, pid: int) -> SemRegion:
        try:
            return self.regions[pid]
        except KeyError:
            raise AnalysisError(f"event references unknown region {pid}") from None

    # -- transition rules ---------------------------------------------------------

    def parallel_begin(
        self, pid: int, parent_gid: int, span: int, ppid: int = 0
    ) -> None:
        """Rule FORK-ANNOUNCE: the encountering thread opens a region."""
        if pid in self.regions:
            raise AnalysisError(f"region {pid} forked twice")
        parent = self._thread(parent_gid)
        parent_frame = parent.frames[-1] if parent.frames else None
        self.regions[pid] = SemRegion(
            pid=pid,
            ppid=parent_frame.region.pid if parent_frame else 0,
            span=span,
            level=(parent_frame.region.level + 1) if parent_frame else 1,
            parent_gid=parent_gid,
            parent_slot=parent_frame.slot if parent_frame else 0,
            parent_bid=parent_frame.bid if parent_frame else 0,
            chain_prefix=parent.chain(),
            fork_label=parent.classic,
        )
        if ppid and parent_frame and parent_frame.region.pid != ppid:
            raise AnalysisError(
                f"region {pid}: announced parent {ppid} but encountering "
                f"thread is in region {parent_frame.region.pid}"
            )

    def task_begin(self, gid: int, pid: int, slot: int) -> None:
        """Rule FORK-JOIN-TEAM: a thread becomes team member ``slot``."""
        region = self._region(pid)
        if not 0 <= slot < region.span:
            raise AnalysisError(f"region {pid}: slot {slot} out of range")
        th = self._thread(gid)
        th.frames.append(SemFrame(region=region, slot=slot))
        th.classic = fork(region.fork_label, slot, region.span)
        region.active_members += 1
        if region.active_members > region.span:
            raise AnalysisError(f"region {pid}: too many members")
        self.intervals.add((gid, pid, 0))

    def barrier_arrive(self, gid: int, bid: int) -> None:
        """Rule BARRIER-ARRIVE: a member reaches the barrier ending ``bid``."""
        th = self._thread(gid)
        if not th.frames:
            raise AnalysisError(f"thread {gid}: barrier outside any region")
        frame = th.frames[-1]
        if frame.bid != bid:
            raise AnalysisError(
                f"thread {gid}: arrives at barrier {bid} but is in interval "
                f"{frame.bid}"
            )
        region = frame.region
        region.arrivals[bid] = region.arrivals.get(bid, 0) + 1
        if region.arrivals[bid] > region.span:
            raise AnalysisError(f"region {region.pid}: barrier {bid} over-arrived")

    def barrier_depart(self, gid: int, new_bid: int) -> None:
        """Rule BARRIER-DEPART: legal only after all members arrived."""
        th = self._thread(gid)
        frame = th.frames[-1]
        region = frame.region
        prev = new_bid - 1
        if region.arrivals.get(prev, 0) != region.span:
            raise AnalysisError(
                f"region {region.pid}: departure from barrier {prev} before "
                f"all {region.span} members arrived "
                f"({region.arrivals.get(prev, 0)} so far)"
            )
        region.departures[prev] = region.departures.get(prev, 0) + 1
        frame.bid = new_bid
        th.classic = after_barrier(th.classic)
        self.intervals.add((gid, region.pid, new_bid))

    def task_end(self, gid: int, pid: int) -> None:
        """Rule TEAM-RETIRE: a member leaves the region."""
        th = self._thread(gid)
        if not th.frames or th.frames[-1].region.pid != pid:
            raise AnalysisError(f"thread {gid}: task_end for wrong region {pid}")
        th.frames.pop()
        region = self._region(pid)
        region.active_members -= 1

    def parallel_end(self, pid: int) -> None:
        """Rule JOIN: region closes; the parent's label advances."""
        region = self._region(pid)
        if region.active_members != 0:
            raise AnalysisError(
                f"region {pid} ended with {region.active_members} live members"
            )
        parent = self._thread(region.parent_gid)
        parent.classic = after_join(region.fork_label)

    def mutex_acquired(self, gid: int, mutex: int) -> None:
        self._thread(gid).held.add(mutex)

    def mutex_released(self, gid: int, mutex: int) -> None:
        th = self._thread(gid)
        if mutex not in th.held:
            raise AnalysisError(f"thread {gid}: releasing unheld mutex {mutex}")
        th.held.discard(mutex)

    def access(self, gid: int, access: Access) -> Optional[SemAccess]:
        """Rule ACCESS: record an access at the thread's current position.

        Sequential-context accesses (no enclosing region) return None —
        they cannot race, mirroring SWORD's instrumentation policy.
        """
        th = self._thread(gid)
        if not th.frames:
            return None
        sem = SemAccess(
            gid=gid,
            chain=th.chain(),
            classic=th.classic,
            access=access,
            mutexes=frozenset(th.held),
        )
        self.accesses.append(sem)
        return sem

    # -- tape driver -------------------------------------------------------------------

    def feed_tape(self, tape: Iterable, regions: dict) -> "SemanticsReplay":
        """Replay a :class:`~repro.omp.recording.RecordingTool` tape.

        ``regions`` is the recorder's pid -> ParallelRegion map, used only
        for the fork announcements (parent gid and team size) — the same
        information SWORD's trace regions table carries.
        """
        for entry in tape:
            kind = entry.kind
            if kind == "parallel_begin":
                info = regions[entry.region]
                self.parallel_begin(
                    entry.region, info.parent_gid, info.span, info.ppid
                )
            elif kind == "task_begin":
                self.task_begin(entry.gid, entry.region, entry.slot)
            elif kind == "barrier_arrive":
                self.barrier_arrive(entry.gid, entry.bid)
            elif kind == "barrier_depart":
                self.barrier_depart(entry.gid, entry.bid)
            elif kind == "task_end":
                self.task_end(entry.gid, entry.region)
            elif kind == "parallel_end":
                self.parallel_end(entry.region)
            elif kind == "mutex_acquired":
                self.mutex_acquired(entry.gid, entry.mutex)
            elif kind == "mutex_released":
                self.mutex_released(entry.gid, entry.mutex)
            elif kind == "access":
                self.access(entry.gid, entry.access)
            # thread_begin / thread_end carry no semantic content.
        return self

    # -- judgments ------------------------------------------------------------------------

    @staticmethod
    def concurrent(a: SemAccess, b: SemAccess) -> bool:
        """May the two recorded accesses execute concurrently?"""
        if a.gid == b.gid:
            return False
        return concurrent_intervals(a.chain, b.chain)

    @staticmethod
    def may_race(a: SemAccess, b: SemAccess) -> bool:
        """Full race condition over two semantic accesses."""
        if not SemanticsReplay.concurrent(a, b):
            return False
        if not (a.access.is_write or b.access.is_write):
            return False
        if a.access.is_atomic and b.access.is_atomic:
            return False
        if a.mutexes & b.mutexes:
            return False
        lo = max(a.access.low, b.access.low)
        hi = min(a.access.high, b.access.high)
        if lo > hi:
            return False
        import numpy as np

        common = np.intersect1d(a.access.addresses(), b.access.addresses())
        return common.size > 0
