"""Executable operational semantics of OpenMP concurrency structure."""

from .model import SemAccess, SemanticsReplay, SemFrame, SemRegion, SemThread

__all__ = ["SemAccess", "SemanticsReplay", "SemFrame", "SemRegion", "SemThread"]
